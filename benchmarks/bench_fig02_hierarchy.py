"""Figures 2 and 13: the hierarchy diagram and its separation witnesses.

Reproduces the executable separations: LP ⊊ NLP (Proposition 24), the
incomparability of coLP and NLP (Proposition 26), and the placement of
3-colorability in NLP \\ LP, and times the two witness constructions.
"""

from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.separations import (
    lp_vs_nlp_separation_report,
    pumping_breaks_verifier,
    separation_table,
)

from conftest import report


def test_lp_strictly_below_nlp(benchmark):
    candidate = NeighborhoodGatherAlgorithm(1, lambda view: "1", name="candidate-decider")
    result = benchmark(lp_vs_nlp_separation_report, candidate, 2)
    assert result["separation_established"]
    report("Proposition 24 (LP ⊊ NLP)", [result])


def test_colp_incomparable_with_nlp(benchmark):
    result = benchmark(pumping_breaks_verifier, 4, 3)
    assert result["verifier_complete"]
    assert result["soundness_broken"]
    report("Proposition 26 (coLP ⋚ NLP)", [result])


def test_full_separation_table(benchmark):
    rows = benchmark(separation_table)
    assert len(rows) >= 8
    report("Figure 2 / Figure 13 facts", [
        {"statement": row["statement"], "kind": row["kind"]} for row in rows
    ])
