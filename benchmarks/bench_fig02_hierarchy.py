"""Figures 2 and 13: the hierarchy diagram and its separation witnesses.

Reproduces the executable separations: LP ⊊ NLP (Proposition 24), the
incomparability of coLP and NLP (Proposition 26), and the placement of
3-colorability in NLP \\ LP, times the two witness constructions, and
measures the certificate-game engine against the exhaustive reference
solver on the NLP membership game.
"""

import time

from repro.engine import GameEngine
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.hierarchy.certificate_spaces import color_space
from repro.hierarchy.game import eve_wins, sigma_prefix
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.separations import (
    lp_vs_nlp_separation_report,
    pumping_breaks_verifier,
    separation_table,
)
from repro.sweep import run_scenario

from conftest import benchmark_median_seconds, report, write_bench_json


def test_lp_strictly_below_nlp(benchmark):
    candidate = NeighborhoodGatherAlgorithm(1, lambda view: "1", name="candidate-decider")
    result = benchmark(lp_vs_nlp_separation_report, candidate, 2)
    assert result["separation_established"]
    report("Proposition 24 (LP ⊊ NLP)", [result])


def test_colp_incomparable_with_nlp(benchmark):
    result = benchmark(pumping_breaks_verifier, 4, 3)
    assert result["verifier_complete"]
    assert result["soundness_broken"]
    report("Proposition 26 (coLP ⋚ NLP)", [result])


def test_full_separation_table(benchmark):
    rows = benchmark(separation_table)
    assert len(rows) >= 8
    report("Figure 2 / Figure 13 facts", [
        {"statement": row["statement"], "kind": row["kind"]} for row in rows
    ])
    write_bench_json(
        "fig02",
        {
            "separation_table_median_seconds": benchmark_median_seconds(benchmark),
            "separation_table_rows": len(rows),
        },
    )


def test_separations_sweep_scenario(benchmark):
    """The Figure 2 membership games, run as a registered sweep scenario.

    The sweep executor shards the scenario's instances by shared leaf
    evaluator and answers them through the engine; the fooling-pair games
    must come out exactly as Proposition 24 predicts (only the doubled
    cycle is 2-colorable).
    """
    result = benchmark(run_scenario, "separations")
    by_name = {r.name: r.verdict for r in result.results}
    for radius in (1, 2):
        assert by_name[f"2-colorable|fooling-odd-r{radius}|glued"] is False
        assert by_name[f"2-colorable|fooling-doubled-r{radius}|glued"] is True
    assert by_name["3-colorable|k4|small"] is False
    assert by_name["3-colorable|fig1-yes|small"] is True
    write_bench_json(
        "fig02",
        {
            "sweep_separations_median_seconds": benchmark_median_seconds(benchmark),
            "sweep_separations_instances": len(result.results),
        },
    )


def test_engine_speedup_over_naive_game(benchmark):
    """The engine must beat the exhaustive solver by >= 5x on the NLP game.

    The instance is the 3-colorability membership game on a 7-cycle: the
    reference solver expands 3^7 certificate assignments with a full
    LOCAL-model simulation each, the engine solves the same game through
    memoized local views and pruned innermost search.
    """
    machine = builtin.three_colorability_verifier()
    graph = generators.cycle_graph(7)
    ids = sequential_identifier_assignment(graph)
    spaces = [color_space(3)]
    prefix = sigma_prefix(1)

    start = time.perf_counter()
    naive_value = eve_wins(machine, graph, ids, spaces, prefix)
    naive_seconds = time.perf_counter() - start

    def engine_run():
        # A fresh engine each round: cold ball index, verdict cache and
        # transposition table, so the measurement includes all setup.
        return GameEngine(machine, graph, ids, spaces).eve_wins(prefix)

    engine_value = benchmark(engine_run)
    assert engine_value == naive_value

    start = time.perf_counter()
    assert engine_run() == naive_value
    engine_seconds = time.perf_counter() - start
    speedup = naive_seconds / engine_seconds
    report(
        "Engine vs exhaustive solver (Sigma^lp_1 game, C7)",
        [
            {
                "naive_seconds": round(naive_seconds, 4),
                "engine_seconds": round(engine_seconds, 6),
                "speedup": round(speedup, 1),
            }
        ],
    )
    engine_median = benchmark_median_seconds(benchmark)
    write_bench_json(
        "fig02",
        {
            "engine_vs_naive": {
                "naive_seconds": naive_seconds,
                "engine_seconds": engine_seconds,
                "engine_median_seconds": engine_median,
                "speedup": round(speedup, 2),
                "speedup_median": round(naive_seconds / engine_median, 2)
                if engine_median
                else None,
            }
        },
    )
    assert speedup >= 5.0, f"engine speedup {speedup:.1f}x below the required 5x"
