"""Figures 2 and 13: the hierarchy diagram and its separation witnesses.

Reproduces the executable separations: LP ⊊ NLP (Proposition 24), the
incomparability of coLP and NLP (Proposition 26), and the placement of
3-colorability in NLP \\ LP, times the two witness constructions, and
measures the certificate-game engine against the exhaustive reference
solver on the NLP membership game.
"""

import time

from repro.engine import CompiledGameEngine, CompiledInstance, GameEngine
from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.hierarchy.certificate_spaces import bit_space, color_space
from repro.hierarchy.game import eve_wins, sigma_prefix
from repro.machines import builtin
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.separations import (
    lp_vs_nlp_separation_report,
    pumping_breaks_verifier,
    separation_table,
)
from repro.sweep import run_scenario

from conftest import (
    report,
    timed_median_seconds,
    timed_median_with_result,
    write_bench_json,
)


def test_lp_strictly_below_nlp(benchmark):
    candidate = NeighborhoodGatherAlgorithm(1, lambda view: "1", name="candidate-decider")
    result = benchmark(lp_vs_nlp_separation_report, candidate, 2)
    assert result["separation_established"]
    report("Proposition 24 (LP ⊊ NLP)", [result])


def test_colp_incomparable_with_nlp(benchmark):
    result = benchmark(pumping_breaks_verifier, 4, 3)
    assert result["verifier_complete"]
    assert result["soundness_broken"]
    report("Proposition 26 (coLP ⋚ NLP)", [result])


def test_full_separation_table(benchmark):
    rows = benchmark(separation_table)
    assert len(rows) >= 8
    report("Figure 2 / Figure 13 facts", [
        {"statement": row["statement"], "kind": row["kind"]} for row in rows
    ])
    write_bench_json(
        "fig02",
        {
            "separation_table_median_seconds": timed_median_seconds(separation_table),
            "separation_table_rows": len(rows),
        },
    )


def test_separations_sweep_scenario(benchmark):
    """The Figure 2 membership games, run as a registered sweep scenario.

    The sweep executor shards the scenario's instances by shared leaf
    evaluator and answers them through the engine; the fooling-pair games
    must come out exactly as Proposition 24 predicts (only the doubled
    cycle is 2-colorable).
    """
    result = benchmark(run_scenario, "separations")
    by_name = {r.name: r.verdict for r in result.results}
    for radius in (1, 2):
        assert by_name[f"2-colorable|fooling-odd-r{radius}|glued"] is False
        assert by_name[f"2-colorable|fooling-doubled-r{radius}|glued"] is True
    assert by_name["3-colorable|k4|small"] is False
    assert by_name["3-colorable|fig1-yes|small"] is True
    write_bench_json(
        "fig02",
        {
            "sweep_separations_median_seconds": timed_median_seconds(
                lambda: run_scenario("separations")
            ),
            "sweep_separations_instances": len(result.results),
        },
    )


def test_engine_speedup_over_naive_game(benchmark):
    """The engine must beat the exhaustive solver by >= 5x on the NLP game.

    The instance is the 3-colorability membership game on a 7-cycle: the
    reference solver expands 3^7 certificate assignments with a full
    LOCAL-model simulation each, the engine solves the same game through
    memoized local views and pruned innermost search.
    """
    machine = builtin.three_colorability_verifier()
    graph = generators.cycle_graph(7)
    ids = sequential_identifier_assignment(graph)
    spaces = [color_space(3)]
    prefix = sigma_prefix(1)

    start = time.perf_counter()
    naive_value = eve_wins(machine, graph, ids, spaces, prefix)
    naive_seconds = time.perf_counter() - start

    def engine_run():
        # A fresh engine each round: cold ball index, verdict cache and
        # transposition table, so the measurement includes all setup.
        return GameEngine(machine, graph, ids, spaces).eve_wins(prefix)

    engine_value = benchmark(engine_run)
    assert engine_value == naive_value

    engine_median, engine_result = timed_median_with_result(engine_run, repeats=5)
    assert engine_result == naive_value

    start = time.perf_counter()
    assert engine_run() == naive_value
    engine_seconds = time.perf_counter() - start
    speedup = naive_seconds / engine_seconds
    speedup_median = naive_seconds / engine_median
    report(
        "Engine vs exhaustive solver (Sigma^lp_1 game, C7)",
        [
            {
                "naive_seconds": round(naive_seconds, 4),
                "engine_median_seconds": round(engine_median, 6),
                "speedup_median": round(speedup_median, 1),
            }
        ],
    )
    write_bench_json(
        "fig02",
        {
            "engine_vs_naive": {
                "naive_seconds": naive_seconds,
                "engine_seconds": engine_seconds,
                "engine_median_seconds": engine_median,
                "speedup": round(speedup, 2),
                "speedup_median": round(speedup_median, 2),
            }
        },
    )
    assert speedup_median >= 5.0, (
        f"engine median speedup {speedup_median:.1f}x below the required 5x"
    )


def _figure2_workload():
    """The Figure-2 membership games used for the compiled-core comparison.

    The class-membership questions behind the hierarchy diagram --
    3-colorability (NLP via Theorem 23) on the paper's gadgets, complete
    graphs and cycles, and 2-colorability (Proposition 24) on odd/even
    cycles -- under globally unique identifiers, where the verifiers take
    the engine's fast path.  Reject-heavy instances (K4/K5/K6, odd cycles)
    dominate, so the measurement is of cold search work, not of engine
    construction.
    """
    three = builtin.three_colorability_verifier()
    two = builtin.two_colorability_verifier()
    games = []
    for machine, graph, spaces in [
        (three, generators.cycle_graph(7), [color_space(3)]),
        (three, generators.figure1_yes_instance(), [color_space(3)]),
        (three, generators.figure1_no_instance(), [color_space(3)]),
        (three, generators.complete_graph(4), [color_space(3)]),
        (three, generators.complete_graph(5), [color_space(3)]),
        (three, generators.complete_graph(6), [color_space(3)]),
        (three, generators.cycle_graph(15), [color_space(3)]),
        (two, generators.cycle_graph(9), [bit_space()]),
        (two, generators.cycle_graph(13), [bit_space()]),
        (two, generators.cycle_graph(17), [bit_space()]),
    ]:
        ids = sequential_identifier_assignment(graph)
        games.append((machine, graph, ids, spaces, sigma_prefix(1)))
    return games


def test_compiled_speedup_over_engine(benchmark):
    """The compiled core must beat the PR-1 engine by >= 5x cold.

    Both tiers solve the whole Figure-2 workload with *cold* caches: a
    fresh ``GameEngine`` (fresh leaf evaluator, fresh ball index) per game
    for the PR-1 tier, and a fresh ``CompiledInstance`` plus engine per
    game for the compiled tier -- so the comparison covers lowering,
    interning and table construction, not just warm lookups.  Medians are
    taken over >= 3 full-workload passes.
    """
    games = _figure2_workload()

    def run_engine_tier():
        return [
            GameEngine(machine, graph, ids, spaces).eve_wins(prefix)
            for machine, graph, ids, spaces, prefix in games
        ]

    def run_compiled_tier():
        return [
            CompiledGameEngine(
                machine, graph, ids, spaces,
                instance=CompiledInstance(machine, graph, ids),
            ).eve_wins(prefix)
            for machine, graph, ids, spaces, prefix in games
        ]

    engine_median, engine_verdicts = timed_median_with_result(run_engine_tier)
    compiled_median, compiled_verdicts = timed_median_with_result(run_compiled_tier)
    assert compiled_verdicts == engine_verdicts
    speedup_median = engine_median / compiled_median
    benchmark(run_compiled_tier)
    report(
        "Compiled core vs PR-1 engine (Figure-2 workload, cold)",
        [
            {
                "games": len(games),
                "engine_median_seconds": round(engine_median, 6),
                "compiled_median_seconds": round(compiled_median, 6),
                "speedup_median": round(speedup_median, 1),
            }
        ],
    )
    write_bench_json(
        "fig02",
        {
            "compiled_vs_engine": {
                "workload_games": len(games),
                "engine_median_seconds": engine_median,
                "compiled_median_seconds": compiled_median,
                "speedup_median": round(speedup_median, 2),
            }
        },
    )
    assert speedup_median >= 5.0, (
        f"compiled median speedup {speedup_median:.1f}x below the required 5x"
    )


def test_bitset_speedup_over_compiled(benchmark):
    """The bitset tier must beat the PR-3 compiled tier by >= 3x cold.

    Same Figure-2 workload, same cold-cache discipline (fresh
    ``CompiledInstance`` and engine per game); the only difference between
    the tiers is ``use_bitset`` -- mask-pruned innermost search versus the
    PR-3 per-candidate memo loop.  Reject-heavy instances (K4/K5/K6, odd
    cycles) dominate, which is exactly where whole-code-block pruning pays.
    """
    games = _figure2_workload()

    def run_tier(use_bitset):
        return [
            CompiledGameEngine(
                machine, graph, ids, spaces,
                instance=CompiledInstance(machine, graph, ids),
                use_bitset=use_bitset,
            ).eve_wins(prefix)
            for machine, graph, ids, spaces, prefix in games
        ]

    compiled_median, compiled_verdicts = timed_median_with_result(
        lambda: run_tier(False), repeats=5
    )
    bitset_median, bitset_verdicts = timed_median_with_result(
        lambda: run_tier(True), repeats=5
    )
    assert bitset_verdicts == compiled_verdicts
    speedup_median = compiled_median / bitset_median
    benchmark(lambda: run_tier(True))
    report(
        "Bitset tier vs PR-3 compiled tier (Figure-2 workload, cold)",
        [
            {
                "games": len(games),
                "compiled_median_seconds": round(compiled_median, 6),
                "bitset_median_seconds": round(bitset_median, 6),
                "speedup_median": round(speedup_median, 1),
            }
        ],
    )
    write_bench_json(
        "fig02",
        {
            "bitset_vs_compiled": {
                "workload_games": len(games),
                "compiled_median_seconds": compiled_median,
                "bitset_median_seconds": bitset_median,
                "speedup_median": round(speedup_median, 2),
            }
        },
    )
    assert speedup_median >= 3.0, (
        f"bitset median speedup {speedup_median:.1f}x below the required 3x"
    )
