"""Section 9.3: properties outside the locally polynomial hierarchy.

Reproduces the two halves of the Section 9.3 argument on concrete instances:
the pumping lemma refutes candidate DFAs for the non-regular cardinality
languages (prime, power of two), and cycle pumping fools concrete
constant-radius verifiers on the corresponding graph properties.
"""

import pytest

from repro.machines.builtin import constant_algorithm, predicate_decider
from repro.pictures.automata import divisibility_dfa, parity_dfa
from repro.separations.outside_hierarchy import (
    dfa_pumping_contradiction,
    is_power_of_two,
    is_prime,
    prime_cardinality_fooling,
    power_of_two_cardinality_fooling,
)

from conftest import report


@pytest.mark.parametrize("modulus", [2, 3, 5, 7])
def test_dfa_refutation_for_primes(benchmark, modulus):
    witness = benchmark(dfa_pumping_contradiction, divisibility_dfa(modulus), is_prime)
    assert witness is not None
    report(f"Section 9.3: mod-{modulus} DFA cannot recognize prime lengths", [witness])


def test_dfa_refutation_for_powers_of_two(benchmark):
    witness = benchmark(dfa_pumping_contradiction, parity_dfa(), is_power_of_two)
    assert witness is not None
    report("Section 9.3: parity DFA cannot recognize power-of-two lengths", [witness])


@pytest.mark.parametrize("prime_length", [23, 29, 41])
def test_prime_cycle_pumping(benchmark, prime_length):
    verifier = predicate_decider(
        1, lambda view: all(view.label_of(v) == "1" for v in view.nodes), name="local-window"
    )
    result = benchmark(prime_cardinality_fooling, verifier, prime_length)
    assert result.verifier_accepts_originally
    assert result.fooled
    report(
        f"Section 9.3: prime cycle of length {prime_length} pumped to {result.pumped_length}",
        [result.__dict__],
    )


def test_power_of_two_cycle_pumping(benchmark):
    result = benchmark(power_of_two_cardinality_fooling, constant_algorithm("1"), 5)
    assert result.fooled
    report("Section 9.3: power-of-two cycle pumping", [result.__dict__])
