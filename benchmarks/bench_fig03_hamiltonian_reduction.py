"""Figures 3 and 10: the reduction from all-selected to hamiltonian (Proposition 19).

Reproduces the equivalence "all labels 1  iff  the output graph is
Hamiltonian" on a sweep of labeled graphs (including the Figure 3 instance),
and times the reduction and the downstream Hamiltonicity check.
"""

from repro.graphs import generators
from repro.reductions import AllSelectedToHamiltonian, verify_reduction_equivalence
import repro.properties as props

from conftest import report


def sweep_graphs():
    return [
        generators.figure3_graph(),
        generators.figure3_graph().with_uniform_label("1"),
        generators.path_graph(4, labels=["1"] * 4),
        generators.path_graph(4, labels=["1", "0", "1", "1"]),
        generators.cycle_graph(5, labels=["1"] * 5),
        generators.star_graph(3, center_label="1", leaf_label="1"),
    ]


def test_reduction_equivalence_sweep(benchmark):
    reduction = AllSelectedToHamiltonian()
    graphs = sweep_graphs()
    failures = benchmark(
        verify_reduction_equivalence, reduction, props.all_selected, props.hamiltonian, graphs
    )
    assert failures == []
    rows = []
    for graph in graphs:
        output = reduction.apply(graph).output_graph
        rows.append(
            {
                "input nodes": graph.cardinality(),
                "all-selected": props.all_selected(graph),
                "output nodes": output.cardinality(),
                "hamiltonian": props.hamiltonian(output),
            }
        )
    report("Figure 3/10: all-selected -> hamiltonian", rows)


def test_reduction_construction_time(benchmark):
    reduction = AllSelectedToHamiltonian()
    graph = generators.cycle_graph(12, labels=["1"] * 12)
    result = benchmark(reduction.apply, graph)
    assert result.output_graph.cardinality() == 4 * 12  # 2d per node with d = 2 -> 4 per node


def test_figure3_instance(benchmark):
    reduction = AllSelectedToHamiltonian()
    graph = generators.figure3_graph()
    output = benchmark(lambda: reduction.apply(graph).output_graph)
    assert not props.hamiltonian(output)
