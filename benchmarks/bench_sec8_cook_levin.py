"""Section 8: the generalized Cook-Levin construction (Theorem 22).

Times the construction of the Boolean graph from the 3-colorability sentence
and checks the equivalence with the ground truth on yes- and no-instances.
"""

from repro.fagin import cook_levin_boolean_graph
from repro.graphs import generators
from repro.logic.examples import three_colorable_formula
import repro.properties as props

from conftest import report


def test_construction_time(benchmark):
    graph = generators.cycle_graph(5)
    boolean_graph = benchmark(cook_levin_boolean_graph, three_colorable_formula(), graph)
    assert boolean_graph.cardinality() == graph.cardinality()


def test_equivalence_on_sweep(benchmark):
    formula = three_colorable_formula()
    graphs = {
        "C3": generators.cycle_graph(3),
        "C5": generators.cycle_graph(5),
        "K4": generators.complete_graph(4),
        "P3": generators.path_graph(3),
    }

    def run():
        return {
            name: props.sat_graph(cook_levin_boolean_graph(formula, graph))
            for name, graph in graphs.items()
        }

    results = benchmark(run)
    for name, graph in graphs.items():
        assert results[name] == props.three_colorable(graph)
    report("Theorem 22 (Cook-Levin): G 3-colorable iff G'' in sat-graph", [results])
