"""Figures 6 and 14: pictures, their structural representations, and tiling systems.

Reproduces the Figure 14 structural representation, checks the tiling-system
recognizers against direct membership tests (the machinery behind Theorem 32),
and exercises the picture-to-graph encoding of Section 9.2.2.
"""

from repro.pictures import (
    Picture,
    all_ones_system,
    grid_graph_to_picture,
    is_square_picture,
    picture_structure,
    picture_to_grid_graph,
    square_pictures_system,
    top_row_has_one_system,
    has_one_in_top_row,
)

from conftest import report


def test_figure14_structural_representation(benchmark):
    picture = Picture.from_rows(
        [["00", "01", "00", "01"], ["10", "11", "10", "11"], ["00", "01", "00", "01"]]
    )
    structure = benchmark(picture_structure, picture)
    assert structure.cardinality() == 12
    assert structure.signature == (2, 2)
    report("Figure 6/14", [
        {"picture size": picture.size(), "elements": structure.cardinality(),
         "vertical arrows": len(structure.binary(1)), "horizontal arrows": len(structure.binary(2))}
    ])


def test_square_tiling_system_recognition(benchmark):
    system = square_pictures_system()

    def run():
        results = {}
        for height in range(1, 5):
            for width in range(1, 5):
                picture = Picture.constant(height, width, "0")
                results[(height, width)] = system.accepts(picture)
        return results

    results = benchmark(run)
    for (height, width), accepted in results.items():
        assert accepted == (height == width)
    report("Tiling system for squares", [
        {"size": size, "accepted": accepted} for size, accepted in sorted(results.items())
    ])


def test_top_row_tiling_system(benchmark):
    system = top_row_has_one_system()
    yes = Picture.from_rows([["0", "0", "1"], ["0", "0", "0"]])
    no = Picture.from_rows([["0", "0", "0"], ["1", "1", "1"]])
    result = benchmark(system.accepts, yes)
    assert result is True
    assert system.accepts(no) is False
    assert has_one_in_top_row(yes) and not has_one_in_top_row(no)


def test_all_ones_system_scaling(benchmark):
    system = all_ones_system()
    picture = Picture.constant(4, 4, "1")
    assert benchmark(system.accepts, picture)


def test_picture_graph_round_trip(benchmark):
    picture = Picture.constant(5, 7, "10")

    def round_trip():
        return grid_graph_to_picture(picture_to_grid_graph(picture))

    assert benchmark(round_trip) == picture
