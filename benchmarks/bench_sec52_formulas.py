"""Section 5.2: model checking the example formulas against the ground truth.

Times the exhaustive evaluation of the Sigma^lfo_1 and Sigma^lfo_3 example
formulas on small graphs and asserts agreement with the centralized property
checkers.
"""

from repro.graphs import generators
from repro.logic import EvaluationOptions, graph_satisfies
from repro.logic.examples import (
    exists_unselected_node_formula,
    hamiltonian_formula,
    three_colorable_formula,
)
import repro.properties as props

from conftest import report

OPTIONS = EvaluationOptions(second_order_locality=1, second_order_node_only=True, candidate_limit=40)


def test_three_colorable_formula_model_checking(benchmark):
    formula = three_colorable_formula()
    graphs = [generators.cycle_graph(3), generators.cycle_graph(5), generators.complete_graph(4)]

    def run():
        return [graph_satisfies(graph, formula, options=OPTIONS) for graph in graphs]

    results = benchmark(run)
    expected = [props.three_colorable(graph) for graph in graphs]
    assert results == expected
    report("Example 5 (3-colorable)", [dict(zip(["C3", "C5", "K4"], results))])


def test_not_all_selected_formula_model_checking(benchmark):
    formula = exists_unselected_node_formula()
    yes = generators.path_graph(3, labels=["1", "0", "1"])
    no = generators.path_graph(3, labels=["1", "1", "1"])

    def run():
        return (
            graph_satisfies(yes, formula, options=OPTIONS),
            graph_satisfies(no, formula, options=OPTIONS),
        )

    results = benchmark(run)
    assert results == (True, False)
    report("Example 6 (not-all-selected)", [{"with unselected node": results[0], "all selected": results[1]}])


def test_hamiltonian_formula_model_checking(benchmark):
    formula = hamiltonian_formula()
    triangle = generators.cycle_graph(3)

    def run():
        return graph_satisfies(triangle, formula, options=OPTIONS)

    assert benchmark(run) is True
