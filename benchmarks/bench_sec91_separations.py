"""Section 9.1: the ground-level separation constructions, swept over parameters.

Times the fooling-pair construction (Proposition 24) for growing identifier
radii and the pumping construction (Proposition 26) for growing cycle lengths,
asserting in each case that the argument goes through.
"""

import pytest

from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.separations import fooling_pair, lp_vs_nlp_separation_report, pumping_breaks_verifier
from repro.separations.lp_vs_nlp import views_coincide

from conftest import report


@pytest.mark.parametrize("identifier_radius", [1, 2, 3])
def test_fooling_pair_sweep(benchmark, identifier_radius):
    pair = benchmark(fooling_pair, identifier_radius)
    assert views_coincide(pair, radius=1)
    report(
        f"Proposition 24 sweep (r_id = {identifier_radius})",
        [{"odd cycle": pair.odd_cycle.cardinality(), "doubled": pair.doubled_cycle.cardinality()}],
    )


def test_full_lp_vs_nlp_report(benchmark):
    candidate = NeighborhoodGatherAlgorithm(1, lambda view: "1")
    result = benchmark(lp_vs_nlp_separation_report, candidate, 3)
    assert result["separation_established"]


@pytest.mark.parametrize("modulus,period", [(2, 3), (4, 3)])
def test_pumping_sweep(benchmark, modulus, period):
    result = benchmark(pumping_breaks_verifier, modulus, period)
    assert result["verifier_complete"]
    if result["pair_found"]:
        assert result["soundness_broken"]
    report(
        f"Proposition 26 sweep (modulus {modulus})",
        [{k: v for k, v in result.items() if k != "indistinguishable_pairs"}],
    )
