"""Figure 1: the two instances of 3-round 3-colorability (Example 1).

Reproduces the paper's claim: the graph of Figure 1a is 3-colorable but Adam
wins the 3-round colouring game on it, while removing the edge {w1, w3}
(Figure 1b) lets Eve win.
"""

from repro.graphs import generators
import repro.properties as props

from conftest import report


def test_figure1a_no_instance(benchmark):
    graph = generators.figure1_no_instance()
    result = benchmark(props.three_round_three_colorable, graph)
    assert props.three_colorable(graph)
    assert result is False
    report("Figure 1a", [
        {"3-colorable": True, "3-round 3-colorable": result, "paper": "no-instance"},
    ])


def test_figure1b_yes_instance(benchmark):
    graph = generators.figure1_yes_instance()
    result = benchmark(props.three_round_three_colorable, graph)
    assert props.three_colorable(graph)
    assert result is True
    report("Figure 1b", [
        {"3-colorable": True, "3-round 3-colorable": result, "paper": "yes-instance"},
    ])


def test_three_round_game_scales_with_low_degree_nodes(benchmark):
    # A slightly larger instance: stars have many degree-1 nodes for Eve's first move.
    graph = generators.star_graph(5)
    result = benchmark(props.three_round_three_colorable, graph)
    assert result is True
