"""Section 9.2: tiling systems, their word restriction, and the logic translation.

Times the NFA-to-tiling-system and tiling-system-to-NFA constructions
(the word-level shadow of Theorem 32), the closure operations used by the
hierarchy induction, and the Corollary 33 sentence generation.
"""

import pytest

from repro.pictures.automata import all_ones_dfa, divisibility_dfa, parity_dfa
from repro.pictures.closure import intersection_system, union_system
from repro.pictures.mso import tiling_sentence
from repro.pictures.word_tilings import (
    agree_on_words,
    nfa_to_tiling_system,
    tiling_system_accepts_word,
    tiling_system_to_nfa,
)

from conftest import report

SAMPLE_WORDS = ["1", "0", "11", "10", "111", "101", "1111", "1101", "11111"]


@pytest.mark.parametrize(
    "dfa_factory", [parity_dfa, all_ones_dfa, lambda: divisibility_dfa(3)], ids=["parity", "ones", "div3"]
)
def test_nfa_tiling_round_trip(benchmark, dfa_factory):
    dfa = dfa_factory()

    def round_trip():
        system = nfa_to_tiling_system(dfa.to_nfa())
        recovered = tiling_system_to_nfa(system)
        return agree_on_words(system, recovered, SAMPLE_WORDS)

    agree, disagreements = benchmark(round_trip)
    assert agree, disagreements


def test_tiling_closure_operations(benchmark):
    parity = nfa_to_tiling_system(parity_dfa().to_nfa())
    ones = nfa_to_tiling_system(all_ones_dfa().to_nfa())

    def closures():
        union = union_system(parity, ones)
        intersection = intersection_system(parity, ones)
        return union, intersection

    union, intersection = benchmark(closures)
    for word in SAMPLE_WORDS:
        assert tiling_system_accepts_word(union, word) == (
            parity_dfa().accepts(word) or all_ones_dfa().accepts(word)
        )
        assert tiling_system_accepts_word(intersection, word) == (
            parity_dfa().accepts(word) and all_ones_dfa().accepts(word)
        )
    report(
        "Section 9.2 closure sizes",
        [{"union tiles": len(union.tiles), "intersection tiles": len(intersection.tiles)}],
    )


def test_corollary33_sentence_generation(benchmark):
    system = nfa_to_tiling_system(all_ones_dfa().to_nfa())
    sentence = benchmark(tiling_sentence, system)
    assert sentence is not None
