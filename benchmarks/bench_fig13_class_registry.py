"""Figure 13: regenerating the hierarchy diagram's rows from the class registry.

Rebuilds the per-level summary of Figure 2/13 (inclusions, strictness,
same-level incomparability, the bounded-degree chain) and cross-checks it
against the executable separation witnesses.
"""

from repro.hierarchy.classes import bounded_degree_chain, figure2_rows, inclusion_edges
from repro.separations.witnesses import hierarchy_facts

from conftest import report


def test_figure2_rows(benchmark):
    rows = benchmark(figure2_rows, 6)
    assert len(rows) == 7
    assert all(row["strict_step_up"] for row in rows)
    report("Figure 2/13 per-level summary", rows)


def test_inclusion_edges(benchmark):
    edges = benchmark(inclusion_edges, 5)
    assert ("LP", "NLP", "strict") in edges
    report("Figure 13 covering edges (both hierarchies)", edges)


def test_bounded_degree_chain_matches_witnesses(benchmark):
    chain = benchmark(bounded_degree_chain, 6)
    assert chain[:2] == ["LP", "NLP"]
    facts = hierarchy_facts()
    assert facts, "the separation witnesses must be available"
    report("Bounded-degree collapse chain", [{"chain": " ⊊ ".join(chain)}])
