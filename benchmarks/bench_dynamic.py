"""Dynamic verdict repair vs full recompute on a mostly-stable trace.

The incremental-scenario subsystem's whole claim is that after a small
mutation, repairing the compiled instance in place (dirty dependency balls
only, clean memos surviving) beats rebuilding and re-solving the game from
scratch.  This benchmark replays the ``dynamic-cycles`` workload -- a
32-cycle under the 2-colorability game with periodic identifiers, so the
engine sits on its memo-heavy simulation path, and label churn confined to
three hot nodes -- and times, per delta:

* **repair**: ``MutableInstance.apply`` + the incremental ``verdict()``,
* **recompute**: a fresh ``CompiledInstance`` + engine over a snapshot of
  the same mutated state (what a client without the mutable layer pays).

Every pair of verdicts is asserted equal (the benchmark doubles as a
differential check), and ``BENCH_dynamic.json`` records the medians.  CI
gates ``repair_vs_recompute.speedup_median >= 3``: if repair ever degrades
to within 3x of recompute on this workload, the dynamic subsystem has lost
its reason to exist.
"""

from __future__ import annotations

import statistics

from repro.engine.dynamic import MutableInstance, recompute_verdict
from repro.sweep.scenarios import get_dynamic_scenario

from conftest import report, write_bench_json

SCENARIO = "dynamic-cycles"

#: The CI gate (kept in one place so the workflow and the in-test assert
#: cannot drift apart).
MIN_SPEEDUP = 3.0


def _replay_with_timings(trace):
    """Replay the trace, timing repair and recompute per delta."""
    import time

    mutable = MutableInstance.from_game_instance(trace.base)
    mutable.verdict()  # warm solve: the steady state repair starts from
    repair_seconds = []
    recompute_seconds = []
    verdicts = []
    for delta in trace.deltas:
        start = time.perf_counter()
        mutable.apply(delta)
        repaired = mutable.verdict()
        repair_seconds.append(time.perf_counter() - start)

        snapshot = mutable.as_game_instance()
        start = time.perf_counter()
        recomputed = recompute_verdict(snapshot)
        recompute_seconds.append(time.perf_counter() - start)

        assert repaired == recomputed, (delta, repaired, recomputed)
        verdicts.append(repaired)
    return mutable, repair_seconds, recompute_seconds, verdicts


def test_repair_beats_recompute_on_mostly_stable_trace(benchmark):
    """Median repair must beat median recompute by >= MIN_SPEEDUP."""
    scenario = get_dynamic_scenario(SCENARIO)
    trace = scenario.trace()
    mutable, repair_seconds, recompute_seconds, verdicts = _replay_with_timings(trace)

    repair_median = statistics.median(repair_seconds)
    recompute_median = statistics.median(recompute_seconds)
    speedup = recompute_median / repair_median if repair_median > 0 else float("inf")
    assert speedup >= MIN_SPEEDUP, (
        f"repair {repair_median * 1e3:.2f}ms vs recompute "
        f"{recompute_median * 1e3:.2f}ms: speedup {speedup:.2f}x < {MIN_SPEEDUP}x"
    )
    # Repair must actually be incremental: no delta of this trace may dirty
    # the whole graph (a full rebuild would time like a recompute).
    info = mutable.info()
    assert info["full_rebuilds"] == 0, info
    assert info["dirty_total"] < info["mutations"] * info["nodes"], info

    # pytest-benchmark times one representative repaired step on a fresh
    # replay (apply + incremental verdict of the first delta).
    def one_repair_step():
        fresh = MutableInstance.from_game_instance(scenario.trace().base)
        fresh.verdict()
        fresh.apply(trace.deltas[0])
        return fresh.verdict()

    benchmark(one_repair_step)

    report(
        "Dynamic repair vs recompute (mostly-stable 32-cycle trace)",
        [
            {"steps": len(trace.deltas), "verdicts": verdicts},
            {
                "repair_median_ms": round(repair_median * 1e3, 3),
                "recompute_median_ms": round(recompute_median * 1e3, 3),
                "speedup_median": round(speedup, 2),
            },
            {
                "dirty_total": info["dirty_total"],
                "memo_invalidations": info["memo"]["invalidations"],
                "memo_hits": info["memo"]["hits"],
            },
        ],
    )
    write_bench_json(
        "dynamic",
        {
            "scenario": SCENARIO,
            "base": trace.base.name,
            "steps": len(trace.deltas),
            "repair_vs_recompute": {
                "repair_median_seconds": repair_median,
                "recompute_median_seconds": recompute_median,
                "speedup_median": round(speedup, 3),
                "min_speedup_gate": MIN_SPEEDUP,
            },
            "trace": {
                "dirty_total": info["dirty_total"],
                "full_rebuilds": info["full_rebuilds"],
                "nodes": info["nodes"],
                "mutations": info["mutations"],
                "memo": info["memo"],
            },
        },
    )
