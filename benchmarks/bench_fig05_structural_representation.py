"""Figure 5: structural representations of labeled graphs.

Reproduces the element/relation counts of the Figure 5 example and measures
how the construction scales with the number of nodes and the label lengths.
"""

from repro.graphs import generators
from repro.graphs.structures import structural_representation

from conftest import report


def test_figure5_example(benchmark):
    graph = generators.cycle_graph(4, labels=["010", "10", "1101", "001"])
    structure = benchmark(structural_representation, graph)
    assert structure.cardinality() == 4 + 3 + 2 + 4 + 3
    assert structure.signature == (1, 2)
    report("Figure 5", [
        {
            "nodes": graph.cardinality(),
            "label bits": sum(len(graph.label(u)) for u in graph.nodes),
            "elements of $G": structure.cardinality(),
            "edge arrows": len(structure.binary(1)),
            "ownership arrows": len(structure.binary(2)),
        }
    ])


def test_scaling_in_graph_size(benchmark):
    graph = generators.cycle_graph(60, labels=["1010"] * 60)
    structure = benchmark(structural_representation, graph)
    assert structure.cardinality() == 60 * 5


def test_scaling_in_label_length(benchmark):
    graph = generators.path_graph(8, labels=["01" * 16] * 8)
    structure = benchmark(structural_representation, graph)
    assert structure.cardinality() == 8 * (1 + 32)
