"""Section 7: the generalized Fagin theorem (formula -> arbiter compilation).

Times the compilation of the 3-colorability sentence into an NLP arbiter and
the resulting certificate game, and checks the game's verdicts against the
ground truth (the backward direction of Theorem 14 in action).
"""

from repro.fagin import compile_sentence
from repro.graphs import generators
from repro.logic.examples import all_selected_formula, three_colorable_formula
import repro.properties as props

from conftest import report


def test_compilation_time(benchmark):
    compiled = benchmark(compile_sentence, three_colorable_formula())
    assert compiled.radius == 2
    assert [kind for kind, _ in compiled.blocks] == ["E"]


def test_compiled_nlp_game_positive_instance(benchmark):
    spec = compile_sentence(three_colorable_formula()).spec("3-colorable")
    triangle = generators.cycle_graph(3)
    result = benchmark(spec.decide, triangle)
    assert result is True
    report("Theorem 14 (compiled arbiter, yes-instance)", [
        {"graph": "C3", "game value": result, "ground truth": props.three_colorable(triangle)}
    ])


def test_compiled_nlp_game_negative_instance(benchmark):
    spec = compile_sentence(three_colorable_formula()).spec("3-colorable")
    k4 = generators.complete_graph(4)
    result = benchmark.pedantic(spec.decide, args=(k4,), iterations=1, rounds=1)
    assert result is False
    report("Theorem 14 (compiled arbiter, no-instance)", [
        {"graph": "K4", "game value": result, "ground truth": props.three_colorable(k4)}
    ])


def test_compiled_lp_decider(benchmark):
    spec = compile_sentence(all_selected_formula()).spec("all-selected")
    graph = generators.path_graph(5, labels=["1"] * 5)
    result = benchmark(spec.decide, graph)
    assert result is True
