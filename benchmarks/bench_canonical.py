"""Canonical ball memoization: hit rates on the separations sweep.

Measures how much of the Figure-2 (``separations``) workload's expensive
per-node work is answered by the canonical ball cache instead of being
recomputed:

* **cold**: a fresh cache shared across the sweep's instances -- hits are
  isomorphic dependency balls recurring across nodes and instances (the
  glued fooling-pair games are full of them);
* **store-backed**: a second, completely fresh evaluation over a store
  holding the first pass's node verdicts -- hits now come from the
  persistence tier, the cross-session path the service's compute tier uses.

Writes ``BENCH_canonical.json`` (hit counters and rates per shape), gated
in CI: the cold hit rate must be positive, or the canonical tier is dead
weight.
"""

from __future__ import annotations

from repro.engine.canonical import CanonicalVerdictCache
from repro.sweep.executor import evaluate_timed, run_instances
from repro.sweep.scenarios import build_instances
from repro.sweep.store import MemoryVerdictStore

from conftest import report, write_bench_json

SCENARIO = "separations"


def test_canonical_cache_hit_rate_on_separations(benchmark):
    """The canonical cache must answer part of the cold separations sweep."""
    # Cold pass: fresh machines/graphs (the builder constructs new objects),
    # one shared canonical cache across every instance of the sweep.
    instances = build_instances(SCENARIO)
    cold_cache = CanonicalVerdictCache()
    cold_verdicts, _ = evaluate_timed(instances, canonical=cold_cache)
    cold = cold_cache.info()
    assert cold["hits"] > 0, cold

    # Store-backed pass: persist the cold pass's node verdicts, then solve
    # the whole workload again from scratch against the store.
    store = MemoryVerdictStore()
    store.put_node_many(cold_cache.drain_records())
    warm_cache = CanonicalVerdictCache(store=store)
    warm_verdicts, _ = evaluate_timed(build_instances(SCENARIO), canonical=warm_cache)
    assert warm_verdicts == cold_verdicts
    warm = warm_cache.info()
    assert warm["store_hits"] > 0, warm

    # The sweep orchestrator reports the same counters end to end.
    sweep = run_instances(build_instances(SCENARIO), scenario_name=SCENARIO)
    assert sweep.canonical is not None and sweep.canonical["hit_rate"] > 0

    benchmark(
        lambda: evaluate_timed(
            build_instances(SCENARIO), canonical=CanonicalVerdictCache(store=store)
        )
    )
    report(
        "Canonical ball cache (separations sweep)",
        [
            {"cold_hit_rate": cold["hit_rate"], "entries": cold["entries"]},
            {"store_hit_rate": warm["hit_rate"], "store_hits": warm["store_hits"]},
        ],
    )
    write_bench_json(
        "canonical",
        {
            "scenario": SCENARIO,
            "instances": len(instances),
            "cold": cold,
            "store_backed": warm,
            "sweep": sweep.canonical,
        },
    )
