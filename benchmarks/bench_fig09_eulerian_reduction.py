"""Figure 9: the reduction from all-selected to eulerian (Proposition 18).

Reproduces the equivalence on a sweep including the Figure 9 instance and
times the reduction on larger graphs.
"""

from repro.graphs import generators
from repro.reductions import AllSelectedToEulerian, verify_reduction_equivalence
import repro.properties as props

from conftest import report


def test_reduction_equivalence_sweep(benchmark):
    reduction = AllSelectedToEulerian()
    graphs = [
        generators.figure9_graph(),
        generators.figure9_graph().with_uniform_label("1"),
        generators.cycle_graph(6, labels=["1"] * 6),
        generators.cycle_graph(6, labels=["1", "1", "1", "0", "1", "1"]),
        generators.star_graph(4, center_label="1", leaf_label="1"),
        generators.single_node("0"),
    ]
    failures = benchmark(
        verify_reduction_equivalence, reduction, props.all_selected, props.eulerian, graphs
    )
    assert failures == []
    rows = []
    for graph in graphs:
        output = reduction.apply(graph).output_graph
        rows.append(
            {
                "input nodes": graph.cardinality(),
                "all-selected": props.all_selected(graph),
                "output nodes": output.cardinality(),
                "eulerian": props.eulerian(output),
            }
        )
    report("Figure 9: all-selected -> eulerian", rows)


def test_reduction_scales_linearly(benchmark):
    reduction = AllSelectedToEulerian()
    graph = generators.cycle_graph(60, labels=["1"] * 60)
    result = benchmark(reduction.apply, graph)
    assert result.output_graph.cardinality() == 120


def test_eulerian_decider_on_reduced_graph(benchmark):
    from repro.graphs.identifiers import sequential_identifier_assignment
    from repro.machines import builtin, execute

    reduction = AllSelectedToEulerian()
    graph = generators.cycle_graph(10, labels=["1"] * 10)
    output = reduction.apply(graph).output_graph
    ids = sequential_identifier_assignment(output)
    result = benchmark(execute, builtin.eulerian_decider(), output, ids)
    assert result.accepts()
