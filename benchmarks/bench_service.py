"""The online verdict service: throughput, latency percentiles, tier mix.

Measures the serving layer end to end -- sync clients over real sockets
against the asyncio daemon -- on the Figure-2 (``separations``) workload
in three shapes:

* **cold single-query** compute (no daemon, no caches): the baseline the
  acceptance criterion is phrased against;
* **hot-cache**: every answer from the daemon's in-process LRU;
* **warm-store**: a fresh daemon (empty LRU) over a pre-populated verdict
  store, so every answer is a tier-2 store hit promoted on the way out.

Writes ``BENCH_service.json`` (requests/sec, p50/p99 latency, cache hit
rate per workload) and asserts the >= 10x warm-over-cold criterion.
"""

from __future__ import annotations

import time

from repro.service.loadgen import run_load, scenario_payloads
from repro.service.server import ServerThread
from repro.sweep.executor import evaluate_timed
from repro.sweep.scenarios import build_instances
from repro.sweep.store import MemoryVerdictStore

from conftest import MIN_REPEATS, report, write_bench_json

#: The Figure-2 membership games (the acceptance criterion's workload).
SCENARIO = "separations"


def _cold_single_query_rate() -> tuple[float, int]:
    """Median cold queries/sec: fresh machines, graphs and engines per pass."""
    passes = []
    count = 0
    for _ in range(MIN_REPEATS):
        instances = build_instances(SCENARIO)
        count = len(instances)
        started = time.perf_counter()
        evaluate_timed(instances)
        passes.append(time.perf_counter() - started)
    passes.sort()
    median = passes[len(passes) // 2]
    return count / median, count


def test_service_throughput_and_latency(benchmark):
    """Hot/warm serving beats cold compute >= 10x on the Figure-2 workload."""
    cold_qps, instance_count = _cold_single_query_rate()

    store = MemoryVerdictStore()
    payloads = scenario_payloads(SCENARIO)
    with ServerThread(store=store) as server:
        run_load(server.address, payloads, clients=1, label="warmup")
        hot = run_load(
            server.address,
            payloads,
            clients=4,
            total=max(400, 8 * len(payloads)),
            label="hot-cache",
        )
        benchmark(
            lambda: run_load(server.address, payloads, clients=1, label="bench-pass")
        )
        stats = server.service.stats()

    # Fresh daemon, same store: the LRU is empty, tier 2 answers everything.
    with ServerThread(store=store) as warm_server:
        warm = run_load(
            warm_server.address,
            payloads,
            clients=4,
            total=max(200, 4 * len(payloads)),
            label="warm-store",
        )
        warm_sources = dict(warm.sources)

    assert hot.errors == 0 and warm.errors == 0
    assert hot.cache_hit_rate == 1.0
    assert warm_sources.get("store", 0) > 0

    hot_speedup = hot.qps / cold_qps
    warm_speedup = warm.qps / cold_qps
    report(
        "Online verdict service vs cold compute (Figure-2 workload)",
        [
            {"cold_qps": round(cold_qps, 1), "instances": instance_count},
            {"hot_qps": round(hot.qps, 1), "speedup": round(hot_speedup, 1)},
            {"warm_store_qps": round(warm.qps, 1), "speedup": round(warm_speedup, 1)},
        ],
    )
    write_bench_json(
        "service",
        {
            "scenario": SCENARIO,
            "cold_single_query": {
                "queries_per_second": round(cold_qps, 2),
                "instances": instance_count,
            },
            "hot_cache": hot.as_dict(),
            "warm_store": warm.as_dict(),
            "speedup_hot_vs_cold": round(hot_speedup, 2),
            "speedup_warm_vs_cold": round(warm_speedup, 2),
            "daemon": {
                "coalescer": stats["coalescer"],
                "engine": stats["tiers"]["compute"],
                "lru": {
                    "hits": stats["tiers"]["lru"]["hits"],
                    "misses": stats["tiers"]["lru"]["misses"],
                },
            },
        },
    )
    assert hot_speedup >= 10.0, (
        f"hot-cache serving at {hot.qps:.0f} qps is only {hot_speedup:.1f}x the "
        f"cold single-query rate of {cold_qps:.1f} qps (need >= 10x)"
    )
    assert warm_speedup >= 10.0, (
        f"warm-store serving at {warm.qps:.0f} qps is only {warm_speedup:.1f}x the "
        f"cold single-query rate of {cold_qps:.1f} qps (need >= 10x)"
    )


def test_coalescing_under_concurrent_identical_queries(benchmark):
    """Concurrent identical cold queries must collapse onto one compute."""
    with ServerThread(store=None) as server:
        payloads = [{"v": 1, "op": "query", "scenario": SCENARIO, "index": 0}]
        first = run_load(server.address, payloads, clients=8, total=8, label="stampede")
        service = server.service
        computed = service.compute.computed
        deduped = service.coalescer.stats()["deduped"]
        benchmark(
            lambda: run_load(server.address, payloads, clients=2, total=16, label="hot")
        )
    assert first.errors == 0
    # Eight concurrent clients, one key: exactly one evaluation; the rest
    # were deduped in flight or read the LRU right after it landed.
    assert computed == 1
    assert deduped + first.sources.get("lru", 0) == 7
    report(
        "Request coalescing (8 concurrent clients, one cold key)",
        [{"computed": computed, "deduped_in_flight": deduped,
          "lru_after_land": first.sources.get("lru", 0)}],
    )
