"""The online verdict service: throughput, latency percentiles, tier mix.

Measures the serving layer end to end -- sync clients over real sockets
against the asyncio daemon -- on the Figure-2 (``separations``) workload
in three shapes:

* **cold single-query** compute (no daemon, no caches): the baseline the
  acceptance criterion is phrased against;
* **hot-cache**: every answer from the daemon's in-process LRU;
* **warm-store**: a fresh daemon (empty LRU) over a pre-populated verdict
  store, so every answer is a tier-2 store hit promoted on the way out.

Writes ``BENCH_service.json`` (requests/sec, p50/p99 latency, cache hit
rate per workload) and asserts the >= 10x warm-over-cold criterion.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.service.client import ServiceClient
from repro.service.loadgen import run_load, scenario_payloads
from repro.service.server import ServerThread
from repro.sweep.executor import evaluate_timed
from repro.sweep.scenarios import build_instances
from repro.sweep.store import MemoryVerdictStore

from conftest import MIN_REPEATS, report, write_bench_json

#: The Figure-2 membership games (the acceptance criterion's workload).
SCENARIO = "separations"


def _cold_single_query_rate() -> tuple[float, int]:
    """Median cold queries/sec: fresh machines, graphs and engines per pass."""
    passes = []
    count = 0
    for _ in range(MIN_REPEATS):
        instances = build_instances(SCENARIO)
        count = len(instances)
        started = time.perf_counter()
        evaluate_timed(instances)
        passes.append(time.perf_counter() - started)
    passes.sort()
    median = passes[len(passes) // 2]
    return count / median, count


def test_service_throughput_and_latency(benchmark):
    """Hot/warm serving beats cold compute >= 10x on the Figure-2 workload."""
    cold_qps, instance_count = _cold_single_query_rate()

    store = MemoryVerdictStore()
    payloads = scenario_payloads(SCENARIO)
    with ServerThread(store=store) as server:
        run_load(server.address, payloads, clients=1, label="warmup")
        hot = run_load(
            server.address,
            payloads,
            clients=4,
            total=max(400, 8 * len(payloads)),
            label="hot-cache",
        )
        benchmark(
            lambda: run_load(server.address, payloads, clients=1, label="bench-pass")
        )
        stats = server.service.stats()

    # Fresh daemon, same store: the LRU is empty, tier 2 answers everything.
    with ServerThread(store=store) as warm_server:
        warm = run_load(
            warm_server.address,
            payloads,
            clients=4,
            total=max(200, 4 * len(payloads)),
            label="warm-store",
        )
        warm_sources = dict(warm.sources)

    assert hot.errors == 0 and warm.errors == 0
    assert hot.cache_hit_rate == 1.0
    assert warm_sources.get("store", 0) > 0

    hot_speedup = hot.qps / cold_qps
    warm_speedup = warm.qps / cold_qps
    report(
        "Online verdict service vs cold compute (Figure-2 workload)",
        [
            {"cold_qps": round(cold_qps, 1), "instances": instance_count},
            {"hot_qps": round(hot.qps, 1), "speedup": round(hot_speedup, 1)},
            {"warm_store_qps": round(warm.qps, 1), "speedup": round(warm_speedup, 1)},
        ],
    )
    write_bench_json(
        "service",
        {
            "scenario": SCENARIO,
            "cold_single_query": {
                "queries_per_second": round(cold_qps, 2),
                "instances": instance_count,
            },
            "hot_cache": hot.as_dict(),
            "warm_store": warm.as_dict(),
            "speedup_hot_vs_cold": round(hot_speedup, 2),
            "speedup_warm_vs_cold": round(warm_speedup, 2),
            "daemon": {
                "coalescer": stats["coalescer"],
                "engine": stats["tiers"]["compute"],
                "lru": {
                    "hits": stats["tiers"]["lru"]["hits"],
                    "misses": stats["tiers"]["lru"]["misses"],
                },
            },
        },
    )
    assert hot_speedup >= 10.0, (
        f"hot-cache serving at {hot.qps:.0f} qps is only {hot_speedup:.1f}x the "
        f"cold single-query rate of {cold_qps:.1f} qps (need >= 10x)"
    )
    assert warm_speedup >= 10.0, (
        f"warm-store serving at {warm.qps:.0f} qps is only {warm_speedup:.1f}x the "
        f"cold single-query rate of {cold_qps:.1f} qps (need >= 10x)"
    )


def _pool_payloads(count: int = 128) -> list:
    """Distinct compute-bound specs (random-regular, ~5ms of engine each).

    Every seed is a different graph, so a one-pass run is all compute --
    the workload shape where extra worker *processes* can matter, unlike
    the LRU-bound hot path where a single event loop is already enough.
    """
    return [
        {
            "v": 1,
            "op": "query",
            "spec": {
                "arbiter": "3-colorable",
                "family": "random-regular",
                "degree": 3,
                "n": 40,
                "seed": seed,
                "scheme": "sequential",
            },
        }
        for seed in range(count)
    ]


def _run_pool_load(workers: int, payloads: list):
    """One supervised pool of *workers*, one closed-loop pass, pool stats."""
    tmp = tempfile.mkdtemp(prefix="bench-pool-")
    sock = os.path.join(tmp, "pool.sock")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workers", str(workers),
            "--socket", sock,
            "--store", "sqlite://" + os.path.join(tmp, "pool.sqlite"),
            "--log-level", "error",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 90
        while True:
            assert proc.poll() is None, "pool exited during startup"
            assert time.time() < deadline, "pool never became ready"
            if os.path.exists(sock):
                try:
                    with ServiceClient("unix:" + sock, timeout=5.0) as client:
                        if client.ping():
                            break
                except OSError:
                    pass
            time.sleep(0.1)
        load = run_load(
            "unix:" + sock, payloads, clients=8, total=len(payloads),
            label=f"pool-{workers}w", timeout=60.0,
        )
        with ServiceClient("unix:" + sock, timeout=10.0) as client:
            # --workers 1 serves directly (no supervisor): no pool block.
            pool_stats = client.stats().get("pool")
        return load, pool_stats
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def test_multi_worker_pool_aggregate_qps():
    """``--workers 4`` aggregate throughput vs the same deployment at 1.

    The baseline is the plain single daemon (``--workers 1`` serves
    directly, no supervisor); the pool adds a router hop on top, so the
    ratio is the *end-to-end* gain of going multi-worker.  Extra worker
    processes only translate into wall-clock throughput when the machine
    has cores to run them on, so the >= 2x scaling gate arms on >= 4 CPUs
    (CI runners) and the row records the measured ratio everywhere.
    """
    payloads = _pool_payloads()
    single, _ = _run_pool_load(1, payloads)
    pooled, pool_stats = _run_pool_load(4, payloads)

    assert single.errors == 0 and pooled.errors == 0
    assert pool_stats["size"] == 4 and pool_stats["live"] == 4

    scaling = pooled.qps / single.qps if single.qps else 0.0
    cpus = os.cpu_count() or 1
    gate = f"scaling >= 2.0 (cpus={cpus})" if cpus >= 4 else f"skipped: {cpus} cpu(s)"
    report(
        "Supervised pool aggregate throughput (distinct compute-bound specs)",
        [
            {"single_worker_qps": round(single.qps, 1)},
            {"pool_4w_qps": round(pooled.qps, 1), "scaling": round(scaling, 2)},
            {"gate": gate},
        ],
    )
    write_bench_json(
        "service",
        {
            "multi_worker": {
                "workers": 4,
                "workload": "random-regular d3 n40, 128 distinct seeds",
                "aggregate": pooled.as_dict(),
                "single_worker": single.as_dict(),
                "scaling_vs_single_worker": round(scaling, 2),
                "scaling_gate": gate,
            },
        },
    )
    if cpus >= 4:
        assert scaling >= 2.0, (
            f"4-worker pool at {pooled.qps:.0f} qps is only {scaling:.2f}x the "
            f"single-worker figure of {single.qps:.0f} qps on {cpus} CPUs (need >= 2x)"
        )


def test_coalescing_under_concurrent_identical_queries(benchmark):
    """Concurrent identical cold queries must collapse onto one compute."""
    with ServerThread(store=None) as server:
        payloads = [{"v": 1, "op": "query", "scenario": SCENARIO, "index": 0}]
        first = run_load(server.address, payloads, clients=8, total=8, label="stampede")
        service = server.service
        computed = service.compute.computed
        deduped = service.coalescer.stats()["deduped"]
        benchmark(
            lambda: run_load(server.address, payloads, clients=2, total=16, label="hot")
        )
    assert first.errors == 0
    # Eight concurrent clients, one key: exactly one evaluation; the rest
    # were deduped in flight or read the LRU right after it landed.
    assert computed == 1
    assert deduped + first.sources.get("lru", 0) == 7
    report(
        "Request coalescing (8 concurrent clients, one cold key)",
        [{"computed": computed, "deduped_in_flight": deduped,
          "lru_after_land": first.sources.get("lru", 0)}],
    )
