"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one figure or construction of the paper:
it asserts the *qualitative* result (who wins, which instance is accepted,
which class separates) and uses pytest-benchmark to time the representative
computation.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path
from typing import Callable, Tuple

import pytest

#: Minimum repeats for any median reported in a ``BENCH_*.json`` file.
MIN_REPEATS = 3

#: Where the machine-readable ``BENCH_<figure>.json`` files land (the repo
#: root by default, so CI can glob and upload ``BENCH_*.json``).
BENCH_OUTPUT_DIR = Path(
    os.environ.get("BENCH_OUTPUT_DIR", Path(__file__).resolve().parent.parent)
)


def report(title: str, rows) -> None:
    """Print a small reproduction table (visible with ``pytest -s``)."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print("  ", row)


def timed_median_seconds(fn: Callable[[], object], repeats: int = MIN_REPEATS) -> float:
    """The median wall time of ``fn()`` over ``>= MIN_REPEATS`` runs.

    This is the canonical source of the ``*_median_seconds`` fields in the
    ``BENCH_*.json`` files: it does not depend on pytest-benchmark having
    collected stats (earlier versions emitted ``null`` medians whenever the
    plugin ran in a mode without stats), so the emitted medians are always
    real numbers.
    """
    return timed_median_with_result(fn, repeats)[0]


def timed_median_with_result(
    fn: Callable[[], object], repeats: int = MIN_REPEATS
) -> Tuple[float, object]:
    """Like :func:`timed_median_seconds`, also returning the last result."""
    repeats = max(repeats, MIN_REPEATS)
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def benchmark_median_seconds(benchmark) -> float | None:
    """The median time of a pytest-benchmark run, if stats were collected.

    Prefer :func:`timed_median_seconds` for anything written to a
    ``BENCH_*.json`` file; this accessor is kept for display-only uses.
    """
    try:
        return benchmark.stats.stats.median
    except AttributeError:
        return None


def write_bench_json(figure: str, payload: dict) -> Path:
    """Merge *payload* into ``BENCH_<figure>.json`` (per-PR perf trajectory).

    Each benchmark module contributes its own keys, so several tests can
    extend one figure's file; existing keys are overwritten, unknown keys
    preserved.  Every file also records the interpreter version and CPU
    count, so numbers from different machines/PRs compare meaningfully.
    """
    path = BENCH_OUTPUT_DIR / f"BENCH_{figure}.json"
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(payload)
    merged["python_version"] = platform.python_version()
    merged["cpu_count"] = os.cpu_count()
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path
