"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one figure or construction of the paper:
it asserts the *qualitative* result (who wins, which instance is accepted,
which class separates) and uses pytest-benchmark to time the representative
computation.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: Where the machine-readable ``BENCH_<figure>.json`` files land (the repo
#: root by default, so CI can glob and upload ``BENCH_*.json``).
BENCH_OUTPUT_DIR = Path(
    os.environ.get("BENCH_OUTPUT_DIR", Path(__file__).resolve().parent.parent)
)


def report(title: str, rows) -> None:
    """Print a small reproduction table (visible with ``pytest -s``)."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print("  ", row)


def benchmark_median_seconds(benchmark) -> float | None:
    """The median time of a pytest-benchmark run, if stats were collected."""
    try:
        return benchmark.stats.stats.median
    except AttributeError:
        return None


def write_bench_json(figure: str, payload: dict) -> Path:
    """Merge *payload* into ``BENCH_<figure>.json`` (per-PR perf trajectory).

    Each benchmark module contributes its own keys, so several tests can
    extend one figure's file; existing keys are overwritten, unknown keys
    preserved.
    """
    path = BENCH_OUTPUT_DIR / f"BENCH_{figure}.json"
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path
