"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one figure or construction of the paper:
it asserts the *qualitative* result (who wins, which instance is accepted,
which class separates) and uses pytest-benchmark to time the representative
computation.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


def report(title: str, rows) -> None:
    """Print a small reproduction table (visible with ``pytest -s``)."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print("  ", row)
