"""Figures 4 and 12: the reduction from 3-sat-graph to 3-colorable (Theorem 23).

Reproduces the equivalence "the Boolean graph is satisfiable iff the gadget
graph is 3-colorable" on satisfiable and unsatisfiable Boolean graphs, and
times both reduction stages (Tseytin and the coloring gadgets).
"""

from repro.boolsat import boolean_graph_from_formulas
from repro.reductions import SatGraphToThreeSatGraph, ThreeSatGraphToThreeColorable
import repro.properties as props

from conftest import report


def boolean_graphs():
    return [
        ("sat, consistent", boolean_graph_from_formulas({"u": "P1 | ~P2", "v": "P2 & P3"}, [("u", "v")])),
        ("unsat node", boolean_graph_from_formulas({"u": "P1 & ~P1"}, [])),
        ("conflicting edge", boolean_graph_from_formulas({"u": "P1", "v": "~P1"}, [("u", "v")])),
        ("non-adjacent disagreement", boolean_graph_from_formulas({"u": "P1", "v": "~P1", "w": "P2"}, [("u", "w"), ("w", "v")])),
    ]


def test_theorem23_pipeline(benchmark):
    tseytin = SatGraphToThreeSatGraph()
    coloring = ThreeSatGraphToThreeColorable()

    def run():
        rows = []
        for name, graph in boolean_graphs():
            three_cnf = tseytin.apply(graph).output_graph
            gadget = coloring.apply(three_cnf).output_graph
            rows.append(
                {
                    "instance": name,
                    "satisfiable": props.sat_graph(graph),
                    "gadget nodes": gadget.cardinality(),
                    "3-colorable": props.three_colorable(gadget),
                }
            )
        return rows

    rows = benchmark(run)
    for row in rows:
        assert row["satisfiable"] == row["3-colorable"]
    report("Figure 4/12: 3-sat-graph -> 3-colorable", rows)


def test_tseytin_stage_time(benchmark):
    tseytin = SatGraphToThreeSatGraph()
    graph = boolean_graphs()[0][1]
    result = benchmark(tseytin.apply, graph)
    assert props.three_sat_graph_domain(result.output_graph)


def test_coloring_stage_time(benchmark):
    tseytin = SatGraphToThreeSatGraph()
    coloring = ThreeSatGraphToThreeColorable()
    three_cnf = tseytin.apply(boolean_graphs()[2][1]).output_graph
    result = benchmark(coloring.apply, three_cnf)
    assert result.output_graph.cardinality() > three_cnf.cardinality()
