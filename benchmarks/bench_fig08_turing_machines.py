"""Figure 8: distributed Turing machines (the low-level machine model).

Times the execution of genuine transition-table machines through the
synchronous simulator and checks they decide all-selected, matching the
high-level local-algorithm layer.
"""

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.machines import builtin, execute
from repro.machines.turing import accept_machine, label_is_one_machine

from conftest import report


def test_label_machine_on_cycle(benchmark):
    graph = generators.cycle_graph(30, labels=["1"] * 30)
    ids = sequential_identifier_assignment(graph)
    machine = label_is_one_machine()
    result = benchmark(execute, machine, graph, ids)
    assert result.accepts()
    report("Figure 8 (distributed Turing machine)", [
        {"nodes": graph.cardinality(), "rounds": result.rounds_used, "accepts": result.accepts()}
    ])


def test_turing_and_local_algorithm_agree(benchmark):
    machine = label_is_one_machine()
    algorithm = builtin.all_selected_decider()

    def run():
        outcomes = []
        for labels in (["1"] * 6, ["1", "1", "0", "1", "1", "1"]):
            graph = generators.cycle_graph(6, labels=labels)
            ids = sequential_identifier_assignment(graph)
            outcomes.append(
                (execute(machine, graph, ids).accepts(), execute(algorithm, graph, ids).accepts())
            )
        return outcomes

    outcomes = benchmark(run)
    for low_level, high_level in outcomes:
        assert low_level == high_level


def test_accept_machine_throughput(benchmark):
    graph = generators.grid_graph(5, 6)
    ids = sequential_identifier_assignment(graph)
    result = benchmark(execute, accept_machine(), graph, ids)
    assert result.accepts()
