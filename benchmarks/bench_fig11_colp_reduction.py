"""Figure 11: the reduction from not-all-selected to hamiltonian (Proposition 20).

Reproduces the equivalence "some node is unselected iff the two-layer output
graph is Hamiltonian" and times the construction.
"""

from repro.graphs import generators
from repro.reductions import NotAllSelectedToHamiltonian, verify_reduction_equivalence
import repro.properties as props

from conftest import report


def test_reduction_equivalence_sweep(benchmark):
    reduction = NotAllSelectedToHamiltonian()
    graphs = [
        generators.path_graph(2, labels=["1", "1"]),
        generators.path_graph(2, labels=["1", "0"]),
        generators.path_graph(3, labels=["1", "0", "1"]),
        generators.cycle_graph(3, labels=["1", "1", "1"]),
        generators.single_node("0"),
    ]
    failures = benchmark(
        verify_reduction_equivalence,
        reduction,
        props.not_all_selected,
        props.hamiltonian,
        graphs,
    )
    assert failures == []
    rows = []
    for graph in graphs:
        output = reduction.apply(graph).output_graph
        rows.append(
            {
                "input nodes": graph.cardinality(),
                "not-all-selected": props.not_all_selected(graph),
                "output nodes": output.cardinality(),
                "hamiltonian": props.hamiltonian(output),
            }
        )
    report("Figure 11: not-all-selected -> hamiltonian", rows)


def test_construction_time(benchmark):
    reduction = NotAllSelectedToHamiltonian()
    graph = generators.cycle_graph(8, labels=["1", "0"] + ["1"] * 6)
    result = benchmark(reduction.apply, graph)
    # Each degree-2 node contributes two cycles of length 2*2 + 3 = 7.
    assert result.output_graph.cardinality() == 8 * 14
