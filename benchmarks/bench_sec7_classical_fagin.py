"""Theorem 12 (classical Fagin), recovered as the single-node case of Theorem 14.

Times the space-time-diagram encoding and its consistency verification for
polynomial-time machines on growing inputs, asserting that the machine
accepts exactly when its canonical relational witness passes every check.
"""

import pytest

from repro.fagin.space_time import fagin_theorem_check
from repro.machines.classical import all_ones_machine, contains_zero_machine, even_length_machine

from conftest import report


@pytest.mark.parametrize("length", [4, 8, 16])
def test_fagin_witness_all_ones(benchmark, length):
    word = "1" * length
    result = benchmark(fagin_theorem_check, all_ones_machine(), word)
    assert result["agreement"]
    assert result["accepted_by_machine"]
    report(
        f"Theorem 12 on 1^{length}",
        [{k: result[k] for k in ("tuple_degree", "diagram_cells", "witness_is_accepting")}],
    )


@pytest.mark.parametrize("word", ["1011", "11111111", "10" * 8])
def test_fagin_witness_contains_zero(benchmark, word):
    result = benchmark(fagin_theorem_check, contains_zero_machine(), word)
    assert result["agreement"]


def test_fagin_witness_even_length(benchmark):
    result = benchmark(fagin_theorem_check, even_length_machine(), "01" * 10)
    assert result["agreement"]
    assert result["accepted_by_machine"]
