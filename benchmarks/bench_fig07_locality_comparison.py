"""Figure 7: alternation level vs certificate size as locality measures.

Reproduces the two classifications side by side: the alternation class of our
Section 5.2 formulas, and the measured certificate lengths of the
proof-labeling schemes, for the properties shown in Figure 7.
"""

from repro.locality import figure7_rows, figure7_table, all_schemes
from repro.graphs import generators
from repro.sweep import run_scenario

from conftest import report, timed_median_seconds, write_bench_json


def test_figure7_table(benchmark):
    rows = benchmark(figure7_rows)
    by_name = {row.property_name: row for row in rows}
    # Qualitative shape of Figure 7:
    # eulerian is purely local (level 0 / LCP(0)); 3-colorable is almost local
    # (level 1 / O(1)); the spanning-tree properties sit in the middle; the
    # automorphism property needs polynomial certificates.
    assert by_name["eulerian"].paper_lcp_class == "LCP(0)"
    assert by_name["3-colorable"].measured_certificate_lengths is not None
    assert max(by_name["3-colorable"].measured_certificate_lengths.values()) <= 2
    odd_lengths = by_name["odd"].measured_certificate_lengths
    automorphic_lengths = by_name["automorphic"].measured_certificate_lengths
    assert max(automorphic_lengths.values()) > 4 * max(odd_lengths.values()) / 3
    print()
    print(figure7_table())
    write_bench_json(
        "fig07",
        {
            "figure7_rows_median_seconds": timed_median_seconds(figure7_rows),
            "measured_certificate_lengths": {
                row.property_name: row.measured_certificate_lengths
                for row in rows
                if row.measured_certificate_lengths
            },
        },
    )


def test_locality_sweep_scenario(benchmark):
    """The Figure 7 verification games as a registered sweep scenario.

    Every proof-labeling scheme's honest certificates must be accepted on
    every sample graph (completeness), here checked through the sharded
    sweep executor rather than one-off verifier runs.
    """
    result = benchmark(run_scenario, "locality")
    assert result.results, "the locality scenario must produce instances"
    assert all(r.verdict for r in result.results), [
        r.name for r in result.results if not r.verdict
    ]
    write_bench_json(
        "fig07",
        {
            "sweep_locality_median_seconds": timed_median_seconds(
                lambda: run_scenario("locality")
            ),
            "sweep_locality_instances": len(result.results),
        },
    )


def test_proof_labeling_completeness_sweep(benchmark):
    schemes = all_schemes()
    samples = {
        "eulerian": generators.cycle_graph(10),
        "3-colorable": generators.cycle_graph(10),
        "acyclic": generators.random_tree(10, seed=2),
        "odd": generators.path_graph(9),
        "non-2-colorable": generators.cycle_graph(9),
        "automorphic": generators.cycle_graph(8),
    }

    def run():
        return {s.property_name: s.prove_and_verify(samples[s.property_name]) for s in schemes}

    results = benchmark(run)
    assert all(results.values())
    report("Figure 7 proof-labeling completeness", [results])
