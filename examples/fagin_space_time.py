"""Example: Fagin's theorem on single-node graphs, cell by cell.

Theorem 14 generalizes Fagin's theorem to the LOCAL model, and the classical
statement (Theorem 12) is recovered on single-node graphs.  This example makes
the key idea of the proof tangible: the space-time diagram of a
polynomial-time machine is encoded as relations over the input structure,
indexed by tuples of domain elements, and the machine accepts exactly when
the canonical relational witness satisfies the consistency conditions of the
Fagin formula.

Run with ``python examples/fagin_space_time.py``.
"""

from __future__ import annotations

from repro.fagin.space_time import diagram_relations, fagin_theorem_check, verify_witness
from repro.graphs.generators import string_graph
from repro.graphs.structures import structural_representation
from repro.machines.classical import all_ones_machine, contains_zero_machine


def show_diagram(word: str) -> None:
    machine = all_ones_machine()
    run = machine.run(word)
    print(f"Space-time diagram of the all-ones machine on {word!r} "
          f"({run.steps} steps, {run.space} cells):")
    for time, row in enumerate(run.diagram.rows):
        head = run.diagram.heads[time]
        marker = " " * (head + 2) + "^"
        print(f"  t={time}: {row}   state={run.diagram.states[time]}")
        print(f"        {marker}")


def main() -> None:
    show_diagram("110")

    print("\nEncoding runs as relations over the string structure (Theorem 12):")
    for machine, name in [(all_ones_machine(), "all-ones"), (contains_zero_machine(), "contains-zero")]:
        for word in ["111", "101"]:
            result = fagin_theorem_check(machine, word)
            print(
                f"  {name:13s} on {word!r}: accepted={result['accepted_by_machine']}, "
                f"witness accepting={result['witness_is_accepting']}, "
                f"tuple degree k={result['tuple_degree']}, "
                f"cells={result['diagram_cells']}"
            )

    print("\nThe individual consistency conditions (the conjuncts of Fagin's formula):")
    word = "101"
    machine = all_ones_machine()
    structure = structural_representation(string_graph(word))
    witness = diagram_relations(machine.run(word), structure)
    for condition, holds in verify_witness(witness, machine, word).items():
        print(f"  {condition:22s}: {holds}")
    print("(On a rejecting run only the acceptance condition fails -- the diagram is genuine.)")


if __name__ == "__main__":
    main()
