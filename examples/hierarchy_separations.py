"""Reproducing the ground-level separations of the locally polynomial hierarchy.

The script replays the two executable separation arguments of Section 9.1:

* Proposition 24 (LP ⊊ NLP): the odd-cycle / doubled-cycle fooling pair on
  which every constant-round decider must answer identically, although only
  one of the two graphs is 2-colorable -- while the NLP certificate game
  distinguishes them.
* Proposition 26 (coLP ⋚ NLP): the pumping argument that defeats the natural
  bounded-counter verifier for not-all-selected.

Run with:  python examples/hierarchy_separations.py
"""

from repro.hierarchy import two_colorability_spec
from repro.machines.local_algorithm import NeighborhoodGatherAlgorithm
from repro.separations import (
    fooling_pair,
    lp_vs_nlp_separation_report,
    pumping_breaks_verifier,
)
import repro.properties as props


def main() -> None:
    print("== Proposition 24: LP ⊊ NLP ==")
    pair = fooling_pair(identifier_radius=2)
    print(f"odd cycle G  : {pair.odd_cycle.cardinality()} nodes, 2-colorable = "
          f"{props.two_colorable(pair.odd_cycle)}")
    print(f"doubled G'   : {pair.doubled_cycle.cardinality()} nodes, 2-colorable = "
          f"{props.two_colorable(pair.doubled_cycle)}")

    candidate = NeighborhoodGatherAlgorithm(1, lambda view: "1", name="candidate-decider")
    report = lp_vs_nlp_separation_report(candidate, identifier_radius=2)
    print("candidate decider fooled (same answer on both):", report["machine_fooled"])
    print("separation established:", report["separation_established"])

    spec = two_colorability_spec()
    print("NLP game on G  (should reject):", spec.decide(pair.odd_cycle, pair.odd_ids))
    print("NLP game on G' (should accept):", spec.decide(pair.doubled_cycle, pair.doubled_ids))

    print("\n== Proposition 26: not-all-selected ∉ NLP ==")
    report = pumping_breaks_verifier(modulus=4, identifier_period=3)
    print(f"long cycle length           : {report['cycle_length']}")
    print(f"honest certificate accepted : {report['verifier_complete']}")
    print(f"indistinguishable pair found: {report['pair_found']}")
    print(f"pumped cycle length         : {report.get('pumped_length')}")
    print(f"pumped cycle all-selected   : {report.get('pumped_all_selected')}")
    print(f"verifier still accepts it   : {report.get('pumped_still_accepted')}")
    print(f"=> soundness broken         : {report.get('soundness_broken')}")


if __name__ == "__main__":
    main()
