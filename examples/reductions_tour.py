"""A tour of the locally polynomial reductions of Section 8.

The script replays the paper's figures:

* Figure 9  -- all-selected  ->  eulerian        (Proposition 18)
* Figure 3  -- all-selected  ->  hamiltonian     (Proposition 19)
* Figure 11 -- not-all-selected -> hamiltonian   (Proposition 20)
* Figure 4  -- sat-graph -> 3-sat-graph -> 3-colorable (Theorem 23)

For each reduction it prints the input labels, the size of the constructed
graph, and the equivalence between the source and target properties.

Run with:  python examples/reductions_tour.py
"""

from repro.boolsat import boolean_graph_from_formulas
from repro.graphs import generators
from repro.reductions import (
    AllSelectedToEulerian,
    AllSelectedToHamiltonian,
    NotAllSelectedToHamiltonian,
    SatGraphToThreeSatGraph,
    ThreeSatGraphToThreeColorable,
)
import repro.properties as props


def show(title: str, rows) -> None:
    print(f"\n== {title} ==")
    for row in rows:
        print("  ", row)


def main() -> None:
    # ------------------------------------------------------------------
    # Figure 9: all-selected -> eulerian
    # ------------------------------------------------------------------
    figure9 = generators.figure9_graph()          # labels 1, 1, 0
    all_ones = figure9.with_uniform_label("1")
    reduction = AllSelectedToEulerian()
    rows = []
    for graph in (figure9, all_ones):
        output = reduction.apply(graph).output_graph
        rows.append({
            "labels": [graph.label(u) for u in graph.nodes],
            "all-selected": props.all_selected(graph),
            "output nodes": output.cardinality(),
            "output eulerian": props.eulerian(output),
        })
    show("Figure 9: all-selected -> eulerian", rows)

    # ------------------------------------------------------------------
    # Figure 3: all-selected -> hamiltonian
    # ------------------------------------------------------------------
    figure3 = generators.figure3_graph()          # u2 carries label 0
    reduction = AllSelectedToHamiltonian()
    rows = []
    for graph in (figure3, figure3.with_uniform_label("1")):
        output = reduction.apply(graph).output_graph
        rows.append({
            "labels": {u: graph.label(u) for u in graph.nodes},
            "all-selected": props.all_selected(graph),
            "output nodes": output.cardinality(),
            "output hamiltonian": props.hamiltonian(output),
        })
    show("Figure 3/10: all-selected -> hamiltonian", rows)

    # ------------------------------------------------------------------
    # Figure 11: not-all-selected -> hamiltonian
    # ------------------------------------------------------------------
    reduction = NotAllSelectedToHamiltonian()
    rows = []
    for labels in (["1", "1", "0"], ["1", "1", "1"]):
        graph = generators.path_graph(3, labels=labels)
        output = reduction.apply(graph).output_graph
        rows.append({
            "labels": labels,
            "not-all-selected": props.not_all_selected(graph),
            "output nodes": output.cardinality(),
            "output hamiltonian": props.hamiltonian(output),
        })
    show("Figure 11: not-all-selected -> hamiltonian", rows)

    # ------------------------------------------------------------------
    # Figure 4: sat-graph -> 3-sat-graph -> 3-colorable
    # ------------------------------------------------------------------
    to_three_cnf = SatGraphToThreeSatGraph()
    to_coloring = ThreeSatGraphToThreeColorable()
    instances = {
        "satisfiable": boolean_graph_from_formulas(
            {"u": "P1 | ~P2 | ~P3", "v": "P3 | P4 | ~P5"}, [("u", "v")]
        ),
        "conflicting": boolean_graph_from_formulas({"u": "P1", "v": "~P1"}, [("u", "v")]),
    }
    rows = []
    for name, boolean_graph in instances.items():
        three_cnf = to_three_cnf.apply(boolean_graph).output_graph
        gadget = to_coloring.apply(three_cnf).output_graph
        rows.append({
            "instance": name,
            "sat-graph": props.sat_graph(boolean_graph),
            "gadget nodes": gadget.cardinality(),
            "gadget 3-colorable": props.three_colorable(gadget),
        })
    show("Figure 4/12: 3-sat-graph -> 3-colorable", rows)


if __name__ == "__main__":
    main()
