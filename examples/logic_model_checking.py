"""Model checking the Section 5.2 example formulas and compiling them into arbiters.

The script classifies every example formula in the local second-order
hierarchy (the alternation measure of Figure 7), model-checks the smaller
ones against the ground-truth property checkers, and compiles the
3-colorability formula into an NLP arbiter via the generalized Fagin theorem.

Run with:  python examples/logic_model_checking.py
"""

from repro.fagin import compile_sentence
from repro.graphs import generators
from repro.logic import EvaluationOptions, classify_local_second_order, graph_satisfies
from repro.logic.examples import all_example_formulas
import repro.properties as props

OPTIONS = EvaluationOptions(second_order_locality=1, second_order_node_only=True, candidate_limit=40)


def main() -> None:
    print("== Classification of the Section 5.2 formulas ==")
    for name, formula in all_example_formulas().items():
        print(f"  {name:<18} -> {classify_local_second_order(formula)}")

    print("\n== Model checking against the ground truth (small graphs) ==")
    formulas = all_example_formulas()
    checks = [
        ("all-selected", generators.path_graph(3, labels=["1", "1", "1"]), props.all_selected),
        ("all-selected", generators.path_graph(3, labels=["1", "0", "1"]), props.all_selected),
        ("3-colorable", generators.cycle_graph(5), props.three_colorable),
        ("3-colorable", generators.complete_graph(4), props.three_colorable),
        ("not-all-selected", generators.path_graph(3, labels=["1", "0", "1"]), props.not_all_selected),
        ("not-all-selected", generators.path_graph(3, labels=["1", "1", "1"]), props.not_all_selected),
        ("hamiltonian", generators.cycle_graph(3), props.hamiltonian),
        ("hamiltonian", generators.path_graph(3), props.hamiltonian),
    ]
    for name, graph, truth in checks:
        value = graph_satisfies(graph, formulas[name], options=OPTIONS)
        status = "ok" if value == truth(graph) else "MISMATCH"
        print(f"  {name:<18} on {graph.cardinality()}-node graph: formula={value!s:<5} truth={truth(graph)!s:<5} [{status}]")

    print("\n== Compiling the 3-colorability formula into an NLP arbiter (Theorem 14) ==")
    spec = compile_sentence(formulas["3-colorable"]).spec("3-colorable")
    for graph, label in ((generators.cycle_graph(3), "C3"), (generators.complete_graph(4), "K4")):
        print(f"  compiled game on {label}: {spec.decide(graph)}   (truth: {props.three_colorable(graph)})")


if __name__ == "__main__":
    main()
