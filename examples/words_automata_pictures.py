"""Example: words, finite automata, tiling systems, and why ``prime`` is not local.

This walkthrough follows Section 9 of the paper from the bottom up:

1. words are one-row pictures, and finite automata are tiling systems on them
   (the word-level shadow of Theorem 32);
2. tiling systems translate into existential local monadic second-order
   sentences (Corollary 33);
3. the pumping lemma turns into an executable refutation: no finite automaton
   -- and, via cycle pumping, no constant-radius verifier -- captures a
   cardinality property such as "the number of nodes is prime" (Section 9.3).

Run with ``python examples/words_automata_pictures.py``.
"""

from __future__ import annotations

from repro.machines.builtin import predicate_decider
from repro.pictures.automata import divisibility_dfa, parity_dfa
from repro.pictures.mso import formula_agrees_with_system
from repro.pictures.word_tilings import (
    nfa_to_tiling_system,
    tiling_system_accepts_word,
    tiling_system_to_nfa,
)
from repro.pictures.words import word_to_picture
from repro.separations.outside_hierarchy import (
    dfa_pumping_contradiction,
    is_prime,
    prime_cardinality_fooling,
)


def main() -> None:
    # 1. An automaton as a tiling system on one-row pictures.
    parity = parity_dfa()
    system = nfa_to_tiling_system(parity.to_nfa())
    print("Parity automaton as a tiling system:")
    for word in ["1", "11", "101", "1001"]:
        print(f"  word {word!r}: DFA={parity.accepts(word)}  tiling={tiling_system_accepts_word(system, word)}")

    recovered = tiling_system_to_nfa(system)
    print("Round trip through tiling systems preserves the language:",
          all(recovered.accepts(w) == parity.accepts(w) for w in ["1", "10", "111", "1010"]))

    # 2. Corollary 33: the tiling system as an existential monadic sentence.
    small_words = [word_to_picture(w) for w in ["1", "0", "11", "10"]]
    agree, _ = formula_agrees_with_system(system, small_words)
    print("Corollary 33 sentence agrees with the recognizer on small pictures:", agree)

    # 3. Section 9.3: primality escapes both automata and local verification.
    witness = dfa_pumping_contradiction(divisibility_dfa(3), is_prime)
    print("\nPumping-lemma refutation of a mod-3 counter for prime lengths:")
    print(" ", witness)

    verifier = predicate_decider(
        1, lambda view: all(view.label_of(v) == "1" for v in view.nodes), name="local-window"
    )
    report = prime_cardinality_fooling(verifier, prime_length=29)
    print("\nCycle pumping against a radius-1 verifier:")
    print(f"  original cycle: {report.cycle_length} nodes (prime), accepted = {report.verifier_accepts_originally}")
    print(f"  pumped cycle:   {report.pumped_length} nodes (composite), accepted = {report.verifier_accepts_pumped}")
    print(f"  verifier fooled: {report.fooled}")


if __name__ == "__main__":
    main()
