"""Runnable example scripts exercising the public API (see README.md)."""
