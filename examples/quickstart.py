"""Quickstart: deciding and verifying graph properties in the LOCAL model.

This example walks through the paper's basic pipeline on a single property,
3-colorability:

1. check the property centrally (the ground truth),
2. express it as the Sigma^lfo_1 formula of Example 5 and model-check it,
3. verify it distributively: Eve proposes a coloring as certificates, the
   nodes check it in one communication round (the NLP game of Section 4),
4. watch the same game fail on a non-3-colorable graph.

Run with:  python examples/quickstart.py
"""

from repro.graphs import generators
from repro.graphs.identifiers import small_identifier_assignment
from repro.hierarchy import three_colorability_spec
from repro.hierarchy.game import sigma_prefix, winning_first_move
from repro.logic import EvaluationOptions, graph_satisfies
from repro.logic.examples import three_colorable_formula
import repro.properties as props


def main() -> None:
    five_cycle = generators.cycle_graph(5)
    k4 = generators.complete_graph(4)

    print("== 1. Ground truth (centralized checkers) ==")
    print(f"C5 is 3-colorable: {props.three_colorable(five_cycle)}")
    print(f"K4 is 3-colorable: {props.three_colorable(k4)}")

    print("\n== 2. The Example 5 formula, model-checked on the structural representation ==")
    options = EvaluationOptions(second_order_node_only=True)
    formula = three_colorable_formula()
    print(f"C5 satisfies the Sigma^lfo_1 formula: {graph_satisfies(five_cycle, formula, options=options)}")
    print(f"K4 satisfies the Sigma^lfo_1 formula: {graph_satisfies(k4, formula, options=options)}")

    print("\n== 3. The NLP certificate game (Eve proposes colors, nodes verify) ==")
    spec = three_colorability_spec()
    print(f"Eve wins on C5: {spec.decide(five_cycle)}   (memoized game engine)")
    print(f"...and the exhaustive oracle agrees: {spec.decide_naive(five_cycle)}")
    ids = small_identifier_assignment(five_cycle, 1)
    witness = winning_first_move(
        spec.machine, five_cycle, ids, list(spec.spaces), sigma_prefix(1)
    )
    print(f"A winning certificate assignment (node -> color bits): {witness}")

    print("\n== 4. The same game on K4 ==")
    print(f"Eve wins on K4: {spec.decide(k4)}   (no certificate convinces all four nodes)")


if __name__ == "__main__":
    main()
