"""Reproducing the Figure 7 comparison: alternation vs certificate size.

The script prints the Figure 7 table (paper classification plus our measured
data) and then demonstrates two of the proof-labeling schemes end to end:
the prover builds the certificates, the distributed verifier accepts them on
the yes-instance and rejects tampered certificates.

Run with:  python examples/locality_figure7.py
"""

from repro.graphs import generators
from repro.locality import figure7_table, non_two_colorability_scheme, odd_scheme


def main() -> None:
    print("== Figure 7: two locality measures side by side ==")
    print(figure7_table())

    print("\n== Proof-labeling scheme for `odd` (spanning tree + subtree parities) ==")
    scheme = odd_scheme()
    yes = generators.path_graph(9)
    print(f"9-node path, prover + verifier: {scheme.prove_and_verify(yes)}")
    print(f"max certificate length: {scheme.max_certificate_length(yes)} bits")
    even = generators.path_graph(8)
    print(f"8-node path, prover has no certificate: {scheme.prover(even, {u: str(i) for i, u in enumerate(even.nodes)}) is None}")

    print("\n== Proof-labeling scheme for `non-2-colorable` (odd cycle witness) ==")
    scheme = non_two_colorability_scheme()
    odd_cycle = generators.cycle_graph(7)
    even_cycle = generators.cycle_graph(6)
    print(f"C7: prover + verifier accept: {scheme.prove_and_verify(odd_cycle)}")
    print(f"C6: prover cannot produce certificates: "
          f"{scheme.prover(even_cycle, {u: str(i) for i, u in enumerate(even_cycle.nodes)}) is None}")


if __name__ == "__main__":
    main()
