"""Continuous sampling profiler: where is the daemon's CPU going *now*?

A :class:`SamplingProfiler` runs a background daemon thread that wakes
``hz`` times a second, snapshots every thread's current Python stack via
``sys._current_frames()``, and aggregates the stacks into folded-stack
counts -- the ``a;b;c 42`` format flamegraph tooling eats directly.  It
also keeps per-frame tallies:

* **self samples** -- how often a frame was on *top* of a sampled stack
  (the code actually executing), and
* **cumulative samples** -- how often it appeared *anywhere* on a stack
  (itself or a callee executing).

Dividing by the sampling rate turns counts into estimated seconds, which
is how :meth:`top` rows line up with the cProfile-based ``repro
profile`` report (``tottime`` ~ self seconds, ``cumtime`` ~ cumulative
seconds).

Unlike cProfile this is always-on-capable: the cost is one stack walk
per thread per tick, independent of call volume, so the daemon can run
it in production (``repro serve --profile-hz 97``) or an operator can
toggle it on a live process through the admin op and read the result at
the console's ``/profile`` page.  Use a prime-ish hz (97, 199) so the
sampling clock does not phase-lock with periodic work.

The aggregate is bounded: at most ``max_stacks`` distinct folded stacks
are retained; samples whose stack is novel past that point are counted
in ``stacks_dropped`` (the per-frame tallies still include them, so
``top`` stays accurate even when the folded text is clipped).
"""

from __future__ import annotations

import os.path
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}:{code.co_firstlineno}"


class SamplingProfiler:
    """Aggregating wall-clock stack sampler for every Python thread."""

    def __init__(self, hz: float = 97.0, max_stacks: int = 20000) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        if max_stacks < 1:
            raise ValueError("max_stacks must be positive")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at: Optional[float] = None
        self._reset_locked()

    def _reset_locked(self) -> None:
        self._stacks: Dict[str, int] = {}
        self._self_counts: Dict[str, int] = {}
        self._cum_counts: Dict[str, int] = {}
        self._frames: Dict[str, Tuple[str, int, str]] = {}
        self._samples = 0
        self._stacks_dropped = 0
        self._threads_seen: set = set()
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, hz: Optional[float] = None) -> bool:
        """Begin sampling (resets any previous aggregate).

        Returns ``False`` if the profiler was already running -- the
        running session is left undisturbed, matching what an operator
        issuing a redundant ``profile-start`` would want.
        """
        with self._lock:
            if self.running:
                return False
            if hz is not None:
                if hz <= 0:
                    raise ValueError("hz must be positive")
                self.hz = float(hz)
            self._reset_locked()
            self._stop.clear()
            self._started_at = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
            return True

    def stop(self) -> bool:
        """Stop sampling; the aggregate stays readable. False if idle."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return False
            self._stop.set()
        thread.join(timeout=2.0)
        with self._lock:
            if self._started_at is not None:
                self._elapsed += time.perf_counter() - self._started_at
                self._started_at = None
            self._thread = None
        return True

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample(exclude={own_ident})

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_once(self) -> int:
        """Take one sample of all *other* threads, synchronously.

        Deterministic entry point for tests; returns the number of
        thread stacks folded into the aggregate by this call.
        """
        return self._sample(exclude={threading.get_ident()})

    def _sample(self, exclude: set) -> int:
        frames = sys._current_frames()
        folded_stacks: List[Tuple[str, List[str]]] = []
        for ident, frame in frames.items():
            if ident in exclude:
                continue
            labels: List[str] = []
            depth = 0
            while frame is not None and depth < 128:
                labels.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not labels:
                continue
            labels.reverse()  # root first
            folded_stacks.append((";".join(labels), labels))
            self._threads_seen.add(ident)
        with self._lock:
            for folded, labels in folded_stacks:
                self._samples += 1
                if folded in self._stacks:
                    self._stacks[folded] += 1
                elif len(self._stacks) < self.max_stacks:
                    self._stacks[folded] = 1
                else:
                    self._stacks_dropped += 1
                # Leaf frame is the executing one.
                leaf = labels[-1]
                self._self_counts[leaf] = self._self_counts.get(leaf, 0) + 1
                for label in set(labels):
                    self._cum_counts[label] = self._cum_counts.get(label, 0) + 1
        return len(folded_stacks)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def _duration_locked(self) -> float:
        duration = self._elapsed
        if self._started_at is not None:
            duration += time.perf_counter() - self._started_at
        return duration

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "running": self.running,
                "hz": self.hz,
                "samples": self._samples,
                "threads": len(self._threads_seen),
                "stacks": len(self._stacks),
                "stacks_dropped": self._stacks_dropped,
                "duration_seconds": round(self._duration_locked(), 3),
            }

    def folded(self) -> str:
        """The aggregate as folded-stack text (one ``stack count`` per line)."""
        with self._lock:
            items = sorted(self._stacks.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def top(self, n: int = 20, sort: str = "cumulative") -> List[Dict[str, Any]]:
        """The hottest frames, as rows shaped like ``repro profile --json``.

        ``sort`` is ``"cumulative"`` (default, matches cProfile's
        ``cumtime`` ordering) or ``"self"`` (~ ``tottime``).
        """
        if sort not in ("cumulative", "self"):
            raise ValueError("sort must be 'cumulative' or 'self'")
        with self._lock:
            labels = set(self._cum_counts)
            rows = []
            for label in labels:
                file, func, line = label.rsplit(":", 2) if label.count(":") >= 2 else (label, "?", "0")
                self_samples = self._self_counts.get(label, 0)
                cum_samples = self._cum_counts.get(label, 0)
                rows.append(
                    {
                        "file": file,
                        "line": int(line) if line.isdigit() else 0,
                        "function": func,
                        "self_samples": self_samples,
                        "cum_samples": cum_samples,
                        "self_seconds": round(self_samples / self.hz, 4),
                        "cum_seconds": round(cum_samples / self.hz, 4),
                    }
                )
        key = "cum_samples" if sort == "cumulative" else "self_samples"
        rows.sort(key=lambda row: (-row[key], row["file"], row["function"]))
        return rows[:n]

    def snapshot(self, top: int = 20) -> Dict[str, Any]:
        """Everything a remote reader needs: status + folded text + top-N."""
        body = self.status()
        body["folded"] = self.folded()
        body["top_self"] = self.top(top, sort="self")
        body["top_cumulative"] = self.top(top, sort="cumulative")
        return body
