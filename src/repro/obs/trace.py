"""Per-request trace spans: follow one query through the serving tiers.

A :class:`RequestTrace` is a flat list of named, timed spans recorded
while one request moves through the daemon -- admission, resolve, the LRU
and store lookups, the coalescer wait, the engine solve.  The active
trace is carried in a :data:`contextvars.ContextVar`, so instrumented
code deep in the stack (the sweep executor's per-instance engine loop,
the dynamic session's repair path) can attach spans with the module-level
:func:`span` context manager without threading a trace argument through
every call -- and stays a cheap no-op when no trace is active.

Context variables are per-thread as well as per-task: code that hops to a
worker thread (``run_in_executor``) must either re-activate the trace
there (:func:`activate`) or use the trace object's own
:meth:`RequestTrace.span`.  The daemon does the latter for worker-thread
sections, so a span's duration is the tier latency *as seen by the
request* -- including any executor queueing, which is exactly what an
operator debugging tail latency wants to see.

Completed traces land in a bounded :class:`TraceLog` ring buffer,
browsable at the HTTP console's ``/traces`` page and summarized in the
``stats`` response.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

_current: "contextvars.ContextVar[Optional[RequestTrace]]" = contextvars.ContextVar(
    "repro_obs_trace", default=None
)

_trace_ids = itertools.count(1)


class SpanRecord:
    """One timed section of a trace (name, seconds, free-form metadata).

    ``offset`` is the span's start, in seconds from the trace's start --
    what lets the Chrome trace export (:mod:`repro.obs.export`) place the
    span on a timeline instead of just summing durations.
    """

    __slots__ = ("name", "seconds", "meta", "offset")

    def __init__(
        self,
        name: str,
        seconds: float,
        meta: Optional[Dict[str, Any]] = None,
        offset: Optional[float] = None,
    ) -> None:
        self.name = name
        self.seconds = seconds
        self.meta = meta or {}
        self.offset = offset

    def as_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"span": self.name, "ms": round(self.seconds * 1000.0, 4)}
        if self.offset is not None:
            body["offset_ms"] = round(self.offset * 1000.0, 4)
        if self.meta:
            body.update(self.meta)
        return body

    def __repr__(self) -> str:
        return f"SpanRecord({self.name!r}, {self.seconds * 1000.0:.3f}ms)"


class RequestTrace:
    """The spans of one request, in recording order.

    Span recording appends under a lock (spans may arrive from a worker
    thread while the event loop records its own), but a trace belongs to
    one request: it is not meant to be shared across *concurrent*
    requests.
    """

    def __init__(self, op: str, request_id: Any = None, name: str = "") -> None:
        self.trace_id = next(_trace_ids)
        self.op = op
        self.request_id = request_id
        self.name = name
        self.started_wall = time.time()
        self._started = time.perf_counter()
        self.total_seconds: Optional[float] = None
        self.annotations: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.spans: List[SpanRecord] = []

    # ------------------------------------------------------------------
    def add_span(
        self, name: str, seconds: float, offset: Optional[float] = None, **meta: Any
    ) -> None:
        if offset is None:
            # The span just ended: its start is "now minus its duration",
            # relative to the trace's own start.
            offset = max(0.0, time.perf_counter() - self._started - seconds)
        with self._lock:
            self.spans.append(SpanRecord(name, seconds, meta or None, offset=offset))

    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator["RequestTrace"]:
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_span(
                name,
                time.perf_counter() - start,
                offset=max(0.0, start - self._started),
                **meta,
            )

    def annotate(self, **fields: Any) -> None:
        """Attach request-level metadata (tier served from, verdict, key)."""
        with self._lock:
            self.annotations.update(fields)

    def finish(self) -> "RequestTrace":
        if self.total_seconds is None:
            self.total_seconds = time.perf_counter() - self._started
        return self

    # ------------------------------------------------------------------
    def breakdown(self) -> List[Dict[str, Any]]:
        """The tier-by-tier timing breakdown (what a query response carries)."""
        with self._lock:
            return [record.as_dict() for record in self.spans]

    def as_dict(self) -> Dict[str, Any]:
        total = self.total_seconds
        if total is None:
            total = time.perf_counter() - self._started
        with self._lock:
            spans = [record.as_dict() for record in self.spans]
            annotations = dict(self.annotations)
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "id": self.request_id,
            "name": self.name,
            "started": self.started_wall,
            "total_ms": round(total * 1000.0, 4),
            "spans": spans,
            **annotations,
        }


# ----------------------------------------------------------------------
# The ambient trace
# ----------------------------------------------------------------------
def current_trace() -> Optional[RequestTrace]:
    """The trace active in this thread/task, if any."""
    return _current.get()


def activate(trace: Optional[RequestTrace]) -> "contextvars.Token":
    """Make *trace* the ambient trace; returns the token for :func:`deactivate`."""
    return _current.set(trace)


def deactivate(token: "contextvars.Token") -> None:
    _current.reset(token)


@contextmanager
def active(trace: Optional[RequestTrace]) -> Iterator[Optional[RequestTrace]]:
    """``with active(trace):`` -- scope the ambient trace to a block."""
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **meta: Any) -> Iterator[Optional[RequestTrace]]:
    """Record a span on the ambient trace; a no-op when none is active."""
    trace = _current.get()
    if trace is None:
        yield None
        return
    start = time.perf_counter()
    try:
        yield trace
    finally:
        trace.add_span(
            name,
            time.perf_counter() - start,
            offset=max(0.0, start - trace._started),
            **meta,
        )


# ----------------------------------------------------------------------
# Retention
# ----------------------------------------------------------------------
class TraceLog:
    """A bounded ring of completed traces (thread-safe, newest first out)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=capacity)
        self._total = 0

    def record(self, trace: RequestTrace) -> None:
        entry = trace.finish().as_dict()
        with self._lock:
            self._traces.append(entry)
            self._total += 1

    @property
    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return len(self._traces)

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained traces, newest first."""
        with self._lock:
            traces = list(self._traces)
        traces.reverse()
        return traces[:limit] if limit is not None else traces

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._traces),
                "recorded": self._total,
            }
