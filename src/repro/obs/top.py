"""``python -m repro top``: a live terminal dashboard over one daemon.

Polls the HTTP console's ``/stats`` page (:mod:`repro.obs.http`) on an
interval and redraws an ANSI full-screen summary: request rates, the
tier-by-tier hit breakdown, coalescer batching effectiveness, latency
percentiles, dynamic sessions.  Rates are computed from consecutive
snapshots using the server's own ``since_monotonic`` clock -- the
interval between two polls as the *server* measured it -- so a slow
client or a paused terminal never distorts qps.

Everything is stdlib: ``urllib.request`` to fetch, ANSI escapes to
redraw.  ``--once`` prints a single snapshot without screen control
(usable in scripts and CI logs); ``--count N`` exits after N refreshes.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.obs.history import sparkline
from repro.obs.http import DEFAULT_HTTP_PORT

#: Clear screen + home: the whole frame is rewritten every refresh.
_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def fetch_stats(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """One ``/stats`` snapshot from the console at *url*."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def restarted(now: Dict[str, Any], prev: Optional[Dict[str, Any]]) -> bool:
    """Did the daemon restart between these two snapshots?

    ``since_monotonic`` is ``time.perf_counter()`` -- machine-wide
    monotonic on Linux, so it usually *survives* a daemon restart; the
    reliable restart tell is ``uptime_seconds`` going backwards.  Both
    are checked: either signal means every counter reset to zero, and
    rates computed across the boundary would come out negative (clamped
    to a misleading 0.0 before this check existed).
    """
    if prev is None:
        return False
    if float(now.get("since_monotonic", 0.0)) < float(prev.get("since_monotonic", 0.0)):
        return True
    return float(now.get("uptime_seconds", 0.0)) < float(prev.get("uptime_seconds", 0.0))


def _rate(now: Dict[str, Any], prev: Optional[Dict[str, Any]], *path: str) -> float:
    """Per-second rate of a counter between two snapshots (0.0 on the first)."""
    if prev is None or restarted(now, prev):
        return 0.0
    dt = float(now.get("since_monotonic", 0.0)) - float(prev.get("since_monotonic", 0.0))
    if dt <= 0.0:
        return 0.0

    def dig(stats: Dict[str, Any]) -> float:
        value: Any = stats
        for part in path:
            if not isinstance(value, dict):
                return 0.0
            value = value.get(part, 0)
        return float(value or 0)

    return max(0.0, (dig(now) - dig(prev)) / dt)


def _ratio(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:5.1f}%" if total else "    -"


def _ms(seconds: Any) -> str:
    return f"{float(seconds) * 1000.0:8.2f}ms" if seconds is not None else "       -"


def qps_series(samples: List[Dict[str, Any]]) -> List[float]:
    """Query rates between consecutive history samples (oldest first).

    Pairs that straddle a daemon restart (non-positive server-clock
    delta or a counter going backwards) are skipped, not emitted as
    zeros -- a restart is a gap in the series, not a stall.
    """
    rates: List[float] = []
    for older, newer in zip(samples, samples[1:]):
        dt = float(newer.get("since_monotonic", 0.0)) - float(
            older.get("since_monotonic", 0.0)
        )
        delta = float(newer.get("queries", 0)) - float(older.get("queries", 0))
        if dt <= 0.0 or delta < 0:
            continue
        rates.append(delta / dt)
    return rates


def _history_lines(history: Optional[Dict[str, Any]]) -> List[str]:
    """Sparkline rows from a ``/stats/history`` payload (empty if absent)."""
    if not history:
        return []
    samples = history.get("samples") or []
    if len(samples) < 2:
        return []
    lines: List[str] = []
    rates = qps_series(samples)
    if rates:
        lines.append(
            f"{_DIM}history   qps  {sparkline(rates, width=48)}  "
            f"now {rates[-1]:7.1f}/s{_RESET}"
        )
    p99s = [
        float(sample["query_p99_ms"])
        for sample in samples
        if sample.get("query_p99_ms") is not None
    ]
    if p99s:
        lines.append(
            f"{_DIM}          p99  {sparkline(p99s, width=48)}  "
            f"now {p99s[-1]:6.2f}ms{_RESET}"
        )
    return lines


def render(
    stats: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    history: Optional[Dict[str, Any]] = None,
) -> str:
    """The dashboard frame for one snapshot (pure; no I/O, no ANSI clear)."""
    lines: List[str] = []
    was_restarted = restarted(stats, prev)
    if was_restarted:
        prev = None  # counters reset: this poll is a fresh baseline
    requests = stats.get("requests", {})
    tiers = stats.get("tiers", {})
    lru = tiers.get("lru", {})
    store = tiers.get("store", {})
    compute = tiers.get("compute", {})
    coalescer = stats.get("coalescer", {})
    latency = stats.get("latency", {})
    dynamic = stats.get("dynamic", {})

    qps = _rate(stats, prev, "requests", "query")
    mps = _rate(stats, prev, "requests", "mutate")
    lines.append(
        f"{_BOLD}repro verdict daemon{_RESET}  "
        f"up {stats.get('uptime_seconds', 0.0):10.1f}s  "
        f"pending {stats.get('pending', 0)}/{stats.get('max_pending', '?')} "
        f"(peak {stats.get('peak_pending', 0)})"
    )
    lines.append(
        f"requests  query {requests.get('query', 0):>8} ({qps:7.1f}/s)   "
        f"mutate {requests.get('mutate', 0):>6} ({mps:6.1f}/s)   "
        f"stats {requests.get('stats', 0):>5}   ping {requests.get('ping', 0):>5}"
    )
    lines.append(
        f"errors    {stats.get('errors', 0):>6}   overloaded {stats.get('overloaded', 0):>6}"
    )
    resilience = stats.get("resilience", {})
    breaker = resilience.get("breaker", {})
    if resilience:
        state = breaker.get("state", "?")
        draining = "  DRAINING" if resilience.get("draining") else ""
        lines.append(
            f"breaker   {state:>6}   opened {breaker.get('opened', 0):>3}   "
            f"degraded {resilience.get('degraded', 0):>6}   "
            f"put-fail {store.get('async_put_failures', 0):>5}   "
            f"deadline-exceeded {resilience.get('deadline_exceeded', 0):>4}"
            f"{draining}"
        )
        by_error = store.get("put_failures_by_error") or {}
        if by_error:
            breakdown = "  ".join(
                f"{code}={count}" for code, count in sorted(by_error.items())
            )
            lines.append(f"{_DIM}          put failures: {breakdown}{_RESET}")
        active_faults = (resilience.get("faults") or {}).get("active") or {}
        if active_faults:
            armed = "  ".join(
                f"{name}(rate={rule.get('rate', 1.0):g})"
                for name, rule in sorted(active_faults.items())
            )
            lines.append(f"{_DIM}          faults armed: {armed}{_RESET}")
        if resilience.get("sessions_recovered"):
            lines.append(
                f"{_DIM}          {resilience['sessions_recovered']} session(s) "
                f"recovered from journal{_RESET}"
            )
    lines.append("")
    lines.append(f"{_BOLD}tiers{_RESET}        hits    misses   hit-rate     rate/s")
    lru_hits, lru_misses = int(lru.get("hits", 0)), int(lru.get("misses", 0))
    store_hits, store_misses = int(store.get("hits", 0)), int(store.get("misses", 0))
    lines.append(
        f"  lru     {lru_hits:>8} {lru_misses:>9}   {_ratio(lru_hits, lru_misses)}"
        f"   {_rate(stats, prev, 'tiers', 'lru', 'hits'):8.1f}"
        f"   ({lru.get('size', 0)}/{lru.get('maxsize', '?')} entries)"
    )
    lines.append(
        f"  store   {store_hits:>8} {store_misses:>9}   {_ratio(store_hits, store_misses)}"
        f"   {_rate(stats, prev, 'tiers', 'store', 'hits'):8.1f}"
        f"   ({store.get('size', '-')} stored, {store.get('promotions', 0)} promoted)"
    )
    lines.append(
        f"  compute {int(compute.get('computed', 0)):>8} {'':>9}   {'':>6}"
        f"   {_rate(stats, prev, 'tiers', 'compute', 'computed'):8.1f}"
        f"   ({compute.get('batches', 0)} batches, "
        f"{float(compute.get('seconds', 0.0)):.3f}s engine)"
    )
    lines.append("")
    submitted = int(coalescer.get("submitted", 0))
    batches = int(coalescer.get("batches", 0))
    mean_batch = (int(coalescer.get("batched", 0)) / batches) if batches else 0.0
    lines.append(
        f"{_BOLD}coalescer{_RESET}  submitted {submitted:>7}   "
        f"deduped {coalescer.get('deduped', 0):>6}   "
        f"batches {batches:>5} (mean {mean_batch:4.1f}, "
        f"largest {coalescer.get('largest_batch', 0)})   "
        f"inflight {coalescer.get('inflight', 0)}"
    )
    lines.append("")
    lines.append(f"{_BOLD}latency{_RESET}        count        p50        p95        p99        max")
    for op in ("query", "mutate"):
        snap = latency.get(op, {})
        lines.append(
            f"  {op:<8} {snap.get('count', 0):>9} "
            f" {_ms(snap.get('p50'))} {_ms(snap.get('p95'))}"
            f" {_ms(snap.get('p99'))} {_ms(snap.get('max'))}"
        )
    pool = stats.get("pool")
    if pool:
        lines.append("")
        drain = "  DRAINING" if pool.get("draining") else ""
        lines.append(
            f"{_BOLD}pool{_RESET}      {pool.get('live', 0)}/{pool.get('size', 0)} "
            f"workers serving   restarts {pool.get('restarts', 0):>3}   "
            f"failovers {pool.get('forward_retries', 0):>4}   "
            f"unavailable {pool.get('unavailable', 0):>4}{drain}"
        )
        forwarded = pool.get("forwarded", {}) or {}
        for worker in pool.get("workers", []):
            wid = worker.get("id")
            catch_up = worker.get("catch_up") or {}
            replay = (
                f"  replayed {catch_up.get('replayed', 0)} "
                f"(seq {catch_up.get('from_seq', 0)}->{catch_up.get('to_seq', 0)})"
                if catch_up
                else ""
            )
            lines.append(
                f"  w{wid:<3} {worker.get('state', '?'):<10} "
                f"pid {worker.get('pid') or '-':>7}   "
                f"restarts {worker.get('restarts', 0):>3}   "
                f"seq {worker.get('last_seq', 0):>6}   "
                f"fwd {int(forwarded.get(str(wid), 0)):>7}{replay}"
            )
    sessions = dynamic.get("sessions", 0)
    if sessions:
        lines.append("")
        lines.append(
            f"{_BOLD}dynamic{_RESET}  {sessions} session(s) open "
            f"({dynamic.get('opened', 0)} opened total)"
        )
        for name, info in sorted(dynamic.get("by_session", {}).items()):
            lines.append(
                f"  {name:<16} {info.get('queries', 0):>6} queries  "
                f"{info.get('mutate_batches', 0):>5} mutate batches  "
                f"{info.get('deltas_applied', 0):>6} deltas"
            )
    history_rows = _history_lines(history)
    if history_rows:
        lines.append("")
        lines.extend(history_rows)
    traces = stats.get("traces", {})
    lines.append("")
    profiler = stats.get("profiler") or {}
    trace_line = (
        f"{_DIM}traces retained {traces.get('retained', 0)}/{traces.get('capacity', 0)} "
        f"({traces.get('recorded', 0)} recorded)"
    )
    if profiler.get("running"):
        trace_line += (
            f"   profiler {profiler.get('hz', 0):g}hz "
            f"{profiler.get('samples', 0)} samples"
        )
    lines.append(trace_line + _RESET)
    if was_restarted:
        lines.append(f"{_DIM}(daemon restarted -- rates reset){_RESET}")
    return "\n".join(lines)


def run_top(
    connect: Optional[str] = None,
    interval: float = 1.0,
    once: bool = False,
    count: Optional[int] = None,
    out=None,
) -> int:
    """The ``repro top`` loop: poll, render, redraw until interrupted."""
    out = out if out is not None else sys.stdout
    address = connect or f"127.0.0.1:{DEFAULT_HTTP_PORT}"
    if "://" not in address:
        address = f"http://{address}"
    base = address.rstrip("/")
    url = base + "/stats"
    history_url = base + "/stats/history?limit=120"
    prev: Optional[Dict[str, Any]] = None
    refreshes = 0
    try:
        while True:
            try:
                stats = fetch_stats(url)
            except (urllib.error.URLError, OSError, ValueError) as error:
                print(f"cannot fetch {url}: {error}", file=sys.stderr)
                return 1
            try:
                history = fetch_stats(history_url)
            except (urllib.error.URLError, OSError, ValueError):
                history = None  # older daemon without the endpoint
            frame = render(stats, prev, history=history)
            if once or count is not None:
                print(frame, file=out)
            else:
                print(_CLEAR + frame, file=out, flush=True)
            # A restart frame rendered with a fresh baseline; either way
            # this snapshot is the baseline for the next poll.
            prev = stats
            refreshes += 1
            if once or (count is not None and refreshes >= count):
                return 0
            time.sleep(max(0.05, interval))
    except KeyboardInterrupt:
        print("", file=out)
        return 0
