"""The telemetry core: counters, gauges, histograms, event logs, one registry.

Every layer of the serving stack used to keep its own hand-rolled counter
dicts (``request_counts`` in the daemon, ``store_hits`` ints in the tiered
cache, ``memo_hits`` in the compiled core) that only the ``stats`` request
could see.  This module is the shared replacement: a process-wide (or
per-daemon) :class:`MetricsRegistry` of named, optionally labelled
instruments that any layer can create cheaply and any surface -- the
``stats`` wire response, the HTTP console's ``/metrics`` page,
``python -m repro top`` -- can read uniformly.

Four instrument kinds, all thread-safe:

* :class:`Counter` -- a monotonic count (requests served, cache hits).
* :class:`Gauge` -- a point-in-time value (pending queries, cache size).
* :class:`Histogram` -- fixed-bucket latency/size distribution with
  estimated percentiles (p50/p95/p99 by linear interpolation inside the
  bucket that crosses the rank; exact min/max/sum/count are tracked on
  the side).  Buckets are cumulative-``le`` style, so the exposition
  matches Prometheus histogram semantics bit for bit.
* :class:`EventLog` -- a bounded ring buffer of timestamped events (the
  accountability angle: an append-only record of what the service did,
  with the oldest entries evicted once the capacity is reached).

Instruments are get-or-create: asking the registry twice for the same
``(name, labels)`` returns the same object, so modules can declare their
instruments where they use them without an initialization order.
:meth:`MetricsRegistry.render_prometheus` serializes everything in the
Prometheus text exposition format (version 0.0.4).
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets in **seconds** (100us .. 10s), for server-side
#: request/solve timings.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default latency buckets in **milliseconds** (50us .. 10s), for
#: client-side measurements (the load generator records ms).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Label sets are stored as a sorted tuple of (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _label_set(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(
            key, value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        for key, value in pairs
    )
    return "{" + escaped + "}"


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways (thread-safe)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "_lock", "_value")

    def __init__(self, name: str, labels: LabelSet = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket distribution with estimated percentiles (thread-safe).

    ``bounds`` are the inclusive upper edges (``le``) of the finite
    buckets, ascending; everything larger lands in the implicit ``+Inf``
    overflow bucket.  :meth:`percentile` walks the cumulative counts to
    the bucket containing the requested rank and interpolates linearly
    inside it, clamping to the exact observed min/max -- within one bucket
    width of the truth by construction, which is all an operator's
    p50/p95/p99 needs.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "help", "bounds",
        "_lock", "_counts", "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
        labels: LabelSet = (),
        help: str = "",
    ) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, fraction: float) -> float:
        """The estimated *fraction*-quantile (0.0 on an empty histogram)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            target = fraction * total
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    cumulative += bucket_count
                    continue
                if cumulative + bucket_count >= target:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else (self._max if self._max is not None else lower)
                    )
                    inside = max(0.0, target - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * inside
                    if self._min is not None:
                        estimate = max(estimate, self._min)
                    if self._max is not None:
                        estimate = min(estimate, self._max)
                    return estimate
                cumulative += bucket_count
            return self._max if self._max is not None else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``."""
        with self._lock:
            pairs: List[Tuple[float, int]] = []
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self._counts):
                cumulative += bucket_count
                pairs.append((bound, cumulative))
            pairs.append((float("inf"), self._count))
            return pairs

    def snapshot(self) -> Dict[str, Any]:
        buckets = self.cumulative_buckets()
        with self._lock:
            count, total = self._count, self._sum
            minimum, maximum = self._min, self._max
        return {
            "count": count,
            "sum": round(total, 6),
            "min": round(minimum, 6) if minimum is not None else None,
            "max": round(maximum, 6) if maximum is not None else None,
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
            "buckets": [
                [bound if bound != float("inf") else "+Inf", cumulative]
                for bound, cumulative in buckets
            ],
        }


class EventLog:
    """A bounded ring buffer of timestamped events (thread-safe).

    Appending past the capacity evicts the oldest entry; ``dropped``
    counts how many were lost that way, so a reader can tell a quiet
    service from one whose history outran the buffer.
    """

    kind = "events"
    __slots__ = ("name", "labels", "help", "capacity", "_lock", "_events", "_total")

    def __init__(
        self, name: str, capacity: int = 256, labels: LabelSet = (), help: str = ""
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.labels = labels
        self.help = help
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._total = 0

    def append(self, kind: str, **fields: Any) -> None:
        event = {"time": time.time(), "kind": kind, **fields}
        with self._lock:
            self._events.append(event)
            self._total += 1

    @property
    def total(self) -> int:
        return self._total

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._total - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The retained events, newest first (all of them by default)."""
        with self._lock:
            events = list(self._events)
        events.reverse()
        return events[:limit] if limit is not None else events


class MetricsRegistry:
    """Named instruments, get-or-create, one exposition surface.

    The module-level :data:`REGISTRY` is the process-wide default for
    ad-hoc instrumentation; each :class:`~repro.service.server.VerdictService`
    owns a private registry instead, so several daemons in one test
    process never share counters.
    """

    def __init__(self, sample_capacity: int = 256) -> None:
        if sample_capacity < 1:
            raise ValueError("sample_capacity must be positive")
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelSet], Any] = {}
        self.sample_capacity = sample_capacity
        self._samples: deque = deque(maxlen=sample_capacity)
        self._samples_total = 0

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs):
        key = (name, _label_set(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels=key[1], help=help, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    def events(
        self,
        name: str,
        capacity: int = 256,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> EventLog:
        return self._get_or_create(EventLog, name, labels, help, capacity=capacity)

    # ------------------------------------------------------------------
    # Snapshot sample ring: the time dimension of the registry.  Each
    # stats poll records a compact sample; the bounded ring powers the
    # console's /stats/history page and the sparklines in ``repro top``.
    # ------------------------------------------------------------------
    def record_sample(self, sample: Mapping[str, Any]) -> Dict[str, Any]:
        """Append a timestamped snapshot sample (evicting the oldest)."""
        entry = {"time": time.time(), **sample}
        with self._lock:
            self._samples.append(entry)
            self._samples_total += 1
        return entry

    @property
    def samples_total(self) -> int:
        return self._samples_total

    @property
    def samples_dropped(self) -> int:
        """How many samples the ring evicted (EventLog-style accounting)."""
        with self._lock:
            return self._samples_total - len(self._samples)

    def samples(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained samples, oldest first (``limit`` keeps the newest tail)."""
        with self._lock:
            entries = list(self._samples)
        if limit is not None and limit >= 0:
            entries = entries[-limit:] if limit else []
        return entries

    def sample_stats(self) -> Dict[str, Any]:
        with self._lock:
            retained = len(self._samples)
            recorded = self._samples_total
        return {
            "capacity": self.sample_capacity,
            "retained": retained,
            "recorded": recorded,
            "dropped": recorded - retained,
        }

    # ------------------------------------------------------------------
    def collect(self) -> List[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _key, instrument in items]

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump: ``name{labels} -> value`` for every instrument."""
        dump: Dict[str, Any] = {}
        for instrument in self.collect():
            key = instrument.name + _render_labels(instrument.labels)
            if isinstance(instrument, EventLog):
                dump[key] = {"events": len(instrument), "dropped": instrument.dropped}
            else:
                dump[key] = instrument.snapshot()
        return dump

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (version 0.0.4) of every metric.

        Event logs are exposed as two synthetic counters
        (``<name>_events_total`` and ``<name>_dropped_total``) -- the
        events themselves are browse-surface data, not time series.
        """
        lines: List[str] = []
        seen_header: set = set()

        def header(name: str, kind: str, help_text: str) -> None:
            if name in seen_header:
                return
            seen_header.add(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for instrument in self.collect():
            if isinstance(instrument, Counter):
                header(instrument.name, "counter", instrument.help)
                lines.append(
                    f"{instrument.name}{_render_labels(instrument.labels)} "
                    f"{instrument.value}"
                )
            elif isinstance(instrument, Gauge):
                header(instrument.name, "gauge", instrument.help)
                value = instrument.value
                rendered = repr(value) if isinstance(value, float) else str(value)
                lines.append(
                    f"{instrument.name}{_render_labels(instrument.labels)} {rendered}"
                )
            elif isinstance(instrument, Histogram):
                header(instrument.name, "histogram", instrument.help)
                for bound, cumulative in instrument.cumulative_buckets():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_render_labels(instrument.labels, ('le', le))} {cumulative}"
                    )
                lines.append(
                    f"{instrument.name}_sum{_render_labels(instrument.labels)} "
                    f"{repr(instrument.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_render_labels(instrument.labels)} "
                    f"{instrument.count}"
                )
            elif isinstance(instrument, EventLog):
                header(instrument.name + "_events_total", "counter", instrument.help)
                lines.append(
                    f"{instrument.name}_events_total"
                    f"{_render_labels(instrument.labels)} {instrument.total}"
                )
                header(instrument.name + "_dropped_total", "counter", "")
                lines.append(
                    f"{instrument.name}_dropped_total"
                    f"{_render_labels(instrument.labels)} {instrument.dropped}"
                )
        return "\n".join(lines) + "\n"


#: The process-wide default registry (daemons own private ones instead).
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
