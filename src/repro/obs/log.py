"""Structured JSON-lines logging with request correlation.

One event per line, each a JSON object: timestamp, level, logger name,
a typed ``event`` string, and whatever fields the call site attached.
The serving stack used to mix ad-hoc ``print(..., file=sys.stderr)``
with silently swallowed degradations; this module replaces both with
events a human can grep and a pipeline can parse::

    {"ts": 1754640000.12, "level": "warning", "logger": "repro.service",
     "event": "breaker-transition", "old": "closed", "new": "open"}

**Correlation is automatic.**  When a log call happens inside an active
:class:`~repro.obs.trace.RequestTrace` (the daemon activates one per
request), the emitted line carries that trace's ``trace_id`` and
``request_id`` -- and the session name, when the trace was annotated with
one -- so a stream of interleaved events can be re-threaded per request
without any call site passing ids around.

The level threshold is process-wide and cheap to consult: a suppressed
``debug`` call costs one dict lookup and one comparison, so hot paths
(fault firings under chaos load) may log freely.  Configure via
:func:`configure` (``repro serve --log-level``) or the
``REPRO_LOG_LEVEL`` environment variable; the default is ``info``.
Events go to ``stderr`` unless a stream is configured -- tests pass a
``StringIO`` and assert on parsed lines.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

from repro.obs.trace import current_trace

#: Level names in ascending severity, mapped to numeric thresholds.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Environment variable consulted for the default threshold.
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

_lock = threading.Lock()
_loggers: Dict[str, "StructuredLogger"] = {}


class _Config:
    """The process-wide sink and threshold (mutated only via configure)."""

    __slots__ = ("threshold", "stream")

    def __init__(self) -> None:
        self.threshold = LEVELS.get(
            os.environ.get(LEVEL_ENV_VAR, "info").strip().lower(), LEVELS["info"]
        )
        self.stream: Optional[TextIO] = None  # None -> sys.stderr at emit time


_config = _Config()


def configure(
    level: Optional[str] = None, stream: Optional[TextIO] = None
) -> None:
    """Set the process-wide log level and/or sink.

    ``level`` is one of ``debug``/``info``/``warning``/``error`` (case
    insensitive); unknown names raise ``ValueError`` so a mistyped
    ``--log-level`` fails loudly instead of silencing everything.
    ``stream=None`` leaves the sink unchanged; the initial sink is
    ``sys.stderr`` resolved at emit time (so pytest's capture works).
    """
    with _lock:
        if level is not None:
            name = level.strip().lower()
            if name not in LEVELS:
                raise ValueError(
                    f"unknown log level {level!r}; known: {', '.join(LEVELS)}"
                )
            _config.threshold = LEVELS[name]
        if stream is not None:
            _config.stream = stream


def level_name() -> str:
    """The current threshold's name (for startup banners and tests)."""
    for name, value in LEVELS.items():
        if value == _config.threshold:
            return name
    return str(_config.threshold)


class StructuredLogger:
    """A named emitter of JSON-line events (cheap when below threshold)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------
    def log(self, level: str, event: str, **fields: Any) -> None:
        severity = LEVELS.get(level, LEVELS["info"])
        if severity < _config.threshold:
            return
        body: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        trace = current_trace()
        if trace is not None:
            body["trace_id"] = trace.trace_id
            if trace.request_id is not None:
                body["request_id"] = trace.request_id
            session = trace.annotations.get("session")
            if session is not None:
                body["session"] = session
        body.update(fields)
        try:
            line = json.dumps(body, default=str, separators=(",", ":"))
        except (TypeError, ValueError):  # pragma: no cover -- default=str covers it
            line = json.dumps({"ts": body["ts"], "level": level,
                               "logger": self.name, "event": event})
        stream = _config.stream if _config.stream is not None else sys.stderr
        with _lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):  # pragma: no cover -- closed sink
                pass

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """The (cached) logger registered under *name*."""
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructuredLogger(name)
            _loggers[name] = logger
        return logger
