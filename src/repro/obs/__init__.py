"""Observability for the verdict service: metrics, traces, console, top.

* :mod:`repro.obs.metrics` -- the instrument registry (counters, gauges,
  fixed-bucket histograms, bounded event logs) with Prometheus text
  exposition.
* :mod:`repro.obs.trace` -- per-request trace spans carried in a context
  variable, plus the bounded ring of recent traces.
* :mod:`repro.obs.http` -- the stdlib-only asyncio HTTP console
  (``/stats``, ``/metrics``, browse pages) served next to the daemon's
  TCP protocol by ``repro serve --http``.
* :mod:`repro.obs.top` -- ``python -m repro top``, the live-refresh
  terminal client of the console's ``/stats`` endpoint.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    LATENCY_BUCKETS_SECONDS,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.obs.trace import (
    RequestTrace,
    SpanRecord,
    TraceLog,
    activate,
    active,
    current_trace,
    deactivate,
    span,
)

__all__ = [
    "LATENCY_BUCKETS_MS",
    "LATENCY_BUCKETS_SECONDS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "RequestTrace",
    "SpanRecord",
    "TraceLog",
    "activate",
    "active",
    "current_trace",
    "deactivate",
    "span",
]
