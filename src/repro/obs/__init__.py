"""Observability for the verdict service: the performance observatory.

* :mod:`repro.obs.metrics` -- the instrument registry (counters, gauges,
  fixed-bucket histograms, bounded event logs, snapshot sample ring)
  with Prometheus text exposition.
* :mod:`repro.obs.trace` -- per-request trace spans carried in a context
  variable, plus the bounded ring of recent traces.
* :mod:`repro.obs.export` -- the TraceLog rendered as Chrome trace-event
  JSON (Perfetto-loadable timelines).
* :mod:`repro.obs.prof` -- the continuous sampling profiler (folded
  stacks + top-N frames from ``sys._current_frames()``).
* :mod:`repro.obs.log` -- structured JSON-lines logging with request-id
  correlation off the ambient trace.
* :mod:`repro.obs.history` -- the append-only benchmark history
  (``BENCH_history.jsonl``) and its noise-tolerant regression gate.
* :mod:`repro.obs.http` -- the stdlib-only asyncio HTTP console
  (``/stats``, ``/metrics``, ``/profile``, browse pages) served next to
  the daemon's TCP protocol by ``repro serve --http``.
* :mod:`repro.obs.top` -- ``python -m repro top``, the live-refresh
  terminal client of the console's ``/stats`` endpoint.
"""

from repro.obs.export import chrome_trace, render_chrome_trace, trace_events
from repro.obs.history import (
    DEFAULT_HISTORY_FILENAME,
    MetricSpec,
    TRACKED_METRICS,
    append_record,
    build_record,
    check,
    collect_metrics,
    read_history,
    sparkline,
)
from repro.obs.log import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    LATENCY_BUCKETS_SECONDS,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.obs.prof import SamplingProfiler
from repro.obs.trace import (
    RequestTrace,
    SpanRecord,
    TraceLog,
    activate,
    active,
    current_trace,
    deactivate,
    span,
)

__all__ = [
    "LATENCY_BUCKETS_MS",
    "LATENCY_BUCKETS_SECONDS",
    "Counter",
    "DEFAULT_HISTORY_FILENAME",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "REGISTRY",
    "SamplingProfiler",
    "StructuredLogger",
    "TRACKED_METRICS",
    "get_registry",
    "RequestTrace",
    "SpanRecord",
    "TraceLog",
    "activate",
    "active",
    "append_record",
    "build_record",
    "check",
    "chrome_trace",
    "collect_metrics",
    "configure",
    "current_trace",
    "deactivate",
    "get_logger",
    "read_history",
    "render_chrome_trace",
    "span",
    "sparkline",
    "trace_events",
]
