"""The operations console: a stdlib-only HTTP surface over one daemon.

:class:`ConsoleServer` binds a tiny asyncio HTTP/1.1 listener next to the
JSON-lines daemon (same event loop, same :class:`VerdictService
<repro.service.server.VerdictService>`) and serves:

* ``/stats`` -- the exact ``stats`` wire payload as JSON (what
  ``python -m repro top`` polls),
* ``/metrics`` -- the Prometheus text exposition of the daemon's
  registry,
* browse pages -- ``/scenarios``, ``/scenarios/<name>``, ``/verdicts``,
  ``/sessions``, ``/traces`` -- rendered as plain HTML tables for a
  browser, or as JSON with ``?format=json``.

The server handles ``GET``/``HEAD`` only, answers every request with
``Connection: close``, and never blocks the event loop on store I/O:
scenario key computation and store reads run on the loop's default worker
pool, same as the daemon's own tier-2 path.  No third-party dependency is
involved anywhere -- the parser accepts exactly the request shape that
browsers, ``curl`` and Prometheus scrapers emit.
"""

from __future__ import annotations

import asyncio
import html
import itertools
import json
import urllib.parse
from typing import Any, Dict, List, Optional, Tuple

#: The conventional console port ("RK" on a phone keypad is taken; 7465
#: spells nothing and collides with nothing registered).
DEFAULT_HTTP_PORT = 7465

#: Pagination defaults/caps for the store-backed browse pages.
DEFAULT_PAGE_SIZE = 50
MAX_PAGE_SIZE = 500

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       background: #111; color: #ddd; }
a { color: #7ad; } h1, h2 { color: #fff; font-weight: 600; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #444; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #222; } tr:nth-child(even) td { background: #1a1a1a; }
.true { color: #7d7; } .false { color: #d77; } .nav { margin: 0.5rem 0; }
"""


class _HttpError(Exception):
    """An error the console answers with a status page instead of a 500."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _page(title: str, body: str) -> str:
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{html.escape(title)}</h1>{body}</body></html>"
    )


def _table(headers: List[str], rows: List[List[str]]) -> str:
    """An HTML table from pre-escaped cell strings."""
    head = "".join(f"<th>{cell}</th>" for cell in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>" for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _verdict_cell(verdict: bool) -> str:
    return f"<span class='{str(bool(verdict)).lower()}'>{bool(verdict)}</span>"


def _int_param(params: Dict[str, str], name: str, default: int, maximum: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise _HttpError(400, f"query parameter {name!r} must be an integer") from None
    if value < 1:
        raise _HttpError(400, f"query parameter {name!r} must be positive")
    return min(value, maximum)


class ConsoleServer:
    """The HTTP console bound to one :class:`VerdictService`.

    Must be started (and stopped) on the same event loop the service's
    coroutines run on -- :class:`~repro.service.server.ServerThread` does
    both on its background loop when given an ``http_port``.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if not request_line:
                return
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                await self._send(writer, 400, "text/plain; charset=utf-8", b"bad request\n")
                return
            method, target, _version = parts
            # Drain (and ignore) the headers; the console is read-only.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            if method not in ("GET", "HEAD"):
                await self._send(
                    writer, 405, "text/plain; charset=utf-8", b"GET and HEAD only\n"
                )
                return
            try:
                status, content_type, body = await self._route(target)
            except _HttpError as error:
                status = error.status
                content_type = "text/plain; charset=utf-8"
                body = (error.message + "\n").encode("utf-8")
            except Exception as error:  # noqa: BLE001 -- console must not die
                status = 500
                content_type = "text/plain; charset=utf-8"
                body = (repr(error) + "\n").encode("utf-8")
            await self._send(writer, status, content_type, body, head=method == "HEAD")
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        head: bool = False,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        header = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(header.encode("latin-1") + (b"" if head else body))
        await writer.drain()

    # ------------------------------------------------------------------
    async def _route(self, target: str) -> Tuple[int, str, bytes]:
        parsed = urllib.parse.urlsplit(target)
        path = urllib.parse.unquote(parsed.path).rstrip("/") or "/"
        params = dict(urllib.parse.parse_qsl(parsed.query))
        as_json = params.get("format") == "json"
        if path == "/":
            return self._overview()
        if path == "/healthz":
            return self._healthz()
        if path == "/stats":
            return self._json(self.service.stats())
        if path == "/stats/history":
            return self._stats_history(params)
        if path == "/metrics":
            text = self.service.registry.render_prometheus()
            return 200, "text/plain; version=0.0.4; charset=utf-8", text.encode("utf-8")
        if path == "/scenarios":
            return self._scenarios(as_json)
        if path.startswith("/scenarios/"):
            return await self._scenario_detail(path[len("/scenarios/"):], params, as_json)
        if path == "/verdicts":
            return await self._verdicts(params, as_json)
        if path == "/sessions":
            return self._sessions(as_json)
        if path == "/traces/export.json":
            return self._traces_export(params)
        if path == "/traces":
            return self._traces(params, as_json)
        if path == "/profile":
            return self._profile(params, as_json)
        if path == "/bench":
            return self._bench(params, as_json)
        raise _HttpError(404, f"no such page: {path}")

    def _json(self, payload: Any) -> Tuple[int, str, bytes]:
        body = json.dumps(payload, indent=2, sort_keys=False, default=str)
        return 200, "application/json; charset=utf-8", (body + "\n").encode("utf-8")

    def _healthz(self) -> Tuple[int, str, bytes]:
        """Load-balancer liveness: 200 = route traffic here, 503 = don't.

        The answer comes from the service's own :meth:`healthz` predicate
        (draining or an open store breaker means 503), so external probers
        and the pool supervisor agree on what "healthy" means.
        """
        probe = getattr(self.service, "healthz", None)
        if probe is None:
            healthy, detail = True, {"healthy": True}
        else:
            healthy, detail = probe()
        body = json.dumps(detail, sort_keys=True) + "\n"
        status = 200 if healthy else 503
        return status, "application/json; charset=utf-8", body.encode("utf-8")

    def _html(self, title: str, body: str) -> Tuple[int, str, bytes]:
        return 200, "text/html; charset=utf-8", _page(title, body).encode("utf-8")

    # ------------------------------------------------------------------
    def _overview(self) -> Tuple[int, str, bytes]:
        stats = self.service.stats()
        requests = stats.get("requests", {})
        links = "".join(
            f"<li><a href='{href}'>{html.escape(label)}</a></li>"
            for href, label in (
                ("/healthz", "liveness probe (200/503)"),
                ("/stats", "stats (JSON)"),
                ("/stats/history", "stats history (JSON samples)"),
                ("/metrics", "metrics (Prometheus)"),
                ("/scenarios", "scenarios"),
                ("/verdicts", "stored verdicts"),
                ("/sessions", "dynamic sessions"),
                ("/traces", "recent traces"),
                ("/traces/export.json", "trace export (Chrome/Perfetto)"),
                ("/profile", "profiler (folded stacks)"),
                ("/bench", "benchmark history"),
            )
        )
        summary = _table(
            ["uptime (s)", "queries", "mutates", "errors", "pending", "sessions"],
            [[
                html.escape(str(stats.get("uptime_seconds"))),
                str(requests.get("query", 0)),
                str(requests.get("mutate", 0)),
                str(stats.get("errors", 0)),
                str(stats.get("pending", 0)),
                str(stats.get("dynamic", {}).get("sessions", 0)),
            ]],
        )
        return self._html("repro verdict daemon", summary + f"<ul>{links}</ul>")

    def _scenarios(self, as_json: bool) -> Tuple[int, str, bytes]:
        from repro.sweep.scenarios import all_scenarios

        entries = [
            {
                "name": scenario.name,
                "description": scenario.description,
                "tags": list(scenario.tags),
            }
            for scenario in all_scenarios()
        ]
        if as_json:
            return self._json({"scenarios": entries})
        rows = [
            [
                f"<a href='/scenarios/{urllib.parse.quote(entry['name'])}'>"
                f"{html.escape(entry['name'])}</a>",
                html.escape(entry["description"]),
                html.escape(", ".join(entry["tags"])),
            ]
            for entry in entries
        ]
        return self._html("Scenarios", _table(["name", "description", "tags"], rows))

    async def _scenario_detail(
        self, name: str, params: Dict[str, str], as_json: bool
    ) -> Tuple[int, str, bytes]:
        from repro.sweep.scenarios import scenario_names

        if name not in scenario_names():
            raise _HttpError(404, f"unknown scenario: {name}")
        page = _int_param(params, "page", 1, 1_000_000)
        per_page = _int_param(params, "per_page", DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE)
        loop = asyncio.get_running_loop()
        # Key fingerprinting and the store read are real work: worker pool.
        keys = await loop.run_in_executor(None, self.service.resolver.scenario_keys, name)
        start = (page - 1) * per_page
        window = keys[start : start + per_page]
        store = self.service.store
        stored: Dict[str, bool] = {}
        if store is not None and window:
            stored = await loop.run_in_executor(None, store.get_many, window)
        entries = [
            {
                "index": start + offset,
                "key": key,
                "verdict": stored.get(key),
            }
            for offset, key in enumerate(window)
        ]
        payload = {
            "scenario": name,
            "instances": len(keys),
            "stored": len(stored),
            "page": page,
            "per_page": per_page,
            "entries": entries,
        }
        if as_json:
            return self._json(payload)
        rows = [
            [
                str(entry["index"]),
                html.escape(entry["key"]),
                _verdict_cell(entry["verdict"])
                if entry["verdict"] is not None
                else "<em>not stored</em>",
            ]
            for entry in entries
        ]
        nav = self._pager(f"/scenarios/{urllib.parse.quote(name)}", page, per_page,
                          more=start + per_page < len(keys))
        body = (
            f"<p>{len(keys)} instances, {len(stored)} of this page stored.</p>"
            + _table(["#", "key", "verdict"], rows)
            + nav
        )
        return self._html(f"Scenario {name}", body)

    async def _verdicts(
        self, params: Dict[str, str], as_json: bool
    ) -> Tuple[int, str, bytes]:
        store = self.service.store
        page = _int_param(params, "page", 1, 1_000_000)
        per_page = _int_param(params, "per_page", DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE)
        if store is None:
            payload = {"total": 0, "page": page, "per_page": per_page, "entries": []}
            if as_json:
                return self._json(payload)
            return self._html("Stored verdicts", "<p>No store attached.</p>")
        loop = asyncio.get_running_loop()

        def read_page() -> Tuple[int, List[Dict[str, Any]]]:
            start = (page - 1) * per_page
            window = list(itertools.islice(store.items(), start, start + per_page))
            return len(store), [
                {"key": key, "verdict": verdict, "name": name, "seconds": seconds}
                for key, (verdict, name, seconds) in window
            ]

        total, entries = await loop.run_in_executor(None, read_page)
        payload = {"total": total, "page": page, "per_page": per_page, "entries": entries}
        if as_json:
            return self._json(payload)
        rows = [
            [
                html.escape(entry["key"]),
                _verdict_cell(entry["verdict"]),
                html.escape(entry["name"]),
                f"{entry['seconds']:.6f}",
            ]
            for entry in entries
        ]
        nav = self._pager("/verdicts", page, per_page, more=page * per_page < total)
        body = f"<p>{total} stored verdicts.</p>" + _table(
            ["key", "verdict", "name", "solve seconds"], rows
        ) + nav
        return self._html("Stored verdicts", body)

    def _sessions(self, as_json: bool) -> Tuple[int, str, bytes]:
        sessions = {
            name: session.info() for name, session in self.service.sessions.items()
        }
        if as_json:
            return self._json({"sessions": sessions})
        rows = [
            [
                html.escape(name),
                str(info.get("mutate_batches", 0)),
                str(info.get("deltas_applied", 0)),
                str(info.get("queries", 0)),
                html.escape(json.dumps({
                    k: v for k, v in info.items()
                    if k not in ("mutate_batches", "deltas_applied", "queries")
                }, default=str)),
            ]
            for name, info in sorted(sessions.items())
        ]
        return self._html(
            "Dynamic sessions",
            _table(["session", "mutate batches", "deltas", "queries", "info"], rows)
            if rows
            else "<p>No dynamic sessions open.</p>",
        )

    def _traces(self, params: Dict[str, str], as_json: bool) -> Tuple[int, str, bytes]:
        limit = _int_param(params, "limit", 50, 500)
        traces = self.service.traces.snapshot(limit)
        if as_json:
            return self._json({"traces": traces, **self.service.traces.stats()})
        rows = [
            [
                str(trace.get("trace_id")),
                html.escape(str(trace.get("op"))),
                html.escape(str(trace.get("name", ""))),
                html.escape(str(trace.get("source", ""))),
                str(trace.get("total_ms")),
                html.escape(
                    " ".join(
                        f"{span.get('span')}={span.get('ms')}ms"
                        for span in trace.get("spans", [])
                    )
                ),
            ]
            for trace in traces
        ]
        return self._html(
            "Recent traces",
            _table(["id", "op", "name", "source", "total ms", "spans"], rows)
            if rows
            else "<p>No traces recorded yet.</p>",
        )

    def _stats_history(self, params: Dict[str, str]) -> Tuple[int, str, bytes]:
        limit = _int_param(params, "limit", 120, 1000)
        registry = self.service.registry
        return self._json(
            {"samples": registry.samples(limit), **registry.sample_stats()}
        )

    def _traces_export(self, params: Dict[str, str]) -> Tuple[int, str, bytes]:
        from repro.obs.export import chrome_trace

        limit = _int_param(params, "limit", 200, 500)
        document = chrome_trace(self.service.traces.snapshot(limit))
        body = json.dumps(document, default=str)
        return 200, "application/json; charset=utf-8", body.encode("utf-8")

    def _profile(self, params: Dict[str, str], as_json: bool) -> Tuple[int, str, bytes]:
        profiler = getattr(self.service, "profiler", None)
        if profiler is None:
            raise _HttpError(404, "no profiler attached to this daemon")
        if as_json:
            top = _int_param(params, "top", 20, 200)
            return self._json(profiler.snapshot(top))
        # Default: raw folded stacks, one per line -- flamegraph.pl food.
        folded = profiler.folded()
        if not folded and not profiler.running:
            folded = (
                "# profiler not running -- start with `repro serve --profile-hz N`\n"
                "# or the admin op: profile-start"
            )
        return 200, "text/plain; charset=utf-8", (folded + "\n").encode("utf-8")

    def _bench(self, params: Dict[str, str], as_json: bool) -> Tuple[int, str, bytes]:
        import os
        from pathlib import Path

        from repro.obs import history as bench_history

        # Resolved per request so the page tracks whatever directory the
        # benchmarks are writing to right now.
        base = Path(os.environ.get("BENCH_OUTPUT_DIR", "."))
        history_path = base / bench_history.DEFAULT_HISTORY_FILENAME
        records = bench_history.read_history(history_path)
        limit = _int_param(params, "limit", 50, 500)
        records = records[-limit:]
        if as_json:
            return self._json({"path": str(history_path), "records": records})
        if not records:
            return self._html(
                "Benchmark history",
                f"<p>No records at {html.escape(str(history_path))}. "
                "Run <code>repro bench --collect</code> to append one.</p>",
            )
        newest = records[-1]
        rows = []
        for spec in bench_history.TRACKED_METRICS:
            series = bench_history.metric_series(records, spec.name)
            if not series:
                continue
            rows.append(
                [
                    html.escape(spec.name),
                    html.escape(spec.direction),
                    f"{series[-1]:g}",
                    html.escape(bench_history.sparkline(series, width=40)),
                    str(len(series)),
                ]
            )
        meta = (
            f"<p>{len(records)} records; newest "
            f"{html.escape(str(newest.get('git_sha', '?')))[:12]} at "
            f"{html.escape(str(newest.get('ts', '?')))}.</p>"
        )
        return self._html(
            "Benchmark history",
            meta + _table(["metric", "direction", "latest", "trend", "n"], rows),
        )

    def _pager(self, base: str, page: int, per_page: int, more: bool) -> str:
        links = []
        if page > 1:
            links.append(
                f"<a href='{base}?page={page - 1}&per_page={per_page}'>&larr; prev</a>"
            )
        if more:
            links.append(
                f"<a href='{base}?page={page + 1}&per_page={per_page}'>next &rarr;</a>"
            )
        return f"<p class='nav'>{' | '.join(links)}</p>" if links else ""
