"""Benchmark history: an append-only perf record with a regression gate.

The ``BENCH_*.json`` artifacts are point-in-time snapshots that each
benchmark run clobbers -- fine for "what did this commit measure", useless
for "is the repo getting slower".  Following the accountable append-only
log ethos of the pod abstraction (Alpos et al.), this module turns them
into an auditable trajectory: ``repro bench`` collects the tracked
ratios out of the fresh snapshots and *appends* one record (git sha,
timestamp, python/cpu, metrics) to ``BENCH_history.jsonl``.  Records are
never rewritten; the file replays into the full perf history of the
branch.

``repro bench --check`` is the gate.  For each tracked metric it
enforces two things against the newest record:

* an **absolute floor/ceiling** where one exists (the hard invariants CI
  used to check with inline python snippets -- e.g. the compiled tier
  must beat the engine by >= 5x, dynamic repair must do zero full
  rebuilds), and
* **drift** against the median of a window of previous records: with the
  default threshold factor of 1.5, a genuine 2x slowdown trips the gate
  while the +/-10% noise of a shared CI runner does not.  The median
  baseline means one historical outlier cannot poison the gate either
  way.

The same history feeds the console's ``/bench`` page and the sparklines
in ``repro top`` (via :func:`sparkline`).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: The history file name, created next to the ``BENCH_*.json`` snapshots.
DEFAULT_HISTORY_FILENAME = "BENCH_history.jsonl"

#: Benchmark suites runnable via ``repro bench`` (name -> pytest file).
SUITES: Dict[str, str] = {
    "fig02": "bench_fig02_hierarchy.py",
    "fig07": "bench_fig07_locality_comparison.py",
    "canonical": "bench_canonical.py",
    "service": "bench_service.py",
    "dynamic": "bench_dynamic.py",
}


class MetricSpec:
    """One tracked number: where it lives, which way is better, hard bounds."""

    __slots__ = ("name", "source", "path", "direction", "floor", "ceiling")

    def __init__(
        self,
        name: str,
        source: str,
        path: Sequence[str],
        direction: str = "higher",
        floor: Optional[float] = None,
        ceiling: Optional[float] = None,
    ) -> None:
        if direction not in ("higher", "lower"):
            raise ValueError("direction must be 'higher' or 'lower'")
        self.name = name
        self.source = source  # BENCH_<source>.json
        self.path = tuple(path)
        self.direction = direction
        self.floor = floor
        self.ceiling = ceiling


#: Every metric the gate watches.  Floors/ceilings mirror the invariants
#: CI previously enforced with inline snippets; ratio metrics also get
#: drift checking against the history window.
TRACKED_METRICS: List[MetricSpec] = [
    MetricSpec("fig02.compiled_vs_engine", "fig02",
               ("compiled_vs_engine", "speedup_median"), "higher", floor=5.0),
    MetricSpec("fig02.engine_vs_naive", "fig02",
               ("engine_vs_naive", "speedup_median"), "higher", floor=5.0),
    MetricSpec("fig02.bitset_vs_compiled", "fig02",
               ("bitset_vs_compiled", "speedup_median"), "higher", floor=3.0),
    MetricSpec("fig07.sweep_locality_seconds", "fig07",
               ("sweep_locality_median_seconds",), "lower"),
    MetricSpec("service.hot_vs_cold", "service",
               ("speedup_hot_vs_cold",), "higher", floor=10.0),
    MetricSpec("service.warm_vs_cold", "service",
               ("speedup_warm_vs_cold",), "higher", floor=10.0),
    MetricSpec("service.hot_qps", "service",
               ("hot_cache", "requests_per_second"), "higher"),
    MetricSpec("service.hot_p99_ms", "service",
               ("hot_cache", "latency_ms", "p99"), "lower"),
    MetricSpec("service.hot_hit_rate", "service",
               ("hot_cache", "cache_hit_rate"), "higher", floor=0.5),
    MetricSpec("dynamic.repair_vs_recompute", "dynamic",
               ("repair_vs_recompute", "speedup_median"), "higher", floor=3.0),
    MetricSpec("dynamic.repair_seconds", "dynamic",
               ("repair_vs_recompute", "repair_median_seconds"), "lower"),
    MetricSpec("dynamic.full_rebuilds", "dynamic",
               ("trace", "full_rebuilds"), "lower", ceiling=0.0),
    MetricSpec("canonical.cold_hits", "canonical",
               ("cold", "hits"), "higher", floor=1.0),
    MetricSpec("canonical.cold_hit_rate", "canonical",
               ("cold", "hit_rate"), "higher", floor=1e-9),
    MetricSpec("canonical.store_hits", "canonical",
               ("store_backed", "store_hits"), "higher", floor=1.0),
    MetricSpec("canonical.sweep_hit_rate", "canonical",
               ("sweep", "hit_rate"), "higher", floor=1e-9),
]


def _dig(payload: Dict[str, Any], path: Sequence[str]) -> Optional[float]:
    node: Any = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def collect_metrics(bench_dir: Path) -> Dict[str, float]:
    """Read every tracked metric out of the ``BENCH_*.json`` snapshots.

    Missing snapshot files or paths are simply absent from the result --
    a partial benchmark run records what it measured.
    """
    metrics: Dict[str, float] = {}
    payloads: Dict[str, Optional[Dict[str, Any]]] = {}
    for spec in TRACKED_METRICS:
        if spec.source not in payloads:
            path = bench_dir / f"BENCH_{spec.source}.json"
            try:
                payloads[spec.source] = json.loads(path.read_text())
            except (OSError, ValueError):
                payloads[spec.source] = None
        payload = payloads[spec.source]
        if payload is None:
            continue
        value = _dig(payload, spec.path)
        if value is not None:
            metrics[spec.name] = value
    return metrics


def git_sha(repo_dir: Optional[Path] = None) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def build_record(
    metrics: Dict[str, float], repo_dir: Optional[Path] = None
) -> Dict[str, Any]:
    return {
        "ts": round(time.time(), 3),
        "git_sha": git_sha(repo_dir),
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "metrics": dict(metrics),
    }


def append_record(history_path: Path, record: Dict[str, Any]) -> None:
    """Append one record; the file is never rewritten."""
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_history(history_path: Path) -> List[Dict[str, Any]]:
    """All records, oldest first; malformed lines are skipped, not fatal."""
    records: List[Dict[str, Any]] = []
    try:
        text = Path(history_path).read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and isinstance(record.get("metrics"), dict):
            records.append(record)
    return records


class CheckResult:
    """The regression gate's verdict: per-metric rows plus pass/fail."""

    def __init__(self) -> None:
        self.rows: List[Dict[str, Any]] = []

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [row for row in self.rows if not row["ok"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "rows": self.rows}


def check(
    records: List[Dict[str, Any]],
    window: int = 5,
    threshold: float = 1.5,
) -> CheckResult:
    """Gate the newest record against floors/ceilings and windowed drift.

    ``threshold`` is a *factor*: a metric fails drift when it is worse
    than the baseline (median of up to ``window`` prior records) by more
    than that factor.  1.5 means a 2x slowdown trips, +/-10% noise never
    does.  Metrics with fewer than one prior observation skip drift and
    only face their absolute bounds.
    """
    if threshold <= 1.0:
        raise ValueError("threshold factor must be > 1.0")
    result = CheckResult()
    if not records:
        result.rows.append(
            {
                "metric": "(history)",
                "ok": False,
                "reason": "no records in history",
                "value": None,
                "baseline": None,
            }
        )
        return result
    newest = records[-1]
    prior = records[:-1]
    for spec in TRACKED_METRICS:
        value = newest.get("metrics", {}).get(spec.name)
        if value is None:
            continue  # not measured this run
        value = float(value)
        row: Dict[str, Any] = {
            "metric": spec.name,
            "direction": spec.direction,
            "value": value,
            "baseline": None,
            "ok": True,
            "reason": "ok",
        }
        if spec.floor is not None and value < spec.floor:
            row["ok"] = False
            row["reason"] = f"below floor {spec.floor:g}"
        if spec.ceiling is not None and value > spec.ceiling:
            row["ok"] = False
            row["reason"] = f"above ceiling {spec.ceiling:g}"
        history_values = [
            float(record["metrics"][spec.name])
            for record in prior[-window:]
            if spec.name in record.get("metrics", {})
        ]
        if row["ok"] and history_values:
            baseline = statistics.median(history_values)
            row["baseline"] = round(baseline, 6)
            if baseline > 0 and value > 0:
                ratio = (
                    baseline / value if spec.direction == "higher" else value / baseline
                )
                if ratio > threshold:
                    row["ok"] = False
                    row["reason"] = (
                        f"regressed {ratio:.2f}x vs window median "
                        f"{baseline:g} (threshold {threshold:g}x)"
                    )
        result.rows.append(row)
    if not result.rows:
        result.rows.append(
            {
                "metric": "(metrics)",
                "ok": False,
                "reason": "newest record tracks no known metrics",
                "value": None,
                "baseline": None,
            }
        )
    return result


# ----------------------------------------------------------------------
# Rendering helpers (console /bench page, repro top)
# ----------------------------------------------------------------------
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], width: Optional[int] = None) -> str:
    """A unicode sparkline of *values* (empty string for no data)."""
    series = [float(v) for v in values]
    if width is not None and width > 0:
        series = series[-width:]
    if not series:
        return ""
    low = min(series)
    high = max(series)
    if high <= low:
        return _SPARK_BLOCKS[0] * len(series)
    scale = (len(_SPARK_BLOCKS) - 1) / (high - low)
    return "".join(
        _SPARK_BLOCKS[int(round((value - low) * scale))] for value in series
    )


def metric_series(
    records: List[Dict[str, Any]], name: str, limit: Optional[int] = None
) -> List[float]:
    """One metric's trajectory across *records* (oldest first)."""
    series = [
        float(record["metrics"][name])
        for record in records
        if name in record.get("metrics", {})
    ]
    return series[-limit:] if limit is not None else series
