"""Render retained request traces as Chrome trace-event JSON.

The :class:`~repro.obs.trace.TraceLog` keeps the last few hundred
requests' span breakdowns; this module turns them into the `trace event
format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ load
directly, so a slow query's resolve -> lru -> store -> coalesce -> engine
breakdown can be inspected on a real timeline instead of a table.

Mapping choices:

* Each trace becomes one *track*: ``pid`` is the daemon process, ``tid``
  is the trace id (Perfetto renders each tid as its own row).
* The request itself is a complete ("X") event spanning ``total_ms``;
  every span is a nested "X" event whose start comes from the span's
  ``offset_ms`` when recorded (traces captured before offsets existed
  fall back to laying spans end-to-end).
* Timestamps and durations are **microseconds** (the format's unit),
  based at the trace's wall-clock start so concurrent requests line up
  against each other.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

#: Keys of a trace dict that are structure, not request-level annotations.
_TRACE_STRUCTURE_KEYS = frozenset(
    {"trace_id", "op", "id", "name", "started", "total_ms", "spans"}
)
_SPAN_STRUCTURE_KEYS = frozenset({"span", "ms", "offset_ms"})


def trace_events(trace: Dict[str, Any], pid: int = 1) -> List[Dict[str, Any]]:
    """The trace-event list for one TraceLog entry (a ``as_dict()`` dict)."""
    tid = int(trace.get("trace_id") or 0)
    base_us = float(trace.get("started") or 0.0) * 1e6
    total_us = float(trace.get("total_ms") or 0.0) * 1000.0
    request_id = trace.get("id")
    op = str(trace.get("op") or "request")
    title = trace.get("name") or request_id or tid
    args = {
        key: value
        for key, value in trace.items()
        if key not in _TRACE_STRUCTURE_KEYS and value is not None
    }
    if request_id is not None:
        args["request_id"] = request_id
    events: List[Dict[str, Any]] = [
        {
            "name": f"{op}:{title}",
            "cat": op,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": base_us,
            "dur": total_us,
            "args": args,
        }
    ]
    cursor_us = 0.0  # fallback layout for spans without offsets
    for span in trace.get("spans") or []:
        dur_us = float(span.get("ms") or 0.0) * 1000.0
        offset_ms = span.get("offset_ms")
        if offset_ms is not None:
            start_us = float(offset_ms) * 1000.0
        else:
            start_us = cursor_us
            cursor_us += dur_us
        span_args = {
            key: value
            for key, value in span.items()
            if key not in _SPAN_STRUCTURE_KEYS and value is not None
        }
        events.append(
            {
                "name": str(span.get("span") or "span"),
                "cat": op,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": base_us + start_us,
                "dur": dur_us,
                "args": span_args,
            }
        )
    return events


def chrome_trace(
    traces: Iterable[Dict[str, Any]],
    pid: int = 1,
    process_name: str = "repro verdict daemon",
) -> Dict[str, Any]:
    """A loadable Chrome trace document for a batch of TraceLog entries.

    ``traces`` is typically ``TraceLog.snapshot()`` output (newest
    first); events are emitted oldest first so the timeline reads
    left-to-right.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    batch = list(traces)
    batch.sort(key=lambda trace: float(trace.get("started") or 0.0))
    for trace in batch:
        events.extend(trace_events(trace, pid=pid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_trace(traces: Iterable[Dict[str, Any]], **kwargs: Any) -> str:
    """:func:`chrome_trace`, serialized (what the console and CLI write)."""
    return json.dumps(chrome_trace(traces, **kwargs), default=str)
