"""Request coalescing: in-flight dedup plus a micro-batching window.

Two mechanisms keep a thundering herd of concurrent cache misses from
multiplying compute:

* **In-flight dedup.**  The first miss for a key creates a future; every
  later query for the same key -- arriving any time before the compute
  finishes -- awaits that same future.  N concurrent clients asking the
  same question cost one evaluation.
* **Micro-batching.**  Distinct pending keys are held for a short window
  (a few milliseconds) and then grouped by
  :func:`~repro.sweep.executor.evaluator_sharing_key`; each group is
  dispatched as *one* batch through the sweep executor's evaluation path,
  so concurrent queries on the same ``(machine, graph, ids)`` instance
  share a single :class:`~repro.engine.compiled.CompiledInstance` (and its
  verdict memo) instead of compiling it once per request.

Batches run on a worker thread pool (machines close over plain functions
and are not picklable, so the process-pool path the sweep uses for named
scenarios is not available for arbitrary online queries); the event loop
stays free to admit, answer and reject traffic while a batch computes.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.batch import GameInstance
from repro.obs.metrics import MetricsRegistry
from repro.sweep.executor import evaluator_sharing_key

#: Evaluates one compatible batch: instances -> (verdicts, per-instance seconds).
BatchEvaluator = Callable[[Sequence[GameInstance]], Tuple[List[bool], List[float]]]

#: Called on the event loop after a batch computes, with the batch's
#: (key, instance, name) entries and the parallel verdict/seconds lists --
#: the service's hook for recording results into the cache tiers exactly
#: once (dedup waiters never re-record).
ComputedCallback = Callable[
    [List[Tuple[str, GameInstance, str]], List[bool], List[float]], None
]


class CoalescerClosed(Exception):
    """Raised by queries still pending when the coalescer shuts down."""


@dataclass(frozen=True)
class CoalescedResult:
    """The outcome of one coalesced computation, as seen by one waiter."""

    verdict: bool
    seconds: float
    deduped: bool
    batch_size: int


class _Pending:
    __slots__ = ("key", "instance", "name", "future")

    def __init__(
        self, key: str, instance: GameInstance, name: str, future: "asyncio.Future"
    ) -> None:
        self.key = key
        self.instance = instance
        self.name = name
        self.future = future


class RequestCoalescer:
    """Deduplicates and micro-batches compute-tier dispatch (event-loop only).

    All public coroutines/methods must be called from the owning event
    loop; the only thing that leaves the loop is the batch evaluation
    itself, shipped to *executor* (a thread pool owned by the coalescer
    unless one is injected).
    """

    def __init__(
        self,
        evaluate: BatchEvaluator,
        window_seconds: float = 0.002,
        max_batch: int = 32,
        executor: Optional[concurrent.futures.Executor] = None,
        on_computed: Optional[ComputedCallback] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self._evaluate = evaluate
        self.window_seconds = max(0.0, window_seconds)
        self.max_batch = max_batch
        self._executor = executor or concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="verdict-compute"
        )
        self._owns_executor = executor is None
        self._on_computed = on_computed
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending: List[_Pending] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._tasks: Set[asyncio.Task] = set()
        self._closed = False
        # Telemetry: registry-backed instruments (a private registry when
        # the owner -- normally the daemon -- does not hand one in).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._submitted = self.registry.counter(
            "repro_coalescer_submitted_total", help="distinct keys submitted"
        )
        self._deduped = self.registry.counter(
            "repro_coalescer_deduped_total", help="queries answered by an in-flight future"
        )
        self._batches = self.registry.counter(
            "repro_coalescer_batches_total", help="compatible batches dispatched"
        )
        self._batched = self.registry.counter(
            "repro_coalescer_batched_total", help="queries dispatched inside batches"
        )
        self._largest_batch = self.registry.gauge(
            "repro_coalescer_largest_batch", help="largest batch dispatched so far"
        )
        self._record_failures = self.registry.counter(
            "repro_coalescer_record_failures_total",
            help="on_computed callbacks that raised (verdicts still answered)",
        )

    # Registry-backed counters, exposed as the plain ints they replaced.
    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def deduped(self) -> int:
        return self._deduped.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def batched(self) -> int:
        return self._batched.value

    @property
    def largest_batch(self) -> int:
        return int(self._largest_batch.value)

    @property
    def record_failures(self) -> int:
        return self._record_failures.value

    # ------------------------------------------------------------------
    async def submit(
        self, key: str, instance: GameInstance, name: str = ""
    ) -> CoalescedResult:
        """The verdict for *key*, computed at most once across waiters."""
        if self._closed:
            raise CoalescerClosed("coalescer is shut down")
        loop = asyncio.get_running_loop()
        existing = self._inflight.get(key)
        if existing is not None:
            self._deduped.inc()
            result: CoalescedResult = await asyncio.shield(existing)
            return replace(result, deduped=True)

        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._pending.append(_Pending(key, instance, name, future))
        self._submitted.inc()
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            if self.window_seconds <= 0.0:
                self._timer = loop.call_soon(self._flush)
            else:
                self._timer = loop.call_later(self.window_seconds, self._flush)
        return await asyncio.shield(future)

    def pending_count(self) -> int:
        """Queries admitted but not yet answered (pending + dispatched)."""
        return len(self._inflight)

    def stats(self) -> Dict[str, object]:
        return {
            "window_seconds": self.window_seconds,
            "max_batch": self.max_batch,
            "submitted": self.submitted,
            "deduped": self.deduped,
            "batches": self.batches,
            "batched": self.batched,
            "largest_batch": self.largest_batch,
            "record_failures": self.record_failures,
            "inflight": len(self._inflight),
        }

    async def drain(self) -> None:
        """Finish all admitted work without failing anyone (graceful stop).

        Where :meth:`close` *fails* queries still pending, drain flushes
        the batching window immediately and awaits every in-flight batch:
        the graceful-drain path stops admitting upstream, then calls this
        so already-accepted queries still get real answers.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Fail pending work and release the worker pool (idempotent)."""
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        for entry in pending:
            self._inflight.pop(entry.key, None)
            if not entry.future.done():
                entry.future.set_exception(CoalescerClosed("coalescer is shut down"))
        # Consume the exception for waiters that already gave up, so the
        # loop does not log "exception was never retrieved".
        for entry in pending:
            if entry.future.done() and not entry.future.cancelled():
                entry.future.exception()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        groups: Dict[object, List[_Pending]] = {}
        for entry in pending:
            groups.setdefault(evaluator_sharing_key(entry.instance), []).append(entry)
        loop = asyncio.get_running_loop()
        for entries in groups.values():
            self._batches.inc()
            self._batched.inc(len(entries))
            if len(entries) > self._largest_batch.value:
                self._largest_batch.set(len(entries))
            task = loop.create_task(self._run_group(entries))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_group(self, entries: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        instances = [entry.instance for entry in entries]
        try:
            verdicts, seconds = await loop.run_in_executor(
                self._executor, self._evaluate, instances
            )
        except Exception as error:  # noqa: BLE001 -- forwarded to every waiter
            for entry in entries:
                self._inflight.pop(entry.key, None)
                if not entry.future.done():
                    entry.future.set_exception(error)
            return
        if self._on_computed is not None:
            # The verdicts are valid whether or not recording them succeeds
            # (a full disk, a locked store): never let a callback failure
            # hang the waiters or poison their keys in the in-flight map.
            try:
                self._on_computed(
                    [(entry.key, entry.instance, entry.name) for entry in entries],
                    verdicts,
                    seconds,
                )
            except Exception:  # noqa: BLE001 -- counted, waiters still answered
                self._record_failures.inc()
        batch_size = len(entries)
        for entry, verdict, spent in zip(entries, verdicts, seconds):
            self._inflight.pop(entry.key, None)
            if not entry.future.done():
                entry.future.set_result(
                    CoalescedResult(
                        verdict=verdict,
                        seconds=spent,
                        deduped=False,
                        batch_size=batch_size,
                    )
                )
