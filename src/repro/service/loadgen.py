"""Closed-loop load generation against a running verdict daemon.

Each of ``clients`` worker threads owns one connection and issues the next
request the moment the previous response lands (closed loop: offered load
tracks service capacity, so the daemon is measured at saturation without
overload artifacts).  Requests are drawn round-robin from a shared payload
list until a total count or a deadline is reached.  The report carries
throughput, latency percentiles and the per-tier source mix -- the numbers
``BENCH_service.json`` records per PR.

Three standard workload shapes:

* :func:`scenario_payloads` -- queries into a registered scenario's
  instance list; repeated rounds hit the daemon's LRU (the *hot-cache*
  workload, or *cold-store* on a first pass against an empty store).
* :func:`inline_cycle_payloads` -- inline specs over a family of cycles
  (independent keys; exercises resolve + fingerprint + tiers end to end).
* :func:`interleave` -- a deterministic mix of the above.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import LATENCY_BUCKETS_MS, Histogram
from repro.service.client import Address, ServiceClient, ServiceError
from repro.service.resilience import RetryPolicy

Payload = Mapping[str, Any]


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def scenario_payloads(
    scenario: str, count: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Index queries covering the first *count* instances of *scenario*.

    The instance list is built locally (the registry is deterministic, so
    the daemon resolves the same list); *count* defaults to all of them.
    """
    from repro.sweep.scenarios import build_instances

    total = len(build_instances(scenario))
    if count is not None:
        total = min(total, count)
    return [
        {"v": 1, "op": "query", "scenario": scenario, "index": index}
        for index in range(total)
    ]


def inline_cycle_payloads(
    arbiter: str = "3-colorable",
    sizes: Sequence[int] = (4, 5, 6, 7, 8),
    scheme: str = "sequential",
) -> List[Dict[str, Any]]:
    """Inline-spec queries for *arbiter* on cycles of the given sizes."""
    return [
        {
            "v": 1,
            "op": "query",
            "spec": {"arbiter": arbiter, "family": "cycle", "n": n, "scheme": scheme},
        }
        for n in sizes
    ]


def interleave(*payload_lists: Sequence[Payload]) -> List[Payload]:
    """Round-robin merge of several payload lists (the *mixed* workload)."""
    merged: List[Payload] = []
    longest = max((len(payloads) for payloads in payload_lists), default=0)
    for position in range(longest):
        for payloads in payload_lists:
            if position < len(payloads):
                merged.append(payloads[position])
    return merged


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """The *fraction*-quantile of an ascending list (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What one closed-loop run measured."""

    label: str
    clients: int
    requests: int
    errors: int
    overloaded: int
    seconds: float
    sources: Dict[str, int] = field(default_factory=dict)
    error_codes: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    #: Responses answered without the store tier (breaker open / store sick).
    degraded: int = 0
    #: Requests the clients re-sent under the retry policy.
    retries: int = 0
    #: Samples that paid a reconnect or retry on the way to an answer.
    #: They are counted here instead of entering ``latencies_ms`` -- a
    #: re-established transport is availability, not service latency,
    #: and must not pollute p99.
    reconnects: int = 0
    #: The fault spec a chaos run injected, plus the daemon's view after.
    chaos: Optional[Dict[str, Any]] = None

    @property
    def qps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of answered queries served without fresh compute."""
        answered = sum(self.sources.values())
        cached = self.sources.get("lru", 0) + self.sources.get("store", 0)
        return cached / answered if answered else 0.0

    def latency_ms(self, fraction: float) -> float:
        return percentile(sorted(self.latencies_ms), fraction)

    def latency_histogram(self) -> Histogram:
        """The full latency distribution, rebuilt into fixed ms buckets.

        Exact-sample percentiles stay in ``latency_ms`` (the sorted list
        is authoritative); the histogram is the *shape* -- cumulative
        bucket counts a benchmark archive can diff across PRs without
        shipping every sample.
        """
        histogram = Histogram("loadgen_latency_ms", buckets=LATENCY_BUCKETS_MS)
        for value in self.latencies_ms:
            histogram.observe(value)
        return histogram

    def as_dict(self) -> Dict[str, Any]:
        ordered = sorted(self.latencies_ms)
        return {
            "label": self.label,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "overloaded": self.overloaded,
            "seconds": round(self.seconds, 6),
            "requests_per_second": round(self.qps, 2),
            "latency_ms": {
                "p50": round(percentile(ordered, 0.50), 4),
                "p90": round(percentile(ordered, 0.90), 4),
                "p99": round(percentile(ordered, 0.99), 4),
                "max": round(ordered[-1], 4) if ordered else 0.0,
            },
            "latency_histogram": self.latency_histogram().snapshot(),
            "sources": dict(self.sources),
            "error_codes": dict(self.error_codes),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "degraded": self.degraded,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "chaos": self.chaos,
        }


class _SharedCounter:
    """A lock-protected ticket dispenser shared by the worker threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def take(self) -> int:
        with self._lock:
            ticket = self._next
            self._next += 1
            return ticket


def run_load(
    address: Union[Address, str],
    payloads: Sequence[Payload],
    clients: int = 4,
    total: Optional[int] = None,
    duration: Optional[float] = None,
    label: str = "load",
    timeout: float = 30.0,
    retries: int = 0,
    chaos: Optional[str] = None,
) -> LoadReport:
    """Drive the daemon closed-loop and report throughput and latency.

    Stops after *total* requests, after *duration* seconds, or -- if neither
    is given -- after one pass over *payloads*.

    With ``retries > 0`` each worker retries retryable failures
    (``overloaded``, transport, timeout) that many extra times with
    exponential backoff.  With a *chaos* fault spec, the daemon's
    failpoints are armed over the admin op before traffic starts and
    cleared after; the report then carries the spec and the daemon's
    fired-fault counts.  Workers survive a dropped connection (the
    ``conn-drop`` failpoint, a restarted daemon): the error is counted
    and the worker reconnects for its next ticket instead of dying.
    """
    if not payloads:
        raise ValueError("payloads must be non-empty")
    if total is None and duration is None:
        total = len(payloads)

    tickets = _SharedCounter()
    deadline = None if duration is None else time.perf_counter() + duration
    results: List[Dict[str, Any]] = [
        {
            "requests": 0,
            "errors": 0,
            "overloaded": 0,
            "degraded": 0,
            "retries": 0,
            "reconnects": 0,
            "sources": {},
            "error_codes": {},
            "latencies": [],
        }
        for _ in range(clients)
    ]

    chaos_info: Optional[Dict[str, Any]] = None
    if chaos is not None:
        with ServiceClient(address, timeout=timeout) as admin:
            admin.set_faults(chaos)
        chaos_info = {"spec": chaos}

    def worker(slot: int) -> None:
        mine = results[slot]

        def count_error(code: str) -> None:
            mine["error_codes"][code] = mine["error_codes"].get(code, 0) + 1

        policy = (
            RetryPolicy(max_attempts=retries + 1, base_delay=0.02, max_delay=0.5)
            if retries > 0
            else None
        )
        client: Optional[ServiceClient] = None
        try:
            while True:
                if deadline is not None and time.perf_counter() >= deadline:
                    return
                ticket = tickets.take()
                if total is not None and ticket >= total:
                    return
                if client is None:
                    try:
                        client = ServiceClient(address, timeout=timeout, retry=policy)
                    except OSError:
                        mine["errors"] += 1
                        count_error("transport")
                        continue
                payload = payloads[ticket % len(payloads)]
                before_retries = client.retries
                before_reconnects = client.reconnects
                start = time.perf_counter()
                try:
                    response = client.request(payload)
                except ServiceError as error:
                    # Count it and reconnect for the next ticket -- a chaos
                    # run drops connections on purpose and the loadgen must
                    # outlive the daemon's faults.
                    mine["errors"] += 1
                    count_error(error.code)
                    mine["retries"] += client.retries
                    try:
                        client.close()
                    except OSError:
                        pass
                    client = None
                    continue
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                mine["requests"] += 1
                if (
                    client.reconnects != before_reconnects
                    or client.retries != before_retries
                ):
                    # The answer arrived, but only after a reconnect or a
                    # retry sleep: count it as a disturbed sample instead
                    # of letting transport recovery pollute the tail.
                    mine["reconnects"] += 1
                else:
                    mine["latencies"].append(elapsed_ms)
                if response.get("ok"):
                    source = response.get("source", "?")
                    mine["sources"][source] = mine["sources"].get(source, 0) + 1
                    if response.get("degraded"):
                        mine["degraded"] += 1
                else:
                    code = (response.get("error") or {}).get("code") or "unknown"
                    count_error(code)
                    if code == "overloaded":
                        mine["overloaded"] += 1
                    else:
                        mine["errors"] += 1
        finally:
            if client is not None:
                mine["retries"] += client.retries
                client.close()

    threads = [
        threading.Thread(target=worker, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    if chaos is not None and chaos_info is not None:
        try:
            with ServiceClient(address, timeout=timeout) as admin:
                chaos_info["fired"] = admin.faults().get("fired", {})
                admin.clear_faults()
        except (OSError, ServiceError):
            chaos_info["fired"] = None

    report = LoadReport(
        label=label,
        clients=clients,
        requests=sum(r["requests"] for r in results),
        errors=sum(r["errors"] for r in results),
        overloaded=sum(r["overloaded"] for r in results),
        seconds=elapsed,
        degraded=sum(r["degraded"] for r in results),
        retries=sum(r["retries"] for r in results),
        reconnects=sum(r["reconnects"] for r in results),
        chaos=chaos_info,
    )
    for r in results:
        for source, count in r["sources"].items():
            report.sources[source] = report.sources.get(source, 0) + count
        for code, count in r["error_codes"].items():
            report.error_codes[code] = report.error_codes.get(code, 0) + count
        report.latencies_ms.extend(r["latencies"])
    return report
