"""A small synchronous client for the verdict daemon (tests, scripts, CLI).

One client wraps one connection; it is not thread-safe -- give each thread
its own (the load generator does exactly that).  Addresses come in two
spellings, shared with the CLI:

* ``host:port`` or ``:port`` (TCP; bare port implies 127.0.0.1),
* ``unix:/path/to.sock`` (UNIX domain socket).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.service.protocol import (
    MutateRequest,
    PingRequest,
    QueryRequest,
    Request,
    StatsRequest,
    encode_request,
    parse_response,
)

#: ("tcp", host, port) or ("unix", path).
Address = Tuple[Any, ...]

DEFAULT_PORT = 7464


class ServiceError(Exception):
    """A failed request: transport trouble or an error response.

    ``code`` is the protocol error code when the server answered with one
    (``overloaded``, ``unknown-scenario``, ...) and ``"transport"`` for
    connection-level failures.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def parse_address(text: str) -> Address:
    """Parse a ``host:port`` / ``:port`` / ``unix:PATH`` endpoint spelling."""
    if text.startswith("unix:"):
        path = text[len("unix:") :]
        if not path:
            raise ValueError("unix address needs a path: unix:/path/to.sock")
        return ("unix", path)
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ValueError(f"address {text!r} is neither host:port nor unix:PATH")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in address {text!r}") from None
    return ("tcp", host or "127.0.0.1", port)


def format_address(address: Address) -> str:
    if address[0] == "unix":
        return f"unix:{address[1]}"
    return f"{address[1]}:{address[2]}"


class ServiceClient:
    """One connection to the daemon, speaking JSON lines synchronously."""

    def __init__(
        self, address: Union[Address, str], timeout: Optional[float] = 30.0
    ) -> None:
        self.address: Address = (
            parse_address(address) if isinstance(address, str) else address
        )
        self.timeout = timeout
        self._next_id = 0
        if self.address[0] == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(self.address[1])
        else:
            self._sock = socket.create_connection(
                (self.address[1], self.address[2]), timeout=timeout
            )
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def request(self, request: Union[Request, Mapping[str, Any]]) -> Dict[str, Any]:
        """Send one request, return the raw (possibly ``ok: false``) response."""
        if isinstance(request, Mapping):
            import json

            line = json.dumps(dict(request), sort_keys=True, separators=(",", ":"))
        else:
            line = encode_request(request)
        try:
            self._sock.sendall(line.encode("utf-8") + b"\n")
            answer = self._reader.readline()
        except OSError as error:
            raise ServiceError("transport", f"request failed: {error}") from None
        if not answer:
            raise ServiceError("transport", "server closed the connection")
        return parse_response(answer.decode("utf-8"))

    def _checked(self, response: Dict[str, Any], check: bool) -> Dict[str, Any]:
        if check and not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "internal"), error.get("message", "request failed")
            )
        return response

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # ------------------------------------------------------------------
    def query_scenario(
        self,
        scenario: str,
        instance: Optional[str] = None,
        index: Optional[int] = None,
        check: bool = True,
    ) -> Dict[str, Any]:
        request = QueryRequest(
            id=self._take_id(), scenario=scenario, instance=instance, index=index
        )
        return self._checked(self.request(request), check)

    def query_spec(self, check: bool = True, **spec: Any) -> Dict[str, Any]:
        request = QueryRequest(id=self._take_id(), spec=spec)
        return self._checked(self.request(request), check)

    def query_session(self, session: str, check: bool = True) -> Dict[str, Any]:
        """The verdict for a dynamic session's *current* (mutated) state."""
        request = QueryRequest(id=self._take_id(), session=session)
        return self._checked(self.request(request), check)

    def mutate(
        self,
        session: str,
        deltas: Any = (),
        scenario: Optional[str] = None,
        instance: Optional[str] = None,
        index: Optional[int] = None,
        spec: Optional[Mapping[str, Any]] = None,
        check: bool = True,
    ) -> Dict[str, Any]:
        """Stream a delta batch into a dynamic session (opening it if new).

        The first mutate for a session name must carry ``scenario`` or
        ``spec`` addressing; *deltas* are wire objects (dicts addressing
        nodes by index) -- use
        :func:`repro.engine.dynamic.delta_to_wire` to encode typed deltas.
        """
        request = MutateRequest(
            id=self._take_id(),
            session=session,
            deltas=tuple(dict(delta) for delta in deltas),
            scenario=scenario,
            instance=instance,
            index=index,
            spec=spec,
        )
        return self._checked(self.request(request), check)

    def stats(self) -> Dict[str, Any]:
        response = self._checked(self.request(StatsRequest(id=self._take_id())), True)
        return response["stats"]

    def ping(self) -> bool:
        response = self._checked(self.request(PingRequest(id=self._take_id())), True)
        return bool(response.get("pong"))

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
