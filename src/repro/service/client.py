"""A small synchronous client for the verdict daemon (tests, scripts, CLI).

One client wraps one connection; it is not thread-safe -- give each thread
its own (the load generator does exactly that).  Addresses come in two
spellings, shared with the CLI:

* ``host:port`` or ``:port`` (TCP; bare port implies 127.0.0.1),
* ``unix:/path/to.sock`` (UNIX domain socket).

Failures are typed: a reply that never arrives inside the socket timeout
raises ``ServiceError("timeout", ...)``, connection-level trouble raises
``ServiceError("transport", ...)``, and an ``ok: false`` response raises
with the server's own error code.  Hand the constructor a
:class:`~repro.service.resilience.RetryPolicy` and the client retries
retryable failures (``overloaded``, ``transport``, ``timeout``) with
exponential backoff -- reconnecting first when the connection broke.
Mutates are only retried when they carry an idempotency token (one is
generated automatically when a policy is set), because the server dedupes
on the token: a retry of a batch that already applied reports the
remembered outcome instead of applying it twice.
"""

from __future__ import annotations

import socket
import uuid
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.service.protocol import (
    AdminRequest,
    MutateRequest,
    PingRequest,
    QueryRequest,
    Request,
    StatsRequest,
    encode_request,
    parse_response,
)
from repro.service.resilience import RetryPolicy

#: ("tcp", host, port) or ("unix", path).
Address = Tuple[Any, ...]

DEFAULT_PORT = 7464


class ServiceError(Exception):
    """A failed request: transport trouble or an error response.

    ``code`` is the protocol error code when the server answered with one
    (``overloaded``, ``unknown-scenario``, ...), ``"timeout"`` when the
    socket timed out waiting, and ``"transport"`` for other
    connection-level failures.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def parse_address(text: str) -> Address:
    """Parse a ``host:port`` / ``:port`` / ``unix:PATH`` endpoint spelling."""
    if text.startswith("unix:"):
        path = text[len("unix:") :]
        if not path:
            raise ValueError("unix address needs a path: unix:/path/to.sock")
        return ("unix", path)
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ValueError(f"address {text!r} is neither host:port nor unix:PATH")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in address {text!r}") from None
    return ("tcp", host or "127.0.0.1", port)


def format_address(address: Address) -> str:
    if address[0] == "unix":
        return f"unix:{address[1]}"
    return f"{address[1]}:{address[2]}"


class ServiceClient:
    """One connection to the daemon, speaking JSON lines synchronously."""

    def __init__(
        self,
        address: Union[Address, str],
        timeout: Optional[float] = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.address: Address = (
            parse_address(address) if isinstance(address, str) else address
        )
        self.timeout = timeout
        self.retry = retry
        #: Requests re-sent by the retry policy (for reports and tests).
        self.retries = 0
        #: Transport re-establishments after a broken connection.  Load
        #: reports count these separately: a sample that paid a reconnect
        #: is not a service latency and must not pollute p99.
        self.reconnects = 0
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._closed = False
        self._connect()

    def _connect(self) -> None:
        if self.address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.address[1])
            except OSError:
                sock.close()
                raise
        else:
            sock = socket.create_connection(
                (self.address[1], self.address[2]), timeout=self.timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _teardown(self) -> None:
        """Drop a (possibly broken) connection; the next send reconnects."""
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for closable in (reader, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def _send_once(self, line: str) -> Dict[str, Any]:
        if self._closed:
            raise ServiceError("transport", "client is closed")
        if self._sock is None:
            try:
                self._connect()
            except OSError as error:
                raise ServiceError("transport", f"reconnect failed: {error}") from None
            self.reconnects += 1
        try:
            self._sock.sendall(line.encode("utf-8") + b"\n")
            answer = self._reader.readline()
        except socket.timeout as error:
            # socket.timeout is an OSError: catch it first so a server
            # that is *slow* is distinguishable from one that is *gone*.
            self._teardown()
            raise ServiceError(
                "timeout", f"no reply within {self.timeout}s: {error}"
            ) from None
        except OSError as error:
            self._teardown()
            raise ServiceError("transport", f"request failed: {error}") from None
        if not answer:
            self._teardown()
            raise ServiceError("transport", "server closed the connection")
        return parse_response(answer.decode("utf-8"))

    def request(
        self,
        request: Union[Request, Mapping[str, Any]],
        idempotent: bool = True,
    ) -> Dict[str, Any]:
        """Send one request, return the raw (possibly ``ok: false``) response.

        With a retry policy set and *idempotent* true, retryable failures
        (``overloaded`` responses, transport errors, timeouts) are retried
        with backoff; the connection is re-established when it broke.
        """
        if isinstance(request, Mapping):
            import json

            line = json.dumps(dict(request), sort_keys=True, separators=(",", ":"))
        else:
            line = encode_request(request)
        policy = self.retry if idempotent else None
        if policy is None:
            return self._send_once(line)
        started = policy.clock()
        attempt = 0
        while True:
            try:
                response = self._send_once(line)
            except ServiceError as error:
                if not policy.retryable(error.code) or not policy.may_retry(
                    attempt, started
                ):
                    raise
                policy.sleep_for(attempt, started)
                attempt += 1
                self.retries += 1
                continue
            if not response.get("ok"):
                code = (response.get("error") or {}).get("code", "")
                if policy.retryable(code) and policy.may_retry(attempt, started):
                    policy.sleep_for(attempt, started)
                    attempt += 1
                    self.retries += 1
                    continue
            return response

    def _checked(self, response: Dict[str, Any], check: bool) -> Dict[str, Any]:
        if check and not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "internal"), error.get("message", "request failed")
            )
        return response

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # ------------------------------------------------------------------
    def query_scenario(
        self,
        scenario: str,
        instance: Optional[str] = None,
        index: Optional[int] = None,
        check: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        request = QueryRequest(
            id=self._take_id(),
            scenario=scenario,
            instance=instance,
            index=index,
            deadline_ms=deadline_ms,
        )
        return self._checked(self.request(request), check)

    def query_spec(self, check: bool = True, **spec: Any) -> Dict[str, Any]:
        request = QueryRequest(id=self._take_id(), spec=spec)
        return self._checked(self.request(request), check)

    def query_session(
        self,
        session: str,
        check: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The verdict for a dynamic session's *current* (mutated) state."""
        request = QueryRequest(
            id=self._take_id(), session=session, deadline_ms=deadline_ms
        )
        return self._checked(self.request(request), check)

    def mutate(
        self,
        session: str,
        deltas: Any = (),
        scenario: Optional[str] = None,
        instance: Optional[str] = None,
        index: Optional[int] = None,
        spec: Optional[Mapping[str, Any]] = None,
        check: bool = True,
        token: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Stream a delta batch into a dynamic session (opening it if new).

        The first mutate for a session name must carry ``scenario`` or
        ``spec`` addressing; *deltas* are wire objects (dicts addressing
        nodes by index) -- use
        :func:`repro.engine.dynamic.delta_to_wire` to encode typed deltas.

        *token* is an idempotency token: the server remembers the outcome
        per token, so a retried mutate never applies twice.  When a retry
        policy is set and no token is given, one is generated -- mutates
        are only ever retried under a token.
        """
        if token is None and self.retry is not None:
            token = uuid.uuid4().hex
        request = MutateRequest(
            id=self._take_id(),
            session=session,
            deltas=tuple(dict(delta) for delta in deltas),
            scenario=scenario,
            instance=instance,
            index=index,
            spec=spec,
            token=token,
            deadline_ms=deadline_ms,
        )
        return self._checked(self.request(request, idempotent=token is not None), check)

    def stats(self) -> Dict[str, Any]:
        response = self._checked(self.request(StatsRequest(id=self._take_id())), True)
        return response["stats"]

    def ping(self) -> bool:
        response = self._checked(self.request(PingRequest(id=self._take_id())), True)
        return bool(response.get("pong"))

    # ------------------------------------------------------------------
    def admin(self, action: str = "faults", spec: Optional[str] = None) -> Dict[str, Any]:
        """One ``admin`` request; returns the daemon's active-faults view."""
        request = AdminRequest(id=self._take_id(), action=action, spec=spec)
        return self._checked(self.request(request), True)

    def faults(self) -> Dict[str, Any]:
        """The daemon's current fault-injection state."""
        return self.admin("faults")["faults"]

    def set_faults(self, spec: str) -> Dict[str, Any]:
        """Configure failpoints on the live daemon from a ``--faults`` spec."""
        return self.admin("set-faults", spec=spec)["faults"]

    def clear_faults(self) -> Dict[str, Any]:
        """Disarm every failpoint on the live daemon."""
        return self.admin("clear-faults")["faults"]

    def profile_start(self, hz: Optional[float] = None) -> Dict[str, Any]:
        """Begin continuous stack sampling on the daemon (status returned)."""
        spec = None if hz is None else str(hz)
        return self.admin("profile-start", spec=spec)["profile"]

    def profile_stop(self) -> Dict[str, Any]:
        """Stop the daemon's sampling profiler (its aggregate stays readable)."""
        return self.admin("profile-stop")["profile"]

    def profile_snapshot(self) -> Dict[str, Any]:
        """The profiler's aggregate: folded stacks plus top-N frames."""
        return self.admin("profile-snapshot")["profile"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the connection; safe to call twice or after a break."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
