"""Supervised multi-worker serving: a crash-recovering pool behind one router.

``repro serve --workers N`` turns the single-process daemon into a small
replicated deployment on one machine:

* The **supervisor** (this module) forks N worker processes, each running
  the existing :class:`~repro.service.server.VerdictServer` unchanged on
  its own UNIX socket, all sharing one WAL SQLite verdict store.
* A **front router** listens on the public address and forwards each
  request line to the worker that owns its *fingerprint routing key* --
  a stable hash of the request's addressing fields (scenario+instance,
  canonical spec, or session name).  Identical queries always land on the
  same worker, so in-flight coalescing keeps collapsing duplicates into
  one compute even though the pool has N processes.
* Dynamic **sessions are sticky**: a session lives in exactly one
  worker's memory (its journal is in the shared store), so session-
  addressed requests are never failed over to a sibling -- while the
  owner restarts they get the retryable ``unavailable`` error and the
  journal replay restores the session before the owner rejoins.

Robustness model (the reason this module exists):

* **Health probes**: the supervisor pings each worker and polls its
  ``stats`` on an interval, recording the store ``log_seq`` each worker
  has seen.  A worker that exits, stops answering, or goes stale is
  declared dead.
* **Crash restart**: dead workers are respawned with exponential backoff
  (capped), and the backoff resets once a worker stays up.
* **Failover**: while a worker is down, its key range is re-routed to
  the next live sibling in ring order (reads only -- any warm replica
  can serve reads because the store is shared).  A forward that fails
  mid-flight is retried on a sibling for idempotent queries; everything
  else gets a typed, *retryable* ``unavailable`` error so the retrying
  client rides out the restart without a visible failure.
* **Catch-up on (re)join**: before accepting traffic a (re)started
  worker replays the store's append log (``entries_since``) from the
  sequence the supervisor last saw it at -- the pod-style accountable-log
  catch-up -- and reports the replay in its stats; the supervisor only
  routes to it after its readiness probe succeeds, i.e. after catch-up.
* **Rolling drain**: SIGTERM and SIGINT both drain the pool one worker
  at a time (SIGTERM per worker, bounded wait, then SIGKILL stragglers),
  after the router has stopped accepting connections.
"""

from __future__ import annotations

import asyncio
import copy
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import SamplingProfiler
from repro.obs.trace import TraceLog
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_response,
    error_response,
    pong_response,
    stats_response,
)
from repro.service.server import MAX_LINE_BYTES, Address
from repro.sweep.store import VerdictStore, open_store

_log = get_logger("repro.pool")


@dataclass
class PoolConfig:
    """Tuning knobs of the supervisor."""

    workers: int = 2
    #: Seconds between health probes of each worker.
    probe_interval: float = 0.5
    #: Per-probe timeout (ping or stats answer).
    probe_timeout: float = 2.0
    #: A worker whose last successful probe is older than this is dead.
    stale_seconds: float = 5.0
    #: First restart backoff; doubles per consecutive crash, capped below.
    restart_backoff: float = 0.25
    restart_backoff_cap: float = 5.0
    #: Seconds a restarting worker gets to become ready (catch-up included).
    ready_timeout: float = 30.0
    #: Per-forward timeout (worker answer).
    forward_timeout: float = 30.0
    #: Per-worker graceful-drain budget during the rolling shutdown.
    drain_seconds: float = 5.0
    #: Extra sibling attempts for an idempotent query whose forward failed.
    failover_attempts: int = 2


def routing_key(body: Dict[str, Any]) -> str:
    """The fingerprint routing key of one request body.

    Derived from the request's *addressing* fields only -- the same fields
    the resolver digests into the content-addressed instance key -- so it
    is deterministic per logical query without compiling anything.  All
    requests for one key hash to one worker, which keeps the per-worker
    LRU and the coalescer as effective as in the single-process daemon.
    """
    session = body.get("session")
    if session:
        return f"session:{session}"
    spec = body.get("spec")
    if isinstance(spec, dict):
        return "spec:" + json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return "scenario:{}:{}:{}".format(
        body.get("scenario"), body.get("instance"), body.get("index")
    )


def _slot(key: str, size: int) -> int:
    """A stable hash slot (process-independent, unlike built-in ``hash``)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % size


class WorkerHandle:
    """One supervised worker process and the router's view of it."""

    def __init__(self, worker_id: int, socket_path: str) -> None:
        self.id = worker_id
        self.socket_path = socket_path
        self.process: Optional[subprocess.Popen] = None
        #: "starting" | "serving" | "restarting" | "stopped"
        self.state = "starting"
        self.restarts = 0
        #: Consecutive crashes since the worker last stayed up (backoff).
        self.crash_streak = 0
        #: Newest store ``log_seq`` this worker reported (probe-fed).
        self.last_seq = 0
        #: The worker's last full ``stats`` body (probe-fed).
        self.last_stats: Dict[str, Any] = {}
        self.last_ok_monotonic: Optional[float] = None
        self.serving_since: Optional[float] = None
        #: Pooled idle upstream connections: [(reader, writer), ...].
        self.idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def catch_up(self) -> Optional[Dict[str, Any]]:
        worker = self.last_stats.get("worker") or {}
        return worker.get("catch_up")

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "pid": self.pid,
            "state": self.state,
            "restarts": self.restarts,
            "last_seq": self.last_seq,
            "catch_up": self.catch_up(),
            "address": self.socket_path,
        }

    def close_idle(self) -> None:
        for _reader, writer in self.idle:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 -- already broken is fine
                pass
        self.idle.clear()


def _merge_values(a: Any, b: Any) -> Any:
    """Merge two stats values: dicts recurse, numbers add, bools OR."""
    if isinstance(a, dict) and isinstance(b, dict):
        merged = dict(a)
        for key, value in b.items():
            merged[key] = _merge_values(merged[key], value) if key in merged else value
        return merged
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) or bool(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a + b
    return a if a is not None else b


def _merge_latency(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-op histogram snapshots across workers.

    Counts, sums and buckets add exactly (all workers share the bucket
    bounds); percentiles cannot be added, so the pool reports the *worst*
    worker's percentile -- a conservative bound that is what an operator
    watching a pool wants anyway.
    """
    merged: Dict[str, Any] = {}
    ops = {op for snap in snapshots for op in snap}
    for op in sorted(ops):
        entries = [snap[op] for snap in snapshots if op in snap]
        mins = [e["min"] for e in entries if e.get("min") is not None]
        maxs = [e["max"] for e in entries if e.get("max") is not None]
        buckets: List[List[Any]] = []
        for entry in entries:
            for index, (bound, cumulative) in enumerate(entry.get("buckets", [])):
                if index < len(buckets):
                    buckets[index][1] += cumulative
                else:
                    buckets.append([bound, cumulative])
        merged[op] = {
            "count": sum(e.get("count", 0) for e in entries),
            "sum": round(sum(e.get("sum", 0.0) for e in entries), 6),
            "min": min(mins) if mins else None,
            "max": max(maxs) if maxs else None,
            "p50": max(e.get("p50", 0.0) for e in entries),
            "p95": max(e.get("p95", 0.0) for e in entries),
            "p99": max(e.get("p99", 0.0) for e in entries),
            "buckets": buckets,
        }
    return merged


class WorkerPool:
    """The supervisor: N worker daemons, one router, one health loop.

    Duck-types enough of :class:`VerdictService` (``stats``, ``healthz``,
    ``registry``, ``store``, ``sessions``, ``traces``, ``profiler``,
    ``resolver``) that the HTTP operations console serves a pool view
    unchanged.
    """

    def __init__(
        self,
        store: str,
        config: Optional[PoolConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        worker_args: Optional[List[str]] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.config = config or PoolConfig()
        if self.config.workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.store_path = store
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.worker_args = list(worker_args or [])
        self._owns_state_dir = state_dir is None
        self.state_dir = state_dir or tempfile.mkdtemp(prefix="repro-pool-")
        self.address: Optional[Address] = None
        self.draining = False
        self.started_at = time.time()
        self._monotonic_start = time.perf_counter()
        self.workers = [
            WorkerHandle(i, os.path.join(self.state_dir, f"worker-{i}.sock"))
            for i in range(self.config.workers)
        ]
        self._server: Optional[asyncio.AbstractServer] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._restart_tasks: Dict[int, asyncio.Task] = {}
        self._connections: set = set()

        # -- console facade (the ops console binds to this object) -------
        self.registry = MetricsRegistry()
        self.traces = TraceLog(capacity=16)
        self.profiler = SamplingProfiler()
        self.sessions: Dict[str, Any] = {}
        self._resolver = None
        #: A read-only handle on the shared store for the console's browse
        #: pages (opened lazily; workers own the write path).
        self.store: Optional[VerdictStore] = None
        self._up_gauges = {
            w.id: self.registry.gauge(
                "repro_pool_worker_up",
                labels={"worker": str(w.id)},
                help="1 while the worker is serving",
            )
            for w in self.workers
        }
        self._restart_counters = {
            w.id: self.registry.counter(
                "repro_pool_restarts_total",
                labels={"worker": str(w.id)},
                help="times the supervisor restarted this worker",
            )
            for w in self.workers
        }
        self._forwarded = {
            w.id: self.registry.counter(
                "repro_pool_forwarded_total",
                labels={"worker": str(w.id)},
                help="requests the router forwarded to this worker",
            )
            for w in self.workers
        }
        self._forward_retries = self.registry.counter(
            "repro_pool_forward_retries_total",
            help="forwards retried on a sibling after a worker failure",
        )
        self._unrouted = self.registry.counter(
            "repro_pool_unavailable_total",
            help="requests answered 'unavailable' (no live worker for the key)",
        )
        self.events = self.registry.events(
            "repro_pool", capacity=256, help="supervisor events"
        )

    # -- console facade -------------------------------------------------
    @property
    def resolver(self):
        from repro.service.resolver import Resolver

        if self._resolver is None:
            self._resolver = Resolver()
        return self._resolver

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Address:
        if not self.store_path.startswith("sqlite://"):
            _log.warning(
                "pool-store-not-sqlite",
                store=self.store_path,
                hint="workers share appends through the store; use sqlite:// for a pool",
            )
        try:
            self.store = open_store(self.store_path)
        except Exception as error:  # noqa: BLE001 -- console browse is optional
            _log.warning("pool-store-open-failed", error=repr(error))
            self.store = None
        await asyncio.gather(
            *(self._launch(worker, catch_up_from=0) for worker in self.workers)
        )
        self._probe_task = asyncio.ensure_future(self._probe_loop())
        if self.socket_path is not None:
            parent = os.path.dirname(os.path.abspath(self.socket_path))
            os.makedirs(parent, exist_ok=True)
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path, limit=MAX_LINE_BYTES
            )
            self.address = ("unix", self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = ("tcp", self.host, port)
        _log.info(
            "pool-started",
            workers=len(self.workers),
            address=self.address,
            store=self.store_path,
        )
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Rolling graceful shutdown: stop accepting, drain worker by worker."""
        self.draining = True
        self.events.append("pool-drain-begin")
        _log.info("pool-drain-begin")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._probe_task is not None:
            self._probe_task.cancel()
            await asyncio.gather(self._probe_task, return_exceptions=True)
            self._probe_task = None
        for task in list(self._restart_tasks.values()):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(
                *self._restart_tasks.values(), return_exceptions=True
            )
            self._restart_tasks.clear()
        for worker in self.workers:
            await self._drain_worker(worker)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.store is not None:
            self.store.close()
            self.store = None
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        if self._owns_state_dir:
            shutil.rmtree(self.state_dir, ignore_errors=True)
        self.events.append("pool-drain-end")
        _log.info("pool-drain-end")

    async def _drain_worker(self, worker: WorkerHandle) -> None:
        """One step of the rolling drain: SIGTERM, bounded wait, SIGKILL."""
        worker.state = "stopped"
        self._up_gauges[worker.id].set(0)
        worker.close_idle()
        process = worker.process
        if process is None or process.poll() is not None:
            return
        try:
            process.terminate()
        except OSError:
            return
        deadline = time.monotonic() + max(0.1, self.config.drain_seconds)
        while process.poll() is None and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if process.poll() is None:
            _log.warning("pool-worker-kill", worker=worker.id, pid=process.pid)
            process.kill()
            while process.poll() is None:
                await asyncio.sleep(0.05)
        _log.info("pool-worker-stopped", worker=worker.id)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker: WorkerHandle, catch_up_from: int) -> None:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            worker.socket_path,
            "--store",
            self.store_path,
            "--worker-id",
            str(worker.id),
            "--catch-up-from",
            str(max(0, catch_up_from)),
            *self.worker_args,
        ]
        env = dict(os.environ)
        # The workers must import this very package, wherever it lives.
        src_dir = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        worker.process = subprocess.Popen(cmd, env=env)
        worker.state = "starting"
        _log.info(
            "pool-worker-spawned",
            worker=worker.id,
            pid=worker.process.pid,
            catch_up_from=catch_up_from,
        )

    async def _launch(self, worker: WorkerHandle, catch_up_from: int) -> None:
        """Spawn one worker and wait until it is ready (= caught up)."""
        if os.path.exists(worker.socket_path):
            os.unlink(worker.socket_path)
        self._spawn(worker, catch_up_from)
        deadline = time.monotonic() + self.config.ready_timeout
        while time.monotonic() < deadline:
            process = worker.process
            if process is not None and process.poll() is not None:
                raise RuntimeError(
                    f"worker {worker.id} exited with {process.returncode} during startup"
                )
            if os.path.exists(worker.socket_path):
                try:
                    await self._probe_worker(worker)
                except Exception:  # noqa: BLE001 -- not ready yet
                    pass
                else:
                    worker.state = "serving"
                    worker.serving_since = time.monotonic()
                    self._up_gauges[worker.id].set(1)
                    catch_up = worker.catch_up() or {}
                    self.events.append(
                        "pool-worker-ready",
                        worker=worker.id,
                        replayed=catch_up.get("replayed"),
                    )
                    _log.info(
                        "pool-worker-ready",
                        worker=worker.id,
                        pid=worker.pid,
                        log_seq=worker.last_seq,
                        replayed=catch_up.get("replayed"),
                    )
                    return
            await asyncio.sleep(0.05)
        raise RuntimeError(f"worker {worker.id} not ready in {self.config.ready_timeout}s")

    async def _probe_worker(self, worker: WorkerHandle) -> None:
        """One health probe: fetch stats over a fresh line, record log_seq."""
        request = json.dumps({"v": PROTOCOL_VERSION, "op": "stats", "id": "probe"})
        raw = await asyncio.wait_for(
            self._forward(worker, request.encode("utf-8") + b"\n", count=False),
            timeout=self.config.probe_timeout,
        )
        body = json.loads(raw)
        if not body.get("ok"):
            raise RuntimeError(f"stats probe failed: {body!r}")
        stats = body.get("stats") or {}
        worker.last_stats = stats
        worker_block = stats.get("worker") or {}
        worker.last_seq = int(worker_block.get("log_seq") or 0)
        worker.last_ok_monotonic = time.monotonic()

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval)
            for worker in self.workers:
                if worker.state != "serving":
                    continue
                process = worker.process
                if process is not None and process.poll() is not None:
                    self._declare_dead(worker, f"exited with {process.returncode}")
                    continue
                try:
                    await self._probe_worker(worker)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 -- probe judged below
                    last_ok = worker.last_ok_monotonic or 0.0
                    stale = time.monotonic() - last_ok
                    if stale >= self.config.stale_seconds:
                        self._declare_dead(
                            worker, f"stats stale for {stale:.1f}s ({error!r})"
                        )
                else:
                    # A full probe interval without a crash resets the
                    # exponential backoff for the *next* incident.
                    worker.crash_streak = 0

    def _declare_dead(self, worker: WorkerHandle, reason: str) -> None:
        if worker.state != "serving":
            return
        worker.state = "restarting"
        worker.close_idle()
        self._up_gauges[worker.id].set(0)
        self.events.append("pool-worker-dead", worker=worker.id, reason=reason)
        _log.warning(
            "pool-worker-dead",
            worker=worker.id,
            pid=worker.pid,
            reason=reason,
            last_seq=worker.last_seq,
        )
        if self.draining:
            return
        task = asyncio.ensure_future(self._restart(worker))
        self._restart_tasks[worker.id] = task
        task.add_done_callback(
            lambda _t, wid=worker.id: self._restart_tasks.pop(wid, None)
        )

    async def _restart(self, worker: WorkerHandle) -> None:
        """Exponential-backoff restart until the worker is serving again."""
        while not self.draining:
            backoff = min(
                self.config.restart_backoff_cap,
                self.config.restart_backoff * (2 ** worker.crash_streak),
            )
            worker.crash_streak += 1
            await asyncio.sleep(backoff)
            process = worker.process
            if process is not None and process.poll() is None:
                # Probe said dead but the process lingers (hung loop):
                # take it down before respawning on the same socket.
                process.kill()
                process.wait()
            try:
                # The worker's warm state died with it; catch up from its
                # last-seen sequence, which recovers everything appended
                # while it was down (siblings kept writing the shared log).
                await self._launch(worker, catch_up_from=worker.last_seq)
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 -- keep trying
                _log.error(
                    "pool-worker-restart-failed", worker=worker.id, error=repr(error)
                )
                continue
            worker.restarts += 1
            self._restart_counters[worker.id].inc()
            self.events.append(
                "pool-worker-restarted", worker=worker.id, restarts=worker.restarts
            )
            return

    # ------------------------------------------------------------------
    # router
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    answer = error_response(None, "bad-request", "request line too long")
                    writer.write(encode_response(answer).encode("utf-8") + b"\n")
                    await writer.drain()
                    return
                if not line:
                    return
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                writer.write(response + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def _dispatch(self, line: bytes) -> bytes:
        try:
            body = json.loads(line)
            if not isinstance(body, dict):
                raise ValueError("not an object")
        except ValueError:
            return encode_response(
                error_response(None, "bad-json", "request is not a JSON object")
            ).encode("utf-8")
        op = body.get("op")
        request_id = body.get("id")
        if op == "ping":
            return encode_response(pong_response(request_id)).encode("utf-8")
        if op == "stats":
            return encode_response(
                stats_response(request_id, self.stats())
            ).encode("utf-8")
        if op == "admin":
            return await self._broadcast_admin(line, request_id)
        return await self._route(body, line)

    async def _broadcast_admin(self, line: bytes, request_id: Any) -> bytes:
        """Admin ops (faults, profiling) fan out to every live worker."""
        serving = [w for w in self.workers if w.state == "serving"]
        if not serving:
            return encode_response(
                error_response(request_id, "unavailable", "no live workers")
            ).encode("utf-8")
        answers = await asyncio.gather(
            *(self._forward(worker, bytes(line)) for worker in serving),
            return_exceptions=True,
        )
        merged: Optional[Dict[str, Any]] = None
        for answer in answers:
            if isinstance(answer, BaseException):
                continue
            body = json.loads(answer)
            merged = body if merged is None else _merge_values(merged, body)
        if merged is None:
            return encode_response(
                error_response(request_id, "unavailable", "no worker answered")
            ).encode("utf-8")
        merged["id"] = request_id
        merged["v"] = PROTOCOL_VERSION
        return encode_response(merged).encode("utf-8")

    def _candidates(self, key: str, sticky: bool) -> List[WorkerHandle]:
        """Owner first, then live siblings in ring order (unless sticky)."""
        size = len(self.workers)
        slot = _slot(key, size)
        ring = [self.workers[(slot + k) % size] for k in range(size)]
        if sticky:
            owner = ring[0]
            return [owner] if owner.state == "serving" else []
        live = [w for w in ring if w.state == "serving"]
        return live[: 1 + max(0, self.config.failover_attempts)]

    async def _route(self, body: Dict[str, Any], line: bytes) -> bytes:
        key = routing_key(body)
        # Sessions are sticky: their mutable state lives in one worker.
        sticky = bool(body.get("session"))
        candidates = self._candidates(key, sticky)
        for attempt, worker in enumerate(candidates):
            if attempt > 0:
                self._forward_retries.inc()
            try:
                return await asyncio.wait_for(
                    self._forward(worker, bytes(line)),
                    timeout=self.config.forward_timeout,
                )
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 -- try a sibling
                self._note_forward_failure(worker, error)
                if body.get("op") == "mutate":
                    # A mutate may have half-applied; never replay it on a
                    # sibling.  The client's token makes *its* retry safe.
                    break
        self._unrouted.inc()
        return encode_response(
            error_response(
                body.get("id"),
                "unavailable",
                f"no live worker for key {key!r}; retry shortly",
            )
        ).encode("utf-8")

    def _note_forward_failure(self, worker: WorkerHandle, error: Exception) -> None:
        """A failed forward is a health signal; don't wait for the prober."""
        worker.close_idle()
        process = worker.process
        if process is not None and process.poll() is not None:
            self._declare_dead(worker, f"exited with {process.returncode}")
        else:
            _log.warning(
                "pool-forward-failed", worker=worker.id, error=repr(error)
            )

    async def _forward(
        self, worker: WorkerHandle, line: bytes, count: bool = True
    ) -> bytes:
        """Send one request line to *worker*, return its response line."""
        if worker.idle:
            reader, writer = worker.idle.pop()
        else:
            reader, writer = await asyncio.open_unix_connection(
                worker.socket_path, limit=MAX_LINE_BYTES
            )
        try:
            if not line.endswith(b"\n"):
                line += b"\n"
            writer.write(line)
            await writer.drain()
            answer = await reader.readline()
            if not answer:
                raise ConnectionResetError("worker closed the connection")
        except BaseException:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass
            raise
        if len(worker.idle) < 16:
            worker.idle.append((reader, writer))
        else:
            writer.close()
        if count:
            self._forwarded[worker.id].inc()
        return answer.rstrip(b"\n")

    # ------------------------------------------------------------------
    # observability (stats / healthz, consumed by console + repro top)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregated pool stats: summed worker counters + a ``pool`` block.

        Worker bodies come from the health prober's last poll (at most one
        probe interval old), so this is cheap and safe to call from the
        synchronous console path.
        """
        bodies = [copy.deepcopy(w.last_stats) for w in self.workers if w.last_stats]
        latency = _merge_latency(
            [body.pop("latency", {}) or {} for body in bodies]
        )
        merged: Dict[str, Any] = {}
        for body in bodies:
            for field in (
                "worker",
                "since_monotonic",
                "uptime_seconds",
                "samples",
                "profiler",
                "traces",
            ):
                body.pop(field, None)
            merged = _merge_values(merged, body)
        # Summing is wrong for a shared resource reported N times.
        store_tier = merged.get("tiers", {}).get("store")
        if isinstance(store_tier, dict):
            sizes = [
                w.last_stats.get("tiers", {}).get("store", {}).get("size")
                for w in self.workers
                if w.last_stats
            ]
            sizes = [s for s in sizes if isinstance(s, int)]
            store_tier["size"] = max(sizes) if sizes else None
        now_monotonic = time.perf_counter()
        merged["latency"] = latency
        merged["uptime_seconds"] = round(now_monotonic - self._monotonic_start, 3)
        merged["since_monotonic"] = now_monotonic
        merged["pool"] = {
            "size": len(self.workers),
            "draining": self.draining,
            "live": sum(1 for w in self.workers if w.state == "serving"),
            "restarts": sum(w.restarts for w in self.workers),
            "forward_retries": int(self._forward_retries.value),
            "unavailable": int(self._unrouted.value),
            "forwarded": {
                str(w.id): int(self._forwarded[w.id].value) for w in self.workers
            },
            "workers": [w.summary() for w in self.workers],
        }
        merged["samples"] = self.registry.sample_stats()
        requests = merged.get("requests", {})
        self.registry.record_sample(
            {
                "since_monotonic": now_monotonic,
                "uptime_seconds": merged["uptime_seconds"],
                "queries": requests.get("query", 0),
                "mutates": requests.get("mutate", 0),
                "errors": merged.get("errors", 0),
                "pending": merged.get("pending", 0),
                "workers_live": merged["pool"]["live"],
                "restarts": merged["pool"]["restarts"],
            }
        )
        return merged

    def healthz(self) -> Tuple[bool, Dict[str, Any]]:
        live = sum(1 for w in self.workers if w.state == "serving")
        healthy = not self.draining and live > 0
        return healthy, {
            "healthy": healthy,
            "draining": self.draining,
            "workers": len(self.workers),
            "workers_live": live,
        }
