"""The verdict service's wire protocol: versioned JSON lines.

One request or response per line, each a JSON object carrying the protocol
version ``"v"``.  Keeping the framing this dumb buys three things: any
language (or ``nc``) can speak it, a malformed line poisons only itself
(the connection survives), and the version field lets the daemon serve old
clients after the protocol grows.

Requests
--------
Every request has an ``"op"`` and an optional ``"id"`` (string, int or
null) that the response echoes, so clients can pipeline.

``query`` asks *who wins this certificate game?* and names the game either
by **scenario instance** -- a registered sweep scenario plus an instance
name or index into its deterministic instance list::

    {"v": 1, "op": "query", "id": 7, "scenario": "separations", "index": 3}
    {"v": 1, "op": "query", "scenario": "smoke", "instance": "3-colorable|cycle4|small"}

or by **inline spec** -- an arbiter, a graph-family recipe, an identifier
scheme and (optionally) a quantifier prefix override, resolved by
:mod:`repro.service.resolver`::

    {"v": 1, "op": "query", "spec": {"arbiter": "3-colorable", "family": "cycle",
                                     "n": 9, "scheme": "sequential"}}

``mutate`` streams graph deltas into a **dynamic session** -- a named
mutable game living in the daemon.  The first mutate for a session name
must carry scenario/spec addressing (it opens the session from that game);
later mutates carry only deltas.  Each delta is a small object addressing
nodes by their index in the session's (fixed) node order::

    {"v": 1, "op": "mutate", "session": "s1",
     "spec": {"arbiter": "2-colorable", "family": "cycle", "n": 12, "scheme": "sequential"},
     "deltas": []}
    {"v": 1, "op": "mutate", "session": "s1",
     "deltas": [{"kind": "set-label", "node": 3, "label": "1"},
                {"kind": "edge-insert", "u": 0, "v": 6}]}

and ``query`` accepts ``{"session": "s1"}`` as a third addressing mode,
answering for the session's *current* state (source tier ``dynamic`` when
the verdict came from incremental repair).  Structurally malformed deltas
are rejected with the typed code ``bad-delta`` before any state changes;
a delta that does not fit the current graph (duplicate edge, bridge
deletion, identifier clash) rejects the whole batch the same way.

``stats`` returns the daemon's counters (tier hit rates, coalescer and
engine-cache telemetry); ``ping`` is a liveness probe.

Responses
---------
``{"v": 1, "ok": true, ...}`` on success -- for a query: the ``verdict``
boolean, the ``winner`` (``"eve"``/``"adam"``), the ``source`` tier that
answered (``lru`` / ``store`` / ``compute`` / ``coalesced``), the
content-addressed ``key`` and the time ``seconds`` spent.  Failures are
``{"v": 1, "ok": false, "error": {"code": ..., "message": ...}}``; the
code ``overloaded`` is the backpressure signal (the request was *not*
queued and may be retried).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

#: The protocol version this module speaks.
PROTOCOL_VERSION = 1

#: A request id: echoed verbatim; clients use it to match pipelined pairs.
RequestId = Union[str, int, None]

#: Error codes a conforming server may emit.
ERROR_CODES = (
    "bad-json",
    "bad-version",
    "bad-op",
    "bad-request",
    "bad-spec",
    "unknown-scenario",
    "unknown-instance",
    "unknown-arbiter",
    "unknown-family",
    "unknown-scheme",
    "unknown-session",
    "bad-delta",
    "session-limit",
    "overloaded",
    "deadline-exceeded",
    "draining",
    "unavailable",
    "internal",
)

#: Source tiers a query response may report.
SOURCES = ("lru", "store", "compute", "coalesced", "dynamic")

#: Hard cap on deltas per mutate request (a DoS guard, far above any
#: sensible batch).
MAX_DELTAS = 256

#: Structural schema of each wire delta kind: required (field, type) pairs.
_DELTA_FIELDS = {
    "edge-insert": (("u", int), ("v", int)),
    "edge-delete": (("u", int), ("v", int)),
    "set-label": (("node", int), ("label", str)),
    "set-id": (("node", int), ("id", str)),
}


class ProtocolError(Exception):
    """A request that cannot be served, with its wire-level error code."""

    def __init__(self, code: str, message: str, request_id: RequestId = None) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass(frozen=True)
class QueryRequest:
    """A ``query`` op: exactly one of (*scenario*, *spec*, *session*) modes.

    ``deadline_ms``, when set, bounds the server-side handling time: a
    query still unanswered after that many milliseconds gets the typed
    ``deadline-exceeded`` error instead of hanging its client.
    """

    id: RequestId = None
    scenario: Optional[str] = None
    instance: Optional[str] = None
    index: Optional[int] = None
    spec: Optional[Mapping[str, Any]] = None
    session: Optional[str] = None
    deadline_ms: Optional[int] = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": "query"}
        if self.id is not None:
            body["id"] = self.id
        if self.scenario is not None:
            body["scenario"] = self.scenario
            if self.instance is not None:
                body["instance"] = self.instance
            if self.index is not None:
                body["index"] = self.index
        if self.spec is not None:
            body["spec"] = dict(self.spec)
        if self.session is not None:
            body["session"] = self.session
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        return body


@dataclass(frozen=True)
class MutateRequest:
    """A ``mutate`` op: deltas for a dynamic session (plus opening address).

    The scenario/spec fields are only legal on the request that *opens* the
    session; afterwards the session name alone addresses the mutable game.
    ``deltas`` holds structurally validated wire objects (see
    ``_DELTA_FIELDS``); semantic validation against the current graph
    happens server-side.

    ``token`` is a client-chosen idempotency key: the server remembers
    recently applied tokens per session and answers a retried mutate
    (``deduped: true``) without re-applying its deltas -- so a client may
    retry a mutate whose response was lost without double-mutating.
    """

    id: RequestId = None
    session: str = ""
    deltas: tuple = ()
    scenario: Optional[str] = None
    instance: Optional[str] = None
    index: Optional[int] = None
    spec: Optional[Mapping[str, Any]] = None
    token: Optional[str] = None
    deadline_ms: Optional[int] = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "op": "mutate",
            "session": self.session,
            "deltas": [dict(delta) for delta in self.deltas],
        }
        if self.id is not None:
            body["id"] = self.id
        if self.scenario is not None:
            body["scenario"] = self.scenario
            if self.instance is not None:
                body["instance"] = self.instance
            if self.index is not None:
                body["index"] = self.index
        if self.spec is not None:
            body["spec"] = dict(self.spec)
        if self.token is not None:
            body["token"] = self.token
        if self.deadline_ms is not None:
            body["deadline_ms"] = self.deadline_ms
        return body


@dataclass(frozen=True)
class StatsRequest:
    """A ``stats`` op: the daemon's counters."""

    id: RequestId = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": "stats"}
        if self.id is not None:
            body["id"] = self.id
        return body


@dataclass(frozen=True)
class PingRequest:
    """A ``ping`` op: liveness probe."""

    id: RequestId = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": "ping"}
        if self.id is not None:
            body["id"] = self.id
        return body


#: Actions the ``admin`` op accepts.
ADMIN_ACTIONS = (
    "faults",
    "set-faults",
    "clear-faults",
    "profile-start",
    "profile-stop",
    "profile-snapshot",
)


@dataclass(frozen=True)
class AdminRequest:
    """An ``admin`` op: runtime control of the daemon's fault injector
    and sampling profiler.

    ``set-faults`` arms the failpoints named by ``spec`` (the same grammar
    as ``repro serve --faults``); ``clear-faults`` disarms everything;
    ``faults`` just reports.  Every action answers with the injector's
    current snapshot, so chaos harnesses can flip faults on a live daemon
    and verify what is armed.

    ``profile-start`` begins continuous stack sampling (``spec``, when
    given, is the rate in hz); ``profile-stop`` halts it; both answer
    with the profiler's status and ``profile-snapshot`` with its full
    aggregate (folded stacks + top frames) in the additive ``profile``
    response field.
    """

    id: RequestId = None
    action: str = "faults"
    spec: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "op": "admin",
            "action": self.action,
        }
        if self.id is not None:
            body["id"] = self.id
        if self.spec is not None:
            body["spec"] = self.spec
        return body


Request = Union[QueryRequest, MutateRequest, StatsRequest, PingRequest, AdminRequest]


def encode_request(request: Request) -> str:
    """One JSON line (no trailing newline) for *request*."""
    return json.dumps(request.payload(), sort_keys=True, separators=(",", ":"))


def _request_id_of(body: Mapping[str, Any]) -> RequestId:
    request_id = body.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("bad-request", "id must be a string, an integer or null")
    if isinstance(request_id, bool):
        raise ProtocolError("bad-request", "id must be a string, an integer or null")
    return request_id


def parse_request(line: str) -> Request:
    """Parse one request line, raising :class:`ProtocolError` on any defect.

    The error's ``request_id`` is recovered whenever the line was at least
    well-formed JSON with a usable ``id``, so the server can still address
    its error response.
    """
    try:
        body = json.loads(line)
    except ValueError as error:
        raise ProtocolError("bad-json", f"request is not valid JSON: {error}") from None
    if not isinstance(body, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")

    request_id: RequestId = None
    try:
        request_id = _request_id_of(body)
        version = body.get("v")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                "bad-version",
                f"unsupported protocol version {version!r} (this server speaks v{PROTOCOL_VERSION})",
            )
        op = body.get("op")
        if op == "ping":
            return PingRequest(id=request_id)
        if op == "stats":
            return StatsRequest(id=request_id)
        if op == "query":
            return _parse_query(body, request_id)
        if op == "mutate":
            return _parse_mutate(body, request_id)
        if op == "admin":
            return _parse_admin(body, request_id)
        raise ProtocolError(
            "bad-op", f"unknown op {op!r}; expected query, mutate, stats, ping or admin"
        )
    except ProtocolError as error:
        if error.request_id is None:
            error.request_id = request_id
        raise


def _parse_deadline(body: Mapping[str, Any], request_id: RequestId) -> Optional[int]:
    deadline_ms = body.get("deadline_ms")
    if deadline_ms is None:
        return None
    if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int):
        raise ProtocolError(
            "bad-request", "deadline_ms must be a positive integer", request_id
        )
    if deadline_ms <= 0:
        raise ProtocolError(
            "bad-request", "deadline_ms must be a positive integer", request_id
        )
    return deadline_ms


def _parse_query(body: Mapping[str, Any], request_id: RequestId) -> QueryRequest:
    scenario = body.get("scenario")
    spec = body.get("spec")
    session = body.get("session")
    deadline_ms = _parse_deadline(body, request_id)
    modes = sum(value is not None for value in (scenario, spec, session))
    if modes != 1:
        raise ProtocolError(
            "bad-request",
            "a query names exactly one of 'scenario' (plus 'instance' or 'index'), "
            "'spec' or 'session'",
            request_id,
        )
    if session is not None:
        if not isinstance(session, str) or not session:
            raise ProtocolError(
                "bad-request", "session must be a nonempty string", request_id
            )
        return QueryRequest(id=request_id, session=session, deadline_ms=deadline_ms)
    if spec is not None:
        if not isinstance(spec, dict):
            raise ProtocolError("bad-spec", "spec must be a JSON object", request_id)
        return QueryRequest(id=request_id, spec=spec, deadline_ms=deadline_ms)

    if not isinstance(scenario, str):
        raise ProtocolError("bad-request", "scenario must be a string", request_id)
    instance = body.get("instance")
    index = body.get("index")
    if (instance is None) == (index is None):
        raise ProtocolError(
            "bad-request",
            "a scenario query names exactly one of 'instance' (name) or 'index'",
            request_id,
        )
    if instance is not None and not isinstance(instance, str):
        raise ProtocolError("bad-request", "instance must be a string", request_id)
    if index is not None and (isinstance(index, bool) or not isinstance(index, int)):
        raise ProtocolError("bad-request", "index must be an integer", request_id)
    return QueryRequest(
        id=request_id,
        scenario=scenario,
        instance=instance,
        index=index,
        deadline_ms=deadline_ms,
    )


def validate_wire_delta(delta: Any, request_id: RequestId = None) -> Dict[str, Any]:
    """Structurally validate one wire delta, raising ``bad-delta`` on defects.

    Checks shape only (known kind, required fields, correct JSON types);
    whether the delta *fits the session's current graph* is the server's
    semantic check.  Returns the delta as a plain dict.
    """
    if not isinstance(delta, dict):
        raise ProtocolError("bad-delta", "each delta must be a JSON object", request_id)
    kind = delta.get("kind")
    if kind not in _DELTA_FIELDS:
        raise ProtocolError(
            "bad-delta",
            f"unknown delta kind {kind!r}; known: {sorted(_DELTA_FIELDS)}",
            request_id,
        )
    for field, expected in _DELTA_FIELDS[kind]:
        value = delta.get(field)
        if expected is int and (isinstance(value, bool) or not isinstance(value, int)):
            raise ProtocolError(
                "bad-delta",
                f"delta field {field!r} of {kind!r} must be an integer node index",
                request_id,
            )
        if expected is str and not isinstance(value, str):
            raise ProtocolError(
                "bad-delta",
                f"delta field {field!r} of {kind!r} must be a string",
                request_id,
            )
        if expected is int and value < 0:
            raise ProtocolError(
                "bad-delta",
                f"delta field {field!r} of {kind!r} must be nonnegative",
                request_id,
            )
    return dict(delta)


def _parse_mutate(body: Mapping[str, Any], request_id: RequestId) -> MutateRequest:
    session = body.get("session")
    if not isinstance(session, str) or not session:
        raise ProtocolError(
            "bad-request", "mutate requires a nonempty 'session' string", request_id
        )
    deltas = body.get("deltas")
    if not isinstance(deltas, list):
        raise ProtocolError("bad-request", "'deltas' must be a JSON array", request_id)
    if len(deltas) > MAX_DELTAS:
        raise ProtocolError(
            "bad-request",
            f"at most {MAX_DELTAS} deltas per mutate request (got {len(deltas)})",
            request_id,
        )
    validated = tuple(validate_wire_delta(delta, request_id) for delta in deltas)

    scenario = body.get("scenario")
    spec = body.get("spec")
    if scenario is not None and spec is not None:
        raise ProtocolError(
            "bad-request",
            "a mutate opening address names at most one of 'scenario' or 'spec'",
            request_id,
        )
    if spec is not None and not isinstance(spec, dict):
        raise ProtocolError("bad-spec", "spec must be a JSON object", request_id)
    instance = body.get("instance")
    index = body.get("index")
    if scenario is not None:
        if not isinstance(scenario, str):
            raise ProtocolError("bad-request", "scenario must be a string", request_id)
        if (instance is None) == (index is None):
            raise ProtocolError(
                "bad-request",
                "a scenario address names exactly one of 'instance' (name) or 'index'",
                request_id,
            )
        if instance is not None and not isinstance(instance, str):
            raise ProtocolError("bad-request", "instance must be a string", request_id)
        if index is not None and (isinstance(index, bool) or not isinstance(index, int)):
            raise ProtocolError("bad-request", "index must be an integer", request_id)
    token = body.get("token")
    if token is not None and (not isinstance(token, str) or not token):
        raise ProtocolError(
            "bad-request", "token must be a nonempty string", request_id
        )
    return MutateRequest(
        id=request_id,
        session=session,
        deltas=validated,
        scenario=scenario,
        instance=instance if scenario is not None else None,
        index=index if scenario is not None else None,
        spec=spec,
        token=token,
        deadline_ms=_parse_deadline(body, request_id),
    )


def _parse_admin(body: Mapping[str, Any], request_id: RequestId) -> AdminRequest:
    action = body.get("action")
    if action not in ADMIN_ACTIONS:
        raise ProtocolError(
            "bad-request",
            f"admin action must be one of {', '.join(ADMIN_ACTIONS)} (got {action!r})",
            request_id,
        )
    spec = body.get("spec")
    if spec is not None and not isinstance(spec, str):
        raise ProtocolError("bad-request", "spec must be a string", request_id)
    if action == "set-faults" and not spec:
        raise ProtocolError(
            "bad-request", "set-faults requires a nonempty 'spec' string", request_id
        )
    return AdminRequest(id=request_id, action=action, spec=spec)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def query_response(
    request_id: RequestId,
    verdict: bool,
    source: str,
    key: str,
    name: str = "",
    seconds: float = 0.0,
    trace: Optional[list] = None,
    degraded: bool = False,
) -> Dict[str, Any]:
    """A successful query answer (``winner`` is derived from ``verdict``).

    *trace*, when given, is the per-tier timing breakdown recorded while
    the request moved through the daemon -- a list of
    ``{"span": name, "ms": float, ...}`` objects in recording order.  The
    field is additive: v1 clients that do not know it simply ignore it.

    *degraded* marks an answer computed while the store tier was
    unavailable (circuit breaker open, or a store read failed): the
    verdict is still correct -- it came from the LRU or fresh compute --
    but persistence and store-warm reads were skipped.
    """
    if source not in SOURCES:
        raise ValueError(f"unknown source tier {source!r}")
    body = {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "id": request_id,
        "verdict": bool(verdict),
        "winner": "eve" if verdict else "adam",
        "source": source,
        "key": key,
        "name": name,
        "seconds": round(seconds, 6),
        "degraded": bool(degraded),
    }
    if trace is not None:
        body["trace"] = trace
    return body


def mutate_response(
    request_id: RequestId,
    session: str,
    applied: int,
    dirty: int,
    generation: int,
    seconds: float = 0.0,
    opened: bool = False,
    deduped: bool = False,
    journaled: bool = False,
) -> Dict[str, Any]:
    """A successful mutate answer: what the delta batch touched.

    ``deduped`` marks a retried mutate answered from the session's
    idempotency-token memory without re-applying; ``journaled`` reports
    whether the batch reached the store's session journal (``false`` means
    the session will not survive a daemon crash from this point).
    """
    return {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "id": request_id,
        "session": session,
        "applied": int(applied),
        "dirty": int(dirty),
        "generation": int(generation),
        "opened": bool(opened),
        "seconds": round(seconds, 6),
        "deduped": bool(deduped),
        "journaled": bool(journaled),
    }


def admin_response(
    request_id: RequestId,
    faults: Mapping[str, Any],
    profile: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """A successful admin answer: the fault injector's current snapshot.

    ``profile`` (additive, only on the ``profile-*`` actions) carries the
    sampling profiler's status or snapshot.
    """
    body: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "id": request_id,
        "faults": dict(faults),
    }
    if profile is not None:
        body["profile"] = dict(profile)
    return body


def stats_response(request_id: RequestId, stats: Mapping[str, Any]) -> Dict[str, Any]:
    """A successful stats answer (the stats body is additive by design).

    Pool deployments add a ``worker`` block (worker id, last-seen store
    ``log_seq``, catch-up replay status) on each worker's stats, and the
    supervisor's aggregated stats add a ``pool`` block with per-worker
    health, restarts, and routing state.
    """
    return {"v": PROTOCOL_VERSION, "ok": True, "id": request_id, "stats": dict(stats)}


def pong_response(request_id: RequestId) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "ok": True, "id": request_id, "pong": True}


def error_response(request_id: RequestId, code: str, message: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "id": request_id,
        "error": {"code": code, "message": message},
    }


def encode_response(response: Mapping[str, Any]) -> str:
    """One JSON line (no trailing newline) for a response object."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))


def parse_response(line: str) -> Dict[str, Any]:
    """Parse one response line (client side), validating version and shape."""
    try:
        body = json.loads(line)
    except ValueError as error:
        raise ProtocolError("bad-json", f"response is not valid JSON: {error}") from None
    if not isinstance(body, dict):
        raise ProtocolError("bad-request", "response must be a JSON object")
    if body.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-version", f"unsupported response version {body.get('v')!r}"
        )
    if "ok" not in body:
        raise ProtocolError("bad-request", "response is missing the 'ok' field")
    return body
