"""The verdict service's wire protocol: versioned JSON lines.

One request or response per line, each a JSON object carrying the protocol
version ``"v"``.  Keeping the framing this dumb buys three things: any
language (or ``nc``) can speak it, a malformed line poisons only itself
(the connection survives), and the version field lets the daemon serve old
clients after the protocol grows.

Requests
--------
Every request has an ``"op"`` and an optional ``"id"`` (string, int or
null) that the response echoes, so clients can pipeline.

``query`` asks *who wins this certificate game?* and names the game either
by **scenario instance** -- a registered sweep scenario plus an instance
name or index into its deterministic instance list::

    {"v": 1, "op": "query", "id": 7, "scenario": "separations", "index": 3}
    {"v": 1, "op": "query", "scenario": "smoke", "instance": "3-colorable|cycle4|small"}

or by **inline spec** -- an arbiter, a graph-family recipe, an identifier
scheme and (optionally) a quantifier prefix override, resolved by
:mod:`repro.service.resolver`::

    {"v": 1, "op": "query", "spec": {"arbiter": "3-colorable", "family": "cycle",
                                     "n": 9, "scheme": "sequential"}}

``stats`` returns the daemon's counters (tier hit rates, coalescer and
engine-cache telemetry); ``ping`` is a liveness probe.

Responses
---------
``{"v": 1, "ok": true, ...}`` on success -- for a query: the ``verdict``
boolean, the ``winner`` (``"eve"``/``"adam"``), the ``source`` tier that
answered (``lru`` / ``store`` / ``compute`` / ``coalesced``), the
content-addressed ``key`` and the time ``seconds`` spent.  Failures are
``{"v": 1, "ok": false, "error": {"code": ..., "message": ...}}``; the
code ``overloaded`` is the backpressure signal (the request was *not*
queued and may be retried).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

#: The protocol version this module speaks.
PROTOCOL_VERSION = 1

#: A request id: echoed verbatim; clients use it to match pipelined pairs.
RequestId = Union[str, int, None]

#: Error codes a conforming server may emit.
ERROR_CODES = (
    "bad-json",
    "bad-version",
    "bad-op",
    "bad-request",
    "bad-spec",
    "unknown-scenario",
    "unknown-instance",
    "unknown-arbiter",
    "unknown-family",
    "unknown-scheme",
    "overloaded",
    "internal",
)

#: Source tiers a query response may report.
SOURCES = ("lru", "store", "compute", "coalesced")


class ProtocolError(Exception):
    """A request that cannot be served, with its wire-level error code."""

    def __init__(self, code: str, message: str, request_id: RequestId = None) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.request_id = request_id


@dataclass(frozen=True)
class QueryRequest:
    """A ``query`` op: exactly one of (*scenario*, *spec*) addressing modes."""

    id: RequestId = None
    scenario: Optional[str] = None
    instance: Optional[str] = None
    index: Optional[int] = None
    spec: Optional[Mapping[str, Any]] = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": "query"}
        if self.id is not None:
            body["id"] = self.id
        if self.scenario is not None:
            body["scenario"] = self.scenario
            if self.instance is not None:
                body["instance"] = self.instance
            if self.index is not None:
                body["index"] = self.index
        if self.spec is not None:
            body["spec"] = dict(self.spec)
        return body


@dataclass(frozen=True)
class StatsRequest:
    """A ``stats`` op: the daemon's counters."""

    id: RequestId = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": "stats"}
        if self.id is not None:
            body["id"] = self.id
        return body


@dataclass(frozen=True)
class PingRequest:
    """A ``ping`` op: liveness probe."""

    id: RequestId = None

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"v": PROTOCOL_VERSION, "op": "ping"}
        if self.id is not None:
            body["id"] = self.id
        return body


Request = Union[QueryRequest, StatsRequest, PingRequest]


def encode_request(request: Request) -> str:
    """One JSON line (no trailing newline) for *request*."""
    return json.dumps(request.payload(), sort_keys=True, separators=(",", ":"))


def _request_id_of(body: Mapping[str, Any]) -> RequestId:
    request_id = body.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("bad-request", "id must be a string, an integer or null")
    if isinstance(request_id, bool):
        raise ProtocolError("bad-request", "id must be a string, an integer or null")
    return request_id


def parse_request(line: str) -> Request:
    """Parse one request line, raising :class:`ProtocolError` on any defect.

    The error's ``request_id`` is recovered whenever the line was at least
    well-formed JSON with a usable ``id``, so the server can still address
    its error response.
    """
    try:
        body = json.loads(line)
    except ValueError as error:
        raise ProtocolError("bad-json", f"request is not valid JSON: {error}") from None
    if not isinstance(body, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")

    request_id: RequestId = None
    try:
        request_id = _request_id_of(body)
        version = body.get("v")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                "bad-version",
                f"unsupported protocol version {version!r} (this server speaks v{PROTOCOL_VERSION})",
            )
        op = body.get("op")
        if op == "ping":
            return PingRequest(id=request_id)
        if op == "stats":
            return StatsRequest(id=request_id)
        if op == "query":
            return _parse_query(body, request_id)
        raise ProtocolError("bad-op", f"unknown op {op!r}; expected query, stats or ping")
    except ProtocolError as error:
        if error.request_id is None:
            error.request_id = request_id
        raise


def _parse_query(body: Mapping[str, Any], request_id: RequestId) -> QueryRequest:
    scenario = body.get("scenario")
    spec = body.get("spec")
    if (scenario is None) == (spec is None):
        raise ProtocolError(
            "bad-request",
            "a query names exactly one of 'scenario' (plus 'instance' or 'index') or 'spec'",
            request_id,
        )
    if spec is not None:
        if not isinstance(spec, dict):
            raise ProtocolError("bad-spec", "spec must be a JSON object", request_id)
        return QueryRequest(id=request_id, spec=spec)

    if not isinstance(scenario, str):
        raise ProtocolError("bad-request", "scenario must be a string", request_id)
    instance = body.get("instance")
    index = body.get("index")
    if (instance is None) == (index is None):
        raise ProtocolError(
            "bad-request",
            "a scenario query names exactly one of 'instance' (name) or 'index'",
            request_id,
        )
    if instance is not None and not isinstance(instance, str):
        raise ProtocolError("bad-request", "instance must be a string", request_id)
    if index is not None and (isinstance(index, bool) or not isinstance(index, int)):
        raise ProtocolError("bad-request", "index must be an integer", request_id)
    return QueryRequest(id=request_id, scenario=scenario, instance=instance, index=index)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def query_response(
    request_id: RequestId,
    verdict: bool,
    source: str,
    key: str,
    name: str = "",
    seconds: float = 0.0,
) -> Dict[str, Any]:
    """A successful query answer (``winner`` is derived from ``verdict``)."""
    if source not in SOURCES:
        raise ValueError(f"unknown source tier {source!r}")
    return {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "id": request_id,
        "verdict": bool(verdict),
        "winner": "eve" if verdict else "adam",
        "source": source,
        "key": key,
        "name": name,
        "seconds": round(seconds, 6),
    }


def stats_response(request_id: RequestId, stats: Mapping[str, Any]) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "ok": True, "id": request_id, "stats": dict(stats)}


def pong_response(request_id: RequestId) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "ok": True, "id": request_id, "pong": True}


def error_response(request_id: RequestId, code: str, message: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "id": request_id,
        "error": {"code": code, "message": message},
    }


def encode_response(response: Mapping[str, Any]) -> str:
    """One JSON line (no trailing newline) for a response object."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))


def parse_response(line: str) -> Dict[str, Any]:
    """Parse one response line (client side), validating version and shape."""
    try:
        body = json.loads(line)
    except ValueError as error:
        raise ProtocolError("bad-json", f"response is not valid JSON: {error}") from None
    if not isinstance(body, dict):
        raise ProtocolError("bad-request", "response must be a JSON object")
    if body.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-version", f"unsupported response version {body.get('v')!r}"
        )
    if "ok" not in body:
        raise ProtocolError("bad-request", "response is missing the 'ok' field")
    return body
