"""The online verdict service: query the decision procedure as a daemon.

Where :mod:`repro.sweep` is batch-shaped (run a whole scenario, keep the
verdicts), this package serves *single* ``who wins?`` questions at low
latency from a long-lived process:

* :mod:`repro.service.protocol` -- the versioned JSON-lines wire protocol;
* :mod:`repro.service.resolver` -- wire queries (scenario instance or
  inline spec) lowered to game instances and content-addressed store keys;
* :mod:`repro.service.cache` -- the tiered read path: per-process LRU ->
  shared persistent verdict store -> compiled engine, with per-tier
  counters;
* :mod:`repro.service.coalescer` -- in-flight request dedup and a
  micro-batching window grouping compatible misses onto one compiled
  instance;
* :mod:`repro.service.server` -- the asyncio TCP/UNIX daemon with bounded
  admission and explicit ``overloaded`` backpressure;
* :mod:`repro.service.client` -- a small synchronous client with typed
  timeout/transport errors and optional retry with backoff;
* :mod:`repro.service.resilience` -- fault injection (named failpoints),
  the store tier's circuit breaker, and client retry policies;
* :mod:`repro.service.loadgen` -- closed-loop load generation and latency
  percentiles (the source of ``BENCH_service.json``), with a ``--chaos``
  mode that arms failpoints on the daemon for the run.

CLI: ``python -m repro serve`` / ``query`` / ``loadgen``.
"""

from repro.service.cache import ComputeTier, TieredVerdictCache
from repro.service.client import ServiceClient, ServiceError, format_address, parse_address
from repro.service.coalescer import CoalescedResult, CoalescerClosed, RequestCoalescer
from repro.service.loadgen import (
    LoadReport,
    inline_cycle_payloads,
    interleave,
    run_load,
    scenario_payloads,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AdminRequest,
    MutateRequest,
    PingRequest,
    ProtocolError,
    QueryRequest,
    StatsRequest,
    admin_response,
    encode_request,
    encode_response,
    error_response,
    mutate_response,
    parse_request,
    parse_response,
    pong_response,
    query_response,
    stats_response,
)
from repro.service.resilience import (
    FAILPOINTS,
    RETRYABLE_CODES,
    CircuitBreaker,
    FaultInjector,
    FaultingStore,
    InjectedFault,
    RetryPolicy,
    parse_fault_spec,
)
from repro.service.resolver import ResolvedQuery, Resolver
from repro.service.server import (
    ServerThread,
    ServiceConfig,
    VerdictServer,
    VerdictService,
)

__all__ = [
    "ComputeTier",
    "TieredVerdictCache",
    "ServiceClient",
    "ServiceError",
    "format_address",
    "parse_address",
    "CoalescedResult",
    "CoalescerClosed",
    "RequestCoalescer",
    "LoadReport",
    "inline_cycle_payloads",
    "interleave",
    "run_load",
    "scenario_payloads",
    "PROTOCOL_VERSION",
    "AdminRequest",
    "MutateRequest",
    "PingRequest",
    "ProtocolError",
    "QueryRequest",
    "StatsRequest",
    "admin_response",
    "encode_request",
    "encode_response",
    "error_response",
    "mutate_response",
    "parse_request",
    "parse_response",
    "pong_response",
    "query_response",
    "stats_response",
    "FAILPOINTS",
    "RETRYABLE_CODES",
    "CircuitBreaker",
    "FaultInjector",
    "FaultingStore",
    "InjectedFault",
    "RetryPolicy",
    "parse_fault_spec",
    "ResolvedQuery",
    "Resolver",
    "ServerThread",
    "ServiceConfig",
    "VerdictServer",
    "VerdictService",
]
