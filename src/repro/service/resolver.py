"""Resolving wire queries to concrete game instances and their store keys.

A :class:`~repro.service.protocol.QueryRequest` names a game either as a
*scenario instance* (a registered sweep scenario plus an instance name or
index) or as an *inline spec* (arbiter x graph family x identifier scheme
x optional prefix override).  The resolver turns both into the same thing:
a :class:`~repro.engine.batch.GameInstance` plus its content-addressed
:func:`~repro.sweep.fingerprint.game_instance_key` -- the key every cache
tier below the protocol speaks.

Resolution is cached aggressively, and deliberately by *object identity*
where the engine layer shares by identity: one scenario's instance list is
built once and reused, inline specs are canonicalized and memoized, and
arbiter specs are constructed once per name.  Repeated queries therefore
hand the compute tier the *same* machine/graph/space objects, so its
engine caches (keyed by identity) actually hit.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.engine.batch import GameInstance
from repro.engine.caching import LRUCache
from repro.graphs import generators
from repro.graphs.labeled_graph import LabeledGraph
from repro.hierarchy.game import Quantifier
from repro.service.protocol import ProtocolError, QueryRequest
from repro.sweep.fingerprint import game_instance_key
from repro.sweep.scenarios import IDENTIFIER_SCHEMES, get_scenario


def _arbiter_factories() -> Dict[str, Callable[[], object]]:
    from repro.hierarchy.arbiters import (
        all_selected_spec,
        eulerian_spec,
        three_colorability_spec,
        two_colorability_spec,
    )

    return {
        "3-colorable": three_colorability_spec,
        "2-colorable": two_colorability_spec,
        "eulerian": eulerian_spec,
        "all-selected": all_selected_spec,
    }


#: family name -> (required params, optional params with defaults, builder,
#: node-count estimator).  The estimator runs on the raw integer parameters
#: *before* the builder, so an absurd size is rejected without materializing
#: anything.
_FAMILIES: Dict[
    str,
    Tuple[
        Tuple[str, ...],
        Dict[str, int],
        Callable[..., LabeledGraph],
        Callable[..., int],
    ],
] = {
    "cycle": (("n",), {}, lambda n: generators.cycle_graph(n), lambda n: n),
    "path": (("n",), {}, lambda n: generators.path_graph(n), lambda n: n),
    "complete": (("n",), {}, lambda n: generators.complete_graph(n), lambda n: n),
    "star": (("n",), {}, lambda n: generators.star_graph(n), lambda n: n + 1),
    "grid": (
        ("rows", "cols"),
        {},
        lambda rows, cols: generators.grid_graph(rows, cols),
        lambda rows, cols: rows * cols,
    ),
    "tree": (
        ("n",),
        {"seed": 0},
        lambda n, seed: generators.random_tree(n, seed=seed),
        lambda n, seed: n,
    ),
    "random-regular": (
        ("degree", "n"),
        {"seed": 0},
        lambda degree, n, seed: generators.random_regular_graph(degree, n, seed=seed),
        lambda degree, n, seed: n,
    ),
}

_SPEC_KEYS = frozenset(
    {"arbiter", "family", "scheme", "prefix", "n", "rows", "cols", "degree", "seed"}
)

#: Sanity bound on inline graph sizes: the decision procedure is exponential
#: in certificate choices, so an absurd request must be rejected at the
#: protocol boundary instead of wedging a compute worker.
MAX_INLINE_NODES = 64


@dataclass
class ResolvedQuery:
    """A wire query lowered to engine terms."""

    instance: GameInstance
    key: str
    name: str


class Resolver:
    """Shared, thread-compatible query resolution with identity-stable caches."""

    def __init__(self, max_inline: int = 512) -> None:
        self._lock = threading.RLock()
        self._arbiters: Dict[str, object] = {}
        self._scenario_instances: Dict[str, List[GameInstance]] = {}
        self._scenario_index: Dict[str, Dict[str, int]] = {}
        self._scenario_keys: Dict[Tuple[str, int], str] = {}
        self._inline: LRUCache = LRUCache(max_inline)

    # ------------------------------------------------------------------
    def resolve(self, request: QueryRequest) -> ResolvedQuery:
        """The game instance and store key a query addresses.

        Raises :class:`ProtocolError` (with the query's id attached) for
        anything the request got wrong; genuine resolver bugs propagate.
        """
        try:
            if request.spec is not None:
                return self._resolve_spec(request.spec)
            return self._resolve_scenario(request)
        except ProtocolError as error:
            if error.request_id is None:
                error.request_id = request.id
            raise

    def scenario_keys(self, name: str) -> List[str]:
        """Every store key of a scenario, in instance order (computed in bulk).

        This is the multi-key half of the store read path: the daemon hands
        the whole list to :meth:`VerdictStore.get_many
        <repro.sweep.store.VerdictStore.get_many>` on a scenario's first
        store lookup, so sibling instances are promoted in one round-trip
        instead of one ``get`` per query.
        """
        instances = self._scenario_list(name)
        keys: List[str] = []
        for index, instance in enumerate(instances):
            with self._lock:
                key = self._scenario_keys.get((name, index))
            if key is None:
                key = game_instance_key(instance)
                with self._lock:
                    self._scenario_keys[(name, index)] = key
            keys.append(key)
        return keys

    def invalidate(self, scenario: Optional[str] = None) -> None:
        """Drop cached resolutions (all of them, or one scenario's)."""
        with self._lock:
            if scenario is None:
                self._scenario_instances.clear()
                self._scenario_index.clear()
                self._scenario_keys.clear()
                self._inline.clear()
                self._arbiters.clear()
                return
            self._scenario_instances.pop(scenario, None)
            self._scenario_index.pop(scenario, None)
            for key in [k for k in self._scenario_keys if k[0] == scenario]:
                del self._scenario_keys[key]

    # ------------------------------------------------------------------
    # Scenario instances
    # ------------------------------------------------------------------
    def _scenario_list(self, name: str) -> List[GameInstance]:
        with self._lock:
            instances = self._scenario_instances.get(name)
            if instances is not None:
                return instances
        try:
            scenario = get_scenario(name)
        except KeyError as error:
            raise ProtocolError("unknown-scenario", str(error.args[0])) from None
        built = scenario.instances()
        with self._lock:
            # First build wins, so every resolution shares one object set.
            return self._scenario_instances.setdefault(name, built)

    def _resolve_scenario(self, request: QueryRequest) -> ResolvedQuery:
        name = request.scenario
        assert name is not None
        instances = self._scenario_list(name)
        if request.index is not None:
            index = request.index
            if not 0 <= index < len(instances):
                raise ProtocolError(
                    "unknown-instance",
                    f"scenario {name!r} has {len(instances)} instances; "
                    f"index {index} is out of range",
                )
        else:
            with self._lock:
                name_map = self._scenario_index.get(name)
                if name_map is None:
                    name_map = {
                        instance.name: position
                        for position, instance in enumerate(instances)
                    }
                    self._scenario_index[name] = name_map
            index = name_map.get(request.instance, -1)
            if index < 0:
                raise ProtocolError(
                    "unknown-instance",
                    f"scenario {name!r} has no instance named {request.instance!r}",
                )
        instance = instances[index]
        with self._lock:
            key = self._scenario_keys.get((name, index))
        if key is None:
            key = game_instance_key(instance)
            with self._lock:
                self._scenario_keys[(name, index)] = key
        return ResolvedQuery(
            instance=instance,
            key=key,
            name=instance.name or f"{name}[{index}]",
        )

    # ------------------------------------------------------------------
    # Inline specs
    # ------------------------------------------------------------------
    def _resolve_spec(self, spec: Mapping[str, Any]) -> ResolvedQuery:
        canonical = self._canonical_spec(spec)
        token = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        with self._lock:
            cached = self._inline.get(token)
        if cached is not None:
            return cached
        resolved = self._build_spec(canonical)
        with self._lock:
            self._inline.put(token, resolved)
        return resolved

    def _canonical_spec(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        unknown = sorted(set(spec) - _SPEC_KEYS)
        if unknown:
            raise ProtocolError(
                "bad-spec",
                f"unknown spec fields {unknown}; accepted: {sorted(_SPEC_KEYS)}",
            )
        arbiter = spec.get("arbiter")
        if not isinstance(arbiter, str):
            raise ProtocolError("bad-spec", "spec.arbiter must be a string")
        family = spec.get("family")
        if not isinstance(family, str):
            raise ProtocolError("bad-spec", "spec.family must be a string")
        if family not in _FAMILIES:
            raise ProtocolError(
                "unknown-family",
                f"unknown graph family {family!r}; known: {sorted(_FAMILIES)}",
            )
        required, optional, _, estimate_nodes = _FAMILIES[family]
        canonical: Dict[str, Any] = {"arbiter": arbiter, "family": family}
        for param in required:
            value = spec.get(param)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(
                    "bad-spec", f"family {family!r} requires integer parameter {param!r}"
                )
            canonical[param] = value
        for param, default in optional.items():
            value = spec.get(param, default)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError("bad-spec", f"spec.{param} must be an integer")
            canonical[param] = value
        # Bound the size BEFORE building: the resolver runs on the daemon's
        # event loop and some builders (complete graphs) are quadratic, so
        # an absurd request must never reach a generator.
        estimated = estimate_nodes(
            **{param: canonical[param] for param in (*required, *optional)}
        )
        if estimated > MAX_INLINE_NODES:
            raise ProtocolError(
                "bad-spec",
                f"inline graphs are limited to {MAX_INLINE_NODES} nodes "
                f"(requested ~{estimated})",
            )
        scheme = spec.get("scheme", "small")
        if scheme not in IDENTIFIER_SCHEMES:
            raise ProtocolError(
                "unknown-scheme",
                f"unknown identifier scheme {scheme!r}; known: {sorted(IDENTIFIER_SCHEMES)}",
            )
        canonical["scheme"] = scheme
        prefix = spec.get("prefix")
        if prefix is not None:
            if not isinstance(prefix, str) or any(ch not in "EA" for ch in prefix):
                raise ProtocolError(
                    "bad-spec", "spec.prefix must be a string over 'E' and 'A'"
                )
            canonical["prefix"] = prefix
        return canonical

    def _arbiter_spec(self, name: str) -> object:
        with self._lock:
            spec = self._arbiters.get(name)
            if spec is not None:
                return spec
        factories = _arbiter_factories()
        if name not in factories:
            raise ProtocolError(
                "unknown-arbiter",
                f"unknown arbiter {name!r}; known: {sorted(factories)}",
            )
        built = factories[name]()
        with self._lock:
            return self._arbiters.setdefault(name, built)

    def _build_spec(self, canonical: Mapping[str, Any]) -> ResolvedQuery:
        arbiter = self._arbiter_spec(canonical["arbiter"])
        family = canonical["family"]
        required, optional, builder, _ = _FAMILIES[family]
        params = {param: canonical[param] for param in (*required, *optional)}
        try:
            graph = builder(**params)
        except (ValueError, KeyError) as error:
            raise ProtocolError("bad-spec", f"cannot build graph: {error}") from None
        if len(graph.nodes) > MAX_INLINE_NODES:
            # Belt and braces behind the pre-build estimate above.
            raise ProtocolError(
                "bad-spec",
                f"inline graphs are limited to {MAX_INLINE_NODES} nodes "
                f"(requested {len(graph.nodes)})",
            )
        ids = IDENTIFIER_SCHEMES[canonical["scheme"]](graph, arbiter.identifier_radius)
        prefix = arbiter.prefix()
        if "prefix" in canonical:
            prefix = [
                Quantifier.EXISTS if ch == "E" else Quantifier.FORALL
                for ch in canonical["prefix"]
            ]
            if len(prefix) != len(arbiter.spaces):
                raise ProtocolError(
                    "bad-spec",
                    f"prefix {canonical['prefix']!r} has {len(prefix)} quantifiers "
                    f"but arbiter {canonical['arbiter']!r} plays "
                    f"{len(arbiter.spaces)} certificate levels",
                )
        tag = "-".join(str(params[p]) for p in (*required, *optional))
        name = f"{canonical['arbiter']}|{family}{tag}|{canonical['scheme']}"
        if "prefix" in canonical:
            name += f"|{canonical['prefix']}"
        instance = GameInstance(
            machine=arbiter.machine,
            graph=graph,
            ids=ids,
            spaces=list(arbiter.spaces),
            prefix=prefix,
            name=name,
        )
        return ResolvedQuery(instance=instance, key=game_instance_key(instance), name=name)
