"""The service's tiered read path: per-process LRU -> verdict store -> compute.

Tier 1 (:class:`TieredVerdictCache`'s LRU) answers hot keys in microseconds
from process memory.  Tier 2 is the shared persistent
:class:`~repro.sweep.store.VerdictStore` -- the same content-addressed
store the sweep orchestrator writes, so a daemon pointed at a sweep's
store starts warm, and verdicts computed online are visible to later
sweeps.  A store hit is promoted into the LRU on the way out.  Tier 3
(:class:`ComputeTier`) runs the compiled game engine; it is only reached
through the coalescer, which batches concurrent misses.

Every tier keeps hit/miss/latency counters, surfaced by the ``stats``
request so operators can see where queries are being answered.  The
compute tier additionally aggregates the engine-core telemetry -- the
per-instance verdict-memo counters (``memo_info``) and per-engine
transposition-cache counters (``transposition_info``) introduced with the
compiled core -- across every live cached engine.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.batch import GameInstance
from repro.engine.caching import LRUCache, MISSING
from repro.engine.canonical import CanonicalVerdictCache
from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, MetricsRegistry
from repro.obs.trace import RequestTrace, TraceLog, active
from repro.sweep.executor import evaluate_timed
from repro.sweep.store import VerdictStore

#: Bound on the compute tier's in-memory canonical ball cache (the daemon
#: is long-lived; sweeps use unbounded per-run caches instead).
CANONICAL_CACHE_ENTRIES = 1 << 18


class TieredVerdictCache:
    """Read path over tier 1 (LRU) and tier 2 (persistent store).

    Thread-compatible: the event loop is the only *lookup* caller in the
    daemon, but inserts may arrive from compute callbacks, so every access
    takes the internal lock (uncontended in the common case).
    """

    def __init__(
        self,
        store: Optional[VerdictStore] = None,
        lru_size: int = 4096,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.lru = LRUCache(lru_size).bind_metrics(self.registry, "repro_tier_lru")
        self.store = store
        self._lock = threading.Lock()
        self._store_hits = self.registry.counter(
            "repro_tier_store_hits_total", help="tier-2 store lookups that hit"
        )
        self._store_misses = self.registry.counter(
            "repro_tier_store_misses_total", help="tier-2 store lookups that missed"
        )
        self._store_promotions = self.registry.counter(
            "repro_tier_store_promotions_total",
            help="verdicts speculatively promoted store -> LRU by bulk lookups",
        )
        self._inserts = self.registry.counter(
            "repro_tier_inserts_total", help="fresh verdicts recorded into the tiers"
        )
        self._store_errors = self.registry.counter(
            "repro_tier_store_errors_total",
            help="tier-2 store operations that raised (request degraded to compute)",
        )
        self._store_skips = self.registry.counter(
            "repro_tier_store_skipped_total",
            help="tier-2 lookups skipped because the store circuit breaker was open",
        )
        self._lru_seconds = self.registry.histogram(
            "repro_tier_lru_seconds",
            buckets=LATENCY_BUCKETS_SECONDS,
            help="tier-1 LRU lookup latency",
        )
        self._store_seconds = self.registry.histogram(
            "repro_tier_store_seconds",
            buckets=LATENCY_BUCKETS_SECONDS,
            help="tier-2 store lookup latency (single and bulk)",
        )

    # Registry-backed counters, exposed as the plain ints they replaced.
    @property
    def store_hits(self) -> int:
        return self._store_hits.value

    @property
    def store_misses(self) -> int:
        return self._store_misses.value

    @property
    def store_promotions(self) -> int:
        return self._store_promotions.value

    @property
    def inserts(self) -> int:
        return self._inserts.value

    def lookup(self, key: str) -> Optional[Tuple[bool, str]]:
        """``(verdict, tier)`` when some tier knows *key*; ``None`` on full miss.

        Blocking convenience for synchronous callers; the daemon instead
        checks :meth:`lookup_lru` on the event loop and ships
        :meth:`lookup_store` (disk I/O, possibly a busy-timeout wait) to a
        worker thread.
        """
        hit = self.lookup_lru(key)
        if hit is not None:
            return hit
        return self.lookup_store(key)

    def lookup_lru(self, key: str) -> Optional[Tuple[bool, str]]:
        """Tier 1 only: the in-process LRU (microseconds, loop-safe)."""
        start = time.perf_counter()
        with self._lock:
            verdict = self.lru.get(key, MISSING)
        self._lru_seconds.observe(time.perf_counter() - start)
        if verdict is not MISSING:
            return bool(verdict), "lru"
        return None

    def lookup_store(self, key: str) -> Optional[Tuple[bool, str]]:
        """Tier 2 only: the persistent store, promoting hits into the LRU.

        May block on disk (up to the store's busy timeout under a
        concurrent writer) -- call from a worker thread in async contexts.
        """
        if self.store is None:
            return None
        start = time.perf_counter()
        stored = self.store.get(key)
        self._store_seconds.observe(time.perf_counter() - start)
        if stored is None:
            self._store_misses.inc()
            return None
        self._store_hits.inc()
        with self._lock:
            self.lru.put(key, bool(stored))
        return bool(stored), "store"

    def lookup_store_many(self, keys: Sequence[str]) -> Dict[str, bool]:
        """Tier 2 in bulk: one :meth:`~repro.sweep.store.VerdictStore.get_many`.

        Every found key is promoted into the LRU, so a multi-key lookup
        (the daemon promotes a whole scenario on its first store miss)
        answers all sibling keys from tier 1 afterwards.  Speculative
        promotions are counted separately (``store_promotions``), never as
        hits or misses -- per-query tier counters stay meaningful, with the
        caller recording the outcome of the one key it actually needed
        (:meth:`note_store_hit` / :meth:`note_store_miss`).
        """
        if self.store is None or not keys:
            return {}
        start = time.perf_counter()
        found = self.store.get_many(keys)
        self._store_seconds.observe(time.perf_counter() - start)
        self._store_promotions.inc(len(found))
        with self._lock:
            for key, verdict in found.items():
                self.lru.put(key, bool(verdict))
        return {key: bool(verdict) for key, verdict in found.items()}

    def note_store_hit(self) -> None:
        """Record one tier-2 hit discovered through a bulk lookup."""
        self._store_hits.inc()

    def note_store_miss(self) -> None:
        """Record one tier-2 miss discovered through a bulk lookup."""
        self._store_misses.inc()

    def note_store_error(self, op: str, error: BaseException) -> None:
        """Record one failed tier-2 operation (the request degrades)."""
        self._store_errors.inc()
        self.registry.counter(
            "repro_tier_store_errors_by_op_total",
            labels={"op": op},
            help="failed tier-2 store operations by operation",
        ).inc()

    def note_store_skipped(self) -> None:
        """Record one tier-2 lookup shed by an open circuit breaker."""
        self._store_skips.inc()

    def insert(
        self,
        key: str,
        verdict: bool,
        name: str = "",
        seconds: float = 0.0,
        persist: bool = True,
    ) -> None:
        """Record a freshly computed verdict in the LRU and (optionally) the store."""
        with self._lock:
            self.lru.put(key, bool(verdict))
        self._inserts.inc()
        if persist and self.store is not None:
            self.store.put(key, bool(verdict), name=name, seconds=seconds)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            lru_info = self.lru.info()
        store_size: Optional[int] = None
        if self.store is not None:
            try:
                store_size = len(self.store)
            except Exception:
                store_size = None
        return {
            "lru": {**lru_info, "seconds": round(self._lru_seconds.sum, 6)},
            "store": {
                "attached": self.store is not None,
                "size": store_size,
                "hits": self.store_hits,
                "misses": self.store_misses,
                "promotions": self.store_promotions,
                "errors": self._store_errors.value,
                "skipped": self._store_skips.value,
                "seconds": round(self._store_seconds.sum, 6),
            },
            "inserts": self.inserts,
        }


def _aggregate_infos(infos: Iterable[Dict[str, Optional[int]]]) -> Dict[str, int]:
    """Sum hit/miss/eviction/size counters over many cache ``info()`` dicts."""
    totals = {"size": 0, "hits": 0, "misses": 0, "evictions": 0, "caches": 0}
    for info in infos:
        totals["caches"] += 1
        for field in ("size", "hits", "misses", "evictions"):
            value = info.get(field)
            if isinstance(value, int):
                totals[field] += value
    return totals


class ComputeTier:
    """Tier 3: the compiled engine, with persistent engine caches.

    Batches are dispatched through the sweep executor's
    :func:`~repro.sweep.executor.evaluate_timed`, handing it two *long-lived*
    LRU caches: compiled instances keyed by their leaf-evaluator sharing
    group, and game engines keyed by the full engine sharing key.  Unlike a
    sweep shard -- whose caches die with the shard -- the daemon's engines
    survive across batches, so a miss on a previously seen ``(machine,
    graph, ids)`` group reuses the interned alphabet, the per-node verdict
    memo and the transposition cache from earlier traffic.

    Evaluation is serialized by a lock: the engines' memo state is not
    thread-safe, and the workload is pure Python (GIL-bound), so worker
    concurrency buys nothing for a single batch anyway.
    """

    def __init__(
        self,
        max_compiled: int = 64,
        max_engines: int = 256,
        store: Optional[VerdictStore] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_log: Optional[TraceLog] = None,
        faults=None,
        breaker=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace_log = trace_log
        #: Optional resilience hooks (the daemon wires both): the fault
        #: injector's ``compute-error`` failpoint, and the store circuit
        #: breaker gating canonical-cache flushes.
        self.faults = faults
        self.breaker = breaker
        self._compiled = LRUCache(max_compiled).bind_metrics(
            self.registry, "repro_compute_compiled_cache"
        )
        self._engines = LRUCache(max_engines).bind_metrics(
            self.registry, "repro_compute_engine_cache"
        )
        #: Canonical ball cache shared by every compiled instance the tier
        #: ever touches; store-backed when the daemon has a store, so the
        #: compute tier starts warm on neighborhoods any sweep ever solved.
        #: Bounded, like every other cache in the daemon: evicted entries
        #: stay re-promotable from the store.
        self.canonical = CanonicalVerdictCache(
            store=store, max_entries=CANONICAL_CACHE_ENTRIES
        )
        self._lock = threading.Lock()
        self._batches = self.registry.counter(
            "repro_compute_batches_total", help="batches dispatched to the engine tier"
        )
        self._computed = self.registry.counter(
            "repro_compute_verdicts_total", help="verdicts computed by the engine tier"
        )
        self._batch_seconds = self.registry.histogram(
            "repro_compute_batch_seconds",
            buckets=LATENCY_BUCKETS_SECONDS,
            help="wall time of one compute batch",
        )
        self._solve_seconds = self.registry.histogram(
            "repro_compute_solve_seconds",
            buckets=LATENCY_BUCKETS_SECONDS,
            help="per-instance engine solve time",
        )
        self._flush_failures = self.registry.counter(
            "repro_compute_canonical_flush_failures_total",
            help="canonical-cache store flushes that failed (verdicts unaffected)",
        )
        self._snapshot = self._build_stats(stale=False)

    # Registry-backed counters, exposed as the plain ints they replaced.
    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def computed(self) -> int:
        return self._computed.value

    @property
    def seconds(self) -> float:
        return self._batch_seconds.sum

    def evaluate(self, instances: Sequence[GameInstance]) -> Tuple[List[bool], List[float]]:
        """Verdicts and per-instance solve times, sharing cached engines.

        Each batch records a ``compute-batch`` trace (one ``engine`` span
        per instance, plus ``compile`` spans for cold groups) into the
        daemon's trace log -- the coalescer serves many requests from one
        batch, so batch-level traces are where the engine time is visible.
        """
        if self.faults is not None:
            # The chaos harness's engine failpoint: fires *before* the
            # batch lock, modeling an evaluation blowing up -- every waiter
            # of this batch gets the typed ``internal`` error, the daemon
            # survives.
            self.faults.check("compute-error")
        start = time.perf_counter()
        batch_trace = RequestTrace(
            op="compute-batch", name=instances[0].name if instances else ""
        )
        with self._lock:
            with active(batch_trace):
                verdicts, seconds = evaluate_timed(
                    instances,
                    compiled_cache=self._compiled,
                    engine_cache=self._engines,
                    canonical=self.canonical,
                )
            # Fresh node verdicts reach the store inside the batch (the
            # caller already runs evaluation off the event loop).  The
            # verdicts are already computed: a failed or breaker-shed flush
            # only costs persistence, never the answers.
            try:
                if self.breaker is None or self.breaker.allow():
                    self.canonical.flush()
                    if self.breaker is not None:
                        self.breaker.record_success()
                else:
                    self.canonical.drain_records()
            except Exception:  # noqa: BLE001 -- persistence is best-effort
                self._flush_failures.inc()
                if self.breaker is not None:
                    self.breaker.record_failure()
            self._batches.inc()
            self._computed.inc(len(verdicts))
            self._batch_seconds.observe(time.perf_counter() - start)
            for spent in seconds:
                self._solve_seconds.observe(spent)
            self._snapshot = self._build_stats(stale=False)
        batch_trace.annotate(instances=len(instances))
        if self.trace_log is not None:
            self.trace_log.record(batch_trace)
        return verdicts, seconds

    def _build_stats(self, stale: bool) -> Dict[str, object]:
        """Aggregate telemetry (caller holds the lock, or no batch has run)."""
        compiled = list(self._compiled.data.values())
        engines = list(self._engines.data.values())
        memo = _aggregate_infos(instance.memo_info() for instance in compiled)
        transposition = _aggregate_infos(
            engine.transposition_info() for engine in engines
        )
        # Republish the engine-core aggregates as gauges so /metrics shows
        # them without a stats request (the hot loop keeps plain ints).
        for field in ("size", "hits", "misses", "evictions"):
            self.registry.gauge(f"repro_engine_memo_{field}").set(memo[field])
            self.registry.gauge(f"repro_engine_transposition_{field}").set(
                transposition[field]
            )
        return {
            "batches": self.batches,
            "computed": self.computed,
            "seconds": round(self.seconds, 6),
            "flush_failures": self._flush_failures.value,
            "compiled_instances": len(compiled),
            "engines": len(engines),
            "memo": memo,
            "transposition": transposition,
            "canonical": self.canonical.info(),
            "stale": stale,
        }

    def engine_stats(self) -> Dict[str, object]:
        """Aggregated engine-core telemetry across every live cached engine.

        Never blocks: a ``stats`` request is handled on the daemon's event
        loop, and the batch lock can be held for a whole cold evaluation.
        If a batch is in flight, the snapshot taken at the end of the last
        batch is returned with ``stale: true`` instead of waiting.
        """
        if self._lock.acquire(blocking=False):
            try:
                self._snapshot = self._build_stats(stale=False)
            finally:
                self._lock.release()
            return self._snapshot
        return {**self._snapshot, "stale": True}
