"""CLI front end of the verdict service: ``serve``, ``query``, ``loadgen``.

Run a daemon over a persistent store::

    python -m repro serve --port 7464 --store sqlite://verdicts.sqlite

Ask it who wins (scenario instance or inline spec)::

    python -m repro query --connect 127.0.0.1:7464 --scenario separations --index 3
    python -m repro query --connect 127.0.0.1:7464 \
        --arbiter 3-colorable --family cycle --n 9 --scheme sequential

Measure it::

    python -m repro loadgen --connect 127.0.0.1:7464 --scenario smoke --duration 2
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any, Dict, Optional

from repro.service.client import (
    DEFAULT_PORT,
    ServiceClient,
    ServiceError,
    format_address,
    parse_address,
)
from repro.service.server import ServiceConfig, VerdictServer, VerdictService


def add_service_commands(commands: argparse._SubParsersAction) -> None:
    """Register ``serve`` / ``query`` / ``loadgen`` on the top-level parser."""
    serve = commands.add_parser("serve", help="run the online verdict daemon")
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT, help="TCP bind port (0: ephemeral)")
    serve.add_argument("--socket", default=None, metavar="PATH", help="serve on a UNIX socket instead of TCP")
    serve.add_argument("--store", default=None, metavar="PATH", help="persistent verdict store (sqlite:// or jsonl:// scheme, or a bare path)")
    serve.add_argument("--workers", type=int, default=1, metavar="N", help="run a supervised pool of N worker daemons behind a fingerprint-hash router (requires --store; sqlite:// recommended)")
    serve.add_argument("--probe-interval", type=float, default=0.5, help="pool supervisor: seconds between worker health probes")
    serve.add_argument("--restart-backoff", type=float, default=0.25, help="pool supervisor: first restart backoff (doubles per crash, capped)")
    serve.add_argument("--worker-id", type=int, default=None, help=argparse.SUPPRESS)
    serve.add_argument("--catch-up-from", type=int, default=None, help=argparse.SUPPRESS)
    serve.add_argument("--lru-size", type=int, default=4096, help="tier-1 in-process LRU capacity")
    serve.add_argument("--window-ms", type=float, default=2.0, help="micro-batching window in milliseconds")
    serve.add_argument("--max-batch", type=int, default=32, help="flush a batch early at this many pending queries")
    serve.add_argument("--max-pending", type=int, default=64, help="admission bound: queries past it get 'overloaded'")
    serve.add_argument("--http", type=int, default=None, metavar="PORT", help="also serve the HTTP operations console on this port (0: ephemeral)")
    serve.add_argument("--http-host", default="127.0.0.1", help="HTTP console bind host")
    serve.add_argument("--faults", default=None, metavar="SPEC", help="arm fault injection at startup (e.g. 'store-get-error=0.5:for=5'); also settable live via the admin op")
    serve.add_argument("--breaker-threshold", type=int, default=5, help="consecutive store failures before the store tier's breaker opens")
    serve.add_argument("--breaker-reset", type=float, default=5.0, help="seconds an open breaker waits before a half-open probe")
    serve.add_argument("--deadline-ms", type=int, default=None, help="default server-side deadline per request (requests may carry their own)")
    serve.add_argument("--drain-seconds", type=float, default=5.0, help="graceful-drain budget on SIGTERM/SIGINT (0: stop immediately)")
    serve.add_argument("--profile-hz", type=float, default=None, metavar="HZ", help="start the continuous sampling profiler at this rate (view at /profile; also controllable live via the admin op)")
    serve.add_argument("--log-level", choices=("debug", "info", "warning", "error"), default=None, help="structured-log threshold (default: REPRO_LOG_LEVEL env or info)")
    serve.set_defaults(handler=_command_serve)

    query = commands.add_parser("query", help="ask a running daemon who wins one game")
    query.add_argument("--connect", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="ADDR", help="daemon address (host:port or unix:PATH)")
    query.add_argument("--timeout", type=float, default=30.0, help="request timeout in seconds")
    query.add_argument("--scenario", default=None, help="registered scenario name")
    query.add_argument("--instance", default=None, help="instance name within --scenario")
    query.add_argument("--index", type=int, default=None, help="instance index within --scenario")
    query.add_argument("--arbiter", default=None, help="inline spec: arbiter name (e.g. 3-colorable)")
    query.add_argument("--family", default=None, help="inline spec: graph family (cycle, path, grid, ...)")
    query.add_argument("--n", type=int, default=None, help="inline spec: node-count parameter")
    query.add_argument("--rows", type=int, default=None, help="inline spec: grid rows")
    query.add_argument("--cols", type=int, default=None, help="inline spec: grid cols")
    query.add_argument("--degree", type=int, default=None, help="inline spec: random-regular degree")
    query.add_argument("--seed", type=int, default=None, help="inline spec: generator seed")
    query.add_argument("--scheme", default=None, help="inline spec: identifier scheme (small, sequential, random)")
    query.add_argument("--prefix", default=None, help="inline spec: quantifier prefix override (e.g. E, A)")
    query.add_argument("--stats", action="store_true", help="fetch daemon statistics instead of querying")
    query.add_argument("--ping", action="store_true", help="liveness probe instead of querying")
    query.set_defaults(handler=_command_query)

    loadgen = commands.add_parser("loadgen", help="closed-loop load test against a running daemon")
    loadgen.add_argument("--connect", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="ADDR", help="daemon address (host:port or unix:PATH)")
    loadgen.add_argument("--scenario", default="smoke", help="scenario whose instances form the workload")
    loadgen.add_argument("--workload", choices=("hot", "inline", "mixed"), default="hot", help="payload shape (hot: scenario indices; inline: cycle specs)")
    loadgen.add_argument("--clients", type=int, default=4, help="concurrent closed-loop clients")
    loadgen.add_argument("--requests", type=int, default=None, help="stop after this many requests")
    loadgen.add_argument("--duration", type=float, default=None, help="stop after this many seconds")
    loadgen.add_argument("--timeout", type=float, default=30.0, help="per-request timeout in seconds")
    loadgen.add_argument("--retries", type=int, default=0, help="retry retryable failures up to this many extra times (backoff + jitter)")
    loadgen.add_argument("--chaos", default=None, metavar="SPEC", help="arm this fault spec on the daemon for the run and clear it after")
    loadgen.set_defaults(handler=_command_loadgen)

    top = commands.add_parser("top", help="live terminal dashboard over a daemon's HTTP console")
    top.add_argument("--connect", default=None, metavar="ADDR", help="HTTP console address (host:port; default 127.0.0.1:7465)")
    top.add_argument("--interval", type=float, default=1.0, help="refresh interval in seconds")
    top.add_argument("--once", action="store_true", help="print one snapshot and exit (no ANSI screen control)")
    top.add_argument("--count", type=int, default=None, help="exit after this many refreshes")
    top.set_defaults(handler=_command_top)

    trace = commands.add_parser("trace", help="export a daemon's recent traces as Chrome trace-event JSON (Perfetto-loadable)")
    trace.add_argument("--connect", default=None, metavar="ADDR", help="HTTP console address (host:port; default 127.0.0.1:7465)")
    trace.add_argument("--export", default="-", metavar="FILE", help="write the trace JSON here ('-': stdout)")
    trace.add_argument("--limit", type=int, default=200, help="most recent traces to export (max 500)")
    trace.set_defaults(handler=_command_trace)


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _install_stop_handlers(loop: asyncio.AbstractEventLoop, stop: asyncio.Event) -> None:
    """Route SIGTERM *and* SIGINT to the same graceful-drain event.

    On loops without ``add_signal_handler`` (non-POSIX), a plain signal
    handler does the same job -- Ctrl-C must drain in-flight requests,
    never raise ``KeyboardInterrupt`` mid-request and drop them.
    """
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover -- non-POSIX loops
            signal.signal(
                signum, lambda _s, _f: loop.call_soon_threadsafe(stop.set)
            )


async def _serve(args: argparse.Namespace) -> int:
    from repro.obs.log import configure as configure_logging, get_logger

    if args.log_level is not None:
        configure_logging(level=args.log_level)
    if args.workers > 1:
        return await _serve_pool(args)
    log = get_logger("repro.serve")
    config = ServiceConfig(
        lru_size=args.lru_size,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
        default_deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        profile_hz=args.profile_hz,
        worker_id=args.worker_id,
        catch_up_from=args.catch_up_from,
    )
    service = VerdictService(store=args.store, config=config)
    if args.faults:
        service.faults.configure_spec(args.faults)
        log.info("faults-armed", spec=args.faults)
    server = VerdictServer(
        service, host=args.host, port=args.port, socket_path=args.socket
    )
    address = await server.start()
    log.info("listening", address=format_address(address))
    console = None
    if args.http is not None:
        from repro.obs.http import ConsoleServer

        console = ConsoleServer(service, host=args.http_host, port=args.http)
        http_host, http_port = await console.start()
        log.info(
            "console-started",
            url=f"http://{http_host}:{http_port}/",
            pages="/stats /metrics /profile /traces /bench",
        )
    if args.store:
        log.info("store-attached", store=args.store)
    if args.profile_hz is not None:
        log.info("profiler-started", hz=args.profile_hz)

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    _install_stop_handlers(loop, stop)
    try:
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serving, stopping}, return_when=asyncio.FIRST_COMPLETED)
        serving.cancel()
    finally:
        if console is not None:
            await console.stop()
        # Graceful drain: stop listening, answer in-flight requests, then
        # flush pending store writes inside service.close().
        await server.stop(drain_seconds=max(0.0, args.drain_seconds))
    log.info("stopped")
    return 0


def _worker_passthrough_args(args: argparse.Namespace) -> list:
    """The serve flags each pool worker inherits from the supervisor line."""
    passthrough = [
        "--lru-size", str(args.lru_size),
        "--window-ms", str(args.window_ms),
        "--max-batch", str(args.max_batch),
        "--max-pending", str(args.max_pending),
        "--breaker-threshold", str(args.breaker_threshold),
        "--breaker-reset", str(args.breaker_reset),
        "--drain-seconds", str(args.drain_seconds),
    ]
    if args.deadline_ms is not None:
        passthrough += ["--deadline-ms", str(args.deadline_ms)]
    if args.faults:
        passthrough += ["--faults", args.faults]
    if args.log_level is not None:
        passthrough += ["--log-level", args.log_level]
    return passthrough


async def _serve_pool(args: argparse.Namespace) -> int:
    from repro.obs.log import get_logger
    from repro.service.pool import PoolConfig, WorkerPool

    log = get_logger("repro.serve")
    if not args.store:
        print("--workers needs --store (the pool shares one verdict store)", file=sys.stderr)
        return 2
    pool = WorkerPool(
        store=args.store,
        config=PoolConfig(
            workers=args.workers,
            probe_interval=args.probe_interval,
            restart_backoff=args.restart_backoff,
            drain_seconds=max(0.1, args.drain_seconds),
            forward_timeout=max(5.0, args.drain_seconds + 5.0),
        ),
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        worker_args=_worker_passthrough_args(args),
    )
    address = await pool.start()
    log.info("pool-listening", address=format_address(address), workers=args.workers)
    console = None
    if args.http is not None:
        from repro.obs.http import ConsoleServer

        console = ConsoleServer(pool, host=args.http_host, port=args.http)
        http_host, http_port = await console.start()
        log.info(
            "console-started",
            url=f"http://{http_host}:{http_port}/",
            pages="/healthz /stats /metrics",
        )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    _install_stop_handlers(loop, stop)
    try:
        serving = asyncio.ensure_future(pool.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serving, stopping}, return_when=asyncio.FIRST_COMPLETED)
        serving.cancel()
    finally:
        if console is not None:
            await console.stop()
        # Rolling drain: each worker gets SIGTERM and its drain budget in
        # turn, so in-flight requests finish before the process goes away.
        await pool.stop()
    log.info("stopped")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover -- direct ^C without handler
        return 0


# ----------------------------------------------------------------------
# query
# ----------------------------------------------------------------------
def _inline_spec(args: argparse.Namespace) -> Optional[Dict[str, Any]]:
    spec: Dict[str, Any] = {}
    for key in ("arbiter", "family", "n", "rows", "cols", "degree", "seed", "scheme", "prefix"):
        value = getattr(args, key)
        if value is not None:
            spec[key] = value
    return spec or None


def _command_query(args: argparse.Namespace) -> int:
    address = parse_address(args.connect)
    spec = _inline_spec(args)
    if not args.stats and not args.ping:
        if (args.scenario is None) == (spec is None):
            print(
                "query needs exactly one of --scenario (with --instance or --index) "
                "or an inline spec (--arbiter/--family/...)",
                file=sys.stderr,
            )
            return 2
        if args.scenario is not None and (args.instance is None) == (args.index is None):
            print("--scenario needs exactly one of --instance or --index", file=sys.stderr)
            return 2
    try:
        with ServiceClient(address, timeout=args.timeout) as client:
            if args.ping:
                client.ping()
                print(json.dumps({"ok": True, "pong": True}))
                return 0
            if args.stats:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.scenario is not None:
                response = client.query_scenario(
                    args.scenario, instance=args.instance, index=args.index, check=False
                )
            else:
                response = client.query_spec(check=False, **spec)
    except (OSError, ServiceError) as error:
        print(f"cannot reach verdict service at {args.connect}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 3


# ----------------------------------------------------------------------
# loadgen
# ----------------------------------------------------------------------
def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import (
        inline_cycle_payloads,
        interleave,
        run_load,
        scenario_payloads,
    )

    address = parse_address(args.connect)
    if args.workload == "hot":
        payloads = scenario_payloads(args.scenario)
    elif args.workload == "inline":
        payloads = inline_cycle_payloads()
    else:
        payloads = interleave(scenario_payloads(args.scenario), inline_cycle_payloads())
    try:
        report = run_load(
            address,
            payloads,
            clients=args.clients,
            total=args.requests,
            duration=args.duration,
            label=args.workload,
            timeout=args.timeout,
            retries=args.retries,
            chaos=args.chaos,
        )
    except (OSError, ServiceError) as error:
        print(f"cannot reach verdict service at {args.connect}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# top
# ----------------------------------------------------------------------
def _command_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    return run_top(
        connect=args.connect,
        interval=args.interval,
        once=args.once,
        count=args.count,
    )


# ----------------------------------------------------------------------
# trace export
# ----------------------------------------------------------------------
def _command_trace(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    from repro.obs.http import DEFAULT_HTTP_PORT

    address = args.connect or f"127.0.0.1:{DEFAULT_HTTP_PORT}"
    if "://" not in address:
        address = f"http://{address}"
    limit = max(1, min(args.limit, 500))
    url = f"{address.rstrip('/')}/traces/export.json?limit={limit}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            document = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        print(f"cannot fetch {url}: {error}", file=sys.stderr)
        return 1
    if args.export == "-":
        print(document)
    else:
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(document)
        events = len(json.loads(document).get("traceEvents", []))
        print(
            f"wrote {events} trace events to {args.export} "
            "(load at https://ui.perfetto.dev or chrome://tracing)",
            file=sys.stderr,
        )
    return 0
