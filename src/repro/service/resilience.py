"""Resilience primitives for the verdict daemon: faults, breaker, retries.

The serving stack's failure story is built from three small, independently
testable pieces:

* :class:`FaultInjector` -- named **failpoints** threaded through the
  store, compute and transport layers.  Chaos tests (and ``repro serve
  --faults`` / ``loadgen --chaos``) flip them on a live daemon; production
  runs pay one dict lookup per failpoint.  Faults are probabilistic
  (``rate``), bounded (``times=N`` / ``for=SECONDS``) and deterministic
  under a seeded RNG, so a chaos run is reproducible.
* :class:`CircuitBreaker` -- consecutive store failures open the store
  tier; while open, reads skip straight to compute (the ``degraded``
  response flag) instead of paying a timeout per request, and writes are
  shed.  After ``reset_seconds`` a single half-open probe is let through;
  success re-closes the breaker, failure re-opens it.
* :class:`RetryPolicy` -- client-side exponential backoff with jitter and
  an overall deadline, applied to ``overloaded`` responses and transport/
  timeout errors.  The clock, sleep and RNG are injectable so backoff
  schedules are unit-testable against a fake clock.

:class:`FaultingStore` wraps any :class:`~repro.sweep.store.VerdictStore`
and applies the store failpoints on the way through -- the daemon always
wraps its store, so every store interaction (verdict reads/writes, node
verdicts, the session journal) shares one chaos surface.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.obs.log import get_logger
from repro.sweep.store import VerdictStore

_log = get_logger("repro.resilience")

#: Every failpoint the serving stack consults, and where it bites:
#:
#: ==================== ====================================================
#: failpoint            effect when it fires
#: ==================== ====================================================
#: ``store-get-error``  store reads raise :class:`InjectedFault`
#: ``store-put-error``  store writes (verdicts, nodes, journal) raise
#: ``store-get-latency`` store reads sleep ``latency`` seconds first
#: ``store-put-latency`` store writes sleep ``latency`` seconds first
#: ``compute-error``    the compute tier raises before evaluating a batch
#: ``conn-drop``        the server aborts the connection instead of replying
#:                      (query/mutate only; admin, stats and ping stay up)
#: ``slow-response``    request handling sleeps ``latency`` seconds
#: ==================== ====================================================
FAILPOINTS: Tuple[str, ...] = (
    "store-get-error",
    "store-put-error",
    "store-get-latency",
    "store-put-latency",
    "compute-error",
    "conn-drop",
    "slow-response",
)


class InjectedFault(OSError):
    """The error a fired ``*-error`` failpoint raises (an ``OSError`` so
    real-store error handling paths treat it exactly like disk trouble)."""

    def __init__(self, failpoint: str) -> None:
        super().__init__(f"injected fault at failpoint {failpoint!r}")
        self.failpoint = failpoint


class _Rule:
    """One armed failpoint (mutated only under the injector's lock)."""

    __slots__ = ("rate", "latency", "remaining", "until")

    def __init__(
        self,
        rate: float,
        latency: float,
        remaining: Optional[int],
        until: Optional[float],
    ) -> None:
        self.rate = rate
        self.latency = latency
        self.remaining = remaining
        self.until = until


def parse_fault_spec(spec: str) -> Dict[str, Dict[str, Any]]:
    """Parse a ``--faults`` / admin-op fault spec into configure kwargs.

    Grammar (comma-separated entries)::

        NAME[=RATE][:latency=SECONDS][:times=N][:for=SECONDS]
        NAME=off            -- disarm one failpoint

    Examples::

        store-get-error                      # always fail store reads
        store-put-error=0.5:times=20         # fail half of the next writes
        slow-response=1.0:latency=0.2:for=5  # 200ms stalls for 5 seconds
        store-get-error=off                  # disarm

    Raises ``ValueError`` on unknown failpoints or malformed entries, so
    both the CLI and the admin op reject bad specs up front.
    """
    parsed: Dict[str, Dict[str, Any]] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        head, *modifiers = entry.split(":")
        name, _, rate_text = head.partition("=")
        name = name.strip()
        if name not in FAILPOINTS:
            raise ValueError(
                f"unknown failpoint {name!r}; known: {', '.join(FAILPOINTS)}"
            )
        if rate_text.strip().lower() == "off":
            parsed[name] = {"off": True}
            continue
        kwargs: Dict[str, Any] = {}
        if rate_text:
            try:
                kwargs["rate"] = float(rate_text)
            except ValueError:
                raise ValueError(f"bad rate {rate_text!r} in {entry!r}") from None
        for modifier in modifiers:
            key, sep, value = modifier.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"bad modifier {modifier!r} in {entry!r}")
            try:
                if key == "latency":
                    kwargs["latency"] = float(value)
                elif key == "times":
                    kwargs["times"] = int(value)
                elif key == "for":
                    kwargs["for_seconds"] = float(value)
                else:
                    raise ValueError(
                        f"unknown modifier {key!r} in {entry!r} "
                        "(expected latency=, times= or for=)"
                    )
            except ValueError:
                raise
        parsed[name] = kwargs
    return parsed


class FaultInjector:
    """Named failpoints, armable at runtime (thread-safe, cheap when idle).

    ``check``/``delay``/``should_fire`` are the three probe spellings the
    serving stack uses; all of them consult the same rule table, decrement
    ``times`` budgets, honor ``for`` windows and count fires.  The RNG is
    seeded (default 0) so a given traffic order fires deterministically.
    """

    def __init__(self, registry=None, seed: int = 0, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._rules: Dict[str, _Rule] = {}
        self._rng = random.Random(seed)
        self._clock = clock
        self._registry = registry
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def configure(
        self,
        name: str,
        rate: float = 1.0,
        latency: float = 0.0,
        times: Optional[int] = None,
        for_seconds: Optional[float] = None,
        off: bool = False,
    ) -> None:
        """Arm (or, with ``off=True``, disarm) one failpoint."""
        if name not in FAILPOINTS:
            raise ValueError(
                f"unknown failpoint {name!r}; known: {', '.join(FAILPOINTS)}"
            )
        with self._lock:
            if off:
                self._rules.pop(name, None)
                disarmed = True
            else:
                disarmed = False
                until = None if for_seconds is None else self._clock() + for_seconds
                self._rules[name] = _Rule(
                    rate=max(0.0, min(1.0, rate)),
                    latency=max(0.0, latency),
                    remaining=times,
                    until=until,
                )
        if disarmed:
            _log.info("fault-disarmed", failpoint=name)
        else:
            _log.info(
                "fault-armed",
                failpoint=name,
                rate=rate,
                latency=latency,
                times=times,
                for_seconds=for_seconds,
            )

    def configure_spec(self, spec: str) -> None:
        """Arm every entry of a parsed ``--faults`` spec (atomic per entry)."""
        for name, kwargs in parse_fault_spec(spec).items():
            self.configure(name, **kwargs)

    def clear(self, name: Optional[str] = None) -> None:
        """Disarm one failpoint, or all of them."""
        with self._lock:
            if name is None:
                self._rules.clear()
            else:
                self._rules.pop(name, None)
        _log.info("faults-cleared", failpoint=name or "all")

    # ------------------------------------------------------------------
    def _fire(self, name: str) -> Optional[float]:
        """The armed latency when *name* fires now, else ``None``."""
        with self._lock:
            rule = self._rules.get(name)
            if rule is None:
                return None
            if rule.until is not None and self._clock() >= rule.until:
                del self._rules[name]
                return None
            if rule.rate < 1.0 and self._rng.random() >= rule.rate:
                return None
            if rule.remaining is not None:
                rule.remaining -= 1
                if rule.remaining <= 0:
                    del self._rules[name]
            latency = rule.latency
            self.fired[name] = self.fired.get(name, 0) + 1
        if self._registry is not None:
            self._registry.counter(
                "repro_faults_fired_total",
                labels={"failpoint": name},
                help="injected faults that fired",
            ).inc()
        # Debug level: firing is per-request-hot under chaos load, and a
        # suppressed debug line costs one comparison.
        _log.debug("fault-fired", failpoint=name, latency=latency)
        return latency

    def should_fire(self, name: str) -> bool:
        """Probe *name*; ``True`` exactly when the failpoint fires."""
        return self._fire(name) is not None

    def delay(self, name: str) -> float:
        """The sleep a latency failpoint demands now (0.0 when quiet)."""
        return self._fire(name) or 0.0

    def check(self, name: str) -> None:
        """Raise :class:`InjectedFault` when *name* fires (error failpoints)."""
        if self._fire(name) is not None:
            raise InjectedFault(name)

    # ------------------------------------------------------------------
    def active(self) -> Dict[str, Dict[str, Any]]:
        """The currently armed rules (admin-op and ``stats`` view)."""
        now = self._clock()
        with self._lock:
            return {
                name: {
                    "rate": rule.rate,
                    "latency": rule.latency,
                    "times_left": rule.remaining,
                    "expires_in": (
                        None if rule.until is None else max(0.0, rule.until - now)
                    ),
                }
                for name, rule in self._rules.items()
            }

    def snapshot(self) -> Dict[str, Any]:
        return {"active": self.active(), "fired": dict(self.fired)}


class CircuitBreaker:
    """A consecutive-failure breaker over the store tier.

    States: ``closed`` (normal), ``open`` (shedding -- :meth:`allow`
    answers ``False``), ``half-open`` (one probe in flight).  The breaker
    opens after ``failure_threshold`` *consecutive* failures; after
    ``reset_seconds`` in the open state a single caller is allowed through
    as a probe, whose outcome re-closes or re-opens the breaker.  All
    transitions are reported to ``on_transition(old, new)`` (the daemon
    wires a gauge, a counter and an event there).  Thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opened = 0
        self.transitions = 0
        self.probes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _transition(self, new_state: str) -> None:
        """Move to *new_state* (caller holds the lock)."""
        old_state, self._state = self._state, new_state
        if new_state == self.OPEN:
            self._opened_at = self._clock()
            self.opened += 1
        self.transitions += 1
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)

    def allow(self) -> bool:
        """May the caller touch the store now?  (Half-open: one probe.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.reset_seconds:
                    return False
                self._transition(self.HALF_OPEN)
                self._probe_in_flight = False
            # half-open: admit exactly one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            self.probes += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == self.HALF_OPEN:
                self._transition(self.OPEN)
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(self.OPEN)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_seconds": self.reset_seconds,
                "opened": self.opened,
                "transitions": self.transitions,
                "probes": self.probes,
            }


#: Error codes a :class:`RetryPolicy` treats as transient by default:
#: admission backpressure, connection-level failures, request timeouts, and
#: a pool router that momentarily has no live worker for the key.
RETRYABLE_CODES: FrozenSet[str] = frozenset(
    {"overloaded", "transport", "timeout", "unavailable"}
)


class RetryPolicy:
    """Exponential backoff with jitter and an overall deadline.

    ``backoff(attempt)`` is ``base_delay * multiplier**attempt`` capped at
    ``max_delay``, stretched by up to ``jitter`` (a fraction) of random
    extra so synchronized clients decorrelate.  ``deadline`` bounds the
    *total* time spent across attempts, measured from the first call's
    start.  Clock, sleep and RNG are injectable: unit tests drive the
    schedule with a fake clock and assert the exact delays.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        deadline: Optional[float] = None,
        retry_codes: Iterable[str] = RETRYABLE_CODES,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline = deadline
        self.retry_codes = frozenset(retry_codes)
        self.clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    def retryable(self, code: str) -> bool:
        return code in self.retry_codes

    def backoff(self, attempt: int) -> float:
        """The delay before retry number *attempt* (0-based), jittered."""
        delay = min(self.max_delay, self.base_delay * (self.multiplier ** attempt))
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * self._rng.random()
        return delay

    def may_retry(self, attempt: int, started: float) -> bool:
        """Is retry number *attempt* (0-based) still within budget?"""
        if attempt + 1 >= self.max_attempts:
            return False
        if self.deadline is not None:
            if self.clock() - started >= self.deadline:
                return False
        return True

    def sleep_for(self, attempt: int, started: Optional[float] = None) -> float:
        """Back off before retry *attempt*; returns the seconds slept.

        The sleep is clamped to whatever remains of the overall deadline,
        so a policy never oversleeps its own budget.
        """
        delay = self.backoff(attempt)
        if self.deadline is not None and started is not None:
            remaining = self.deadline - (self.clock() - started)
            delay = max(0.0, min(delay, remaining))
        if delay > 0.0:
            self._sleep(delay)
        return delay


class FaultingStore(VerdictStore):
    """A store wrapper applying the ``store-*`` failpoints on the way through.

    The daemon always wraps its store in one of these, so a single
    injector covers every store interaction: verdict reads/writes, the
    canonical node-verdict table, and session-journal appends.  Structural
    calls (``__len__``, ``items``, ``close``) and journal *reads* pass
    through unfaulted -- stats must stay observable and startup recovery
    must be able to read what an earlier, healthy daemon journaled.
    """

    def __init__(self, inner: VerdictStore, faults: FaultInjector) -> None:
        self.inner = inner
        self.faults = faults

    def _gate_get(self) -> None:
        delay = self.faults.delay("store-get-latency")
        if delay > 0.0:
            time.sleep(delay)
        self.faults.check("store-get-error")

    def _gate_put(self) -> None:
        delay = self.faults.delay("store-put-latency")
        if delay > 0.0:
            time.sleep(delay)
        self.faults.check("store-put-error")

    # -- verdicts ------------------------------------------------------
    def get(self, key):
        self._gate_get()
        return self.inner.get(key)

    def get_many(self, keys):
        self._gate_get()
        return self.inner.get_many(keys)

    def put(self, key, verdict, name="", seconds=0.0):
        self._gate_put()
        self.inner.put(key, verdict, name=name, seconds=seconds)

    def put_many(self, records):
        self._gate_put()
        self.inner.put_many(records)

    # -- node verdicts -------------------------------------------------
    def get_node(self, key):
        self._gate_get()
        return self.inner.get_node(key)

    def get_node_many(self, keys):
        self._gate_get()
        return self.inner.get_node_many(keys)

    def put_node(self, key, verdict):
        self._gate_put()
        self.inner.put_node(key, verdict)

    def put_node_many(self, records):
        self._gate_put()
        self.inner.put_node_many(records)

    def node_count(self):
        return self.inner.node_count()

    # -- session journal -----------------------------------------------
    def journal_append(self, session, seq, entry):
        self._gate_put()
        self.inner.journal_append(session, seq, entry)

    def journal_entries(self, session):
        return self.inner.journal_entries(session)

    def journal_sessions(self):
        return self.inner.journal_sessions()

    def journal_clear(self, session):
        self.inner.journal_clear(session)

    # -- replicated append log -----------------------------------------
    # Catch-up replay is a recovery path, like journal reads: a rejoining
    # worker must be able to stream the log even while failpoints rage.
    def last_seq(self):
        return self.inner.last_seq()

    def entries_since(self, seq, limit=None):
        return self.inner.entries_since(seq, limit=limit)

    # -- structure -----------------------------------------------------
    def __len__(self):
        return len(self.inner)

    def items(self):
        return self.inner.items()

    def close(self):
        self.inner.close()
