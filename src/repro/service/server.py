"""The online verdict daemon: an asyncio JSON-lines server over the tiers.

:class:`VerdictService` is the transport-free core -- parse a request,
admit or reject it, walk the read path (LRU -> store -> coalesced
compute), answer.  :class:`VerdictServer` puts it behind an ``asyncio``
TCP or UNIX-socket listener, one JSON line per request, responses in
request order per connection.  :class:`ServerThread` runs the whole thing
on a background thread for tests, benchmarks and the load generator.

Backpressure is explicit and bounded: at most ``max_pending`` queries may
be past admission at once (pending in the coalescer window, dispatched to
the compute pool, or reading a tier).  The next query is answered
immediately with an ``overloaded`` error instead of being queued, so
memory stays bounded and clients learn to back off; cheap ``ping`` /
``stats`` requests are always admitted.  ``peak_pending`` in the stats
response lets tests assert the bound was honored under load.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.engine.canonical import CanonicalVerdictCache
from repro.engine.dynamic import DeltaError, MutableInstance, delta_from_wire
from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, MetricsRegistry
from repro.obs.trace import RequestTrace, TraceLog, active
from repro.service.cache import ComputeTier, TieredVerdictCache
from repro.service.coalescer import RequestCoalescer
from repro.service.protocol import (
    MutateRequest,
    PingRequest,
    ProtocolError,
    QueryRequest,
    StatsRequest,
    encode_response,
    error_response,
    mutate_response,
    parse_request,
    pong_response,
    query_response,
    stats_response,
)
from repro.service.resolver import ResolvedQuery, Resolver
from repro.sweep.store import VerdictStore, open_store

#: A served endpoint: ("tcp", host, port) or ("unix", path).
Address = Tuple[Any, ...]

#: Longest accepted request line (64 KiB, the StreamReader default).
MAX_LINE_BYTES = 64 * 1024


class _DynamicSession:
    """One named mutable game living in the daemon.

    All access (mutate *and* query) runs on worker threads under
    ``lock``, so concurrent clients of the same session are serialized:
    a query observes either all or none of any delta batch, never a
    half-applied one.  The per-session canonical cache shares the store's
    ``node_verdicts`` table, so ball verdicts survive mutation exactly when
    their canonical signature does.
    """

    def __init__(self, name: str, mutable: MutableInstance) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.mutable = mutable
        self.created_at = time.time()
        self.mutate_batches = 0
        self.deltas_applied = 0
        self.queries = 0

    def info(self) -> Dict[str, Any]:
        return {
            "mutate_batches": self.mutate_batches,
            "deltas_applied": self.deltas_applied,
            "queries": self.queries,
            **self.mutable.info(),
        }


@dataclass
class ServiceConfig:
    """Tuning knobs of one daemon."""

    lru_size: int = 4096
    window_seconds: float = 0.002
    max_batch: int = 32
    max_pending: int = 64
    max_compiled: int = 64
    max_engines: int = 256
    max_sessions: int = 32


class VerdictService:
    """The transport-free service core (owns resolver, tiers, coalescer)."""

    def __init__(
        self,
        store: Union[VerdictStore, str, None] = None,
        config: Optional[ServiceConfig] = None,
        resolver: Optional[Resolver] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._owns_store = isinstance(store, str) or store is None
        self.store: Optional[VerdictStore] = (
            open_store(store) if isinstance(store, str) else store
        )
        #: The daemon's private metrics registry (every tier's instruments
        #: live here; ``/metrics`` and ``stats`` both read it).
        self.registry = MetricsRegistry()
        #: Recent per-request traces (plus the compute tier's batch traces).
        self.traces = TraceLog(capacity=256)
        #: Append-only (ring-buffered) record of notable service events.
        self.events = self.registry.events(
            "repro_service", capacity=512, help="notable daemon events"
        )
        self.resolver = resolver or Resolver()
        self.cache = TieredVerdictCache(
            self.store, lru_size=self.config.lru_size, registry=self.registry
        )
        self.compute = ComputeTier(
            max_compiled=self.config.max_compiled,
            max_engines=self.config.max_engines,
            store=self.store,
            registry=self.registry,
            trace_log=self.traces,
        )
        #: Scenarios whose keys were already bulk-promoted from the store.
        self._promoted_scenarios: set = set()
        self.coalescer = RequestCoalescer(
            self.compute.evaluate,
            window_seconds=self.config.window_seconds,
            max_batch=self.config.max_batch,
            on_computed=self._record_computed,
            registry=self.registry,
        )
        self.started_at = time.time()
        self._monotonic_start = time.perf_counter()
        #: Dynamic sessions by name; mutated and queried on worker threads
        #: under each session's own lock (see :class:`_DynamicSession`).
        self.sessions: Dict[str, _DynamicSession] = {}
        self.sessions_opened = 0
        self._request_counters = {
            op: self.registry.counter(
                "repro_requests_total", labels={"op": op}, help="requests by op"
            )
            for op in ("query", "mutate", "stats", "ping")
        }
        self._latency = {
            op: self.registry.histogram(
                "repro_request_seconds",
                buckets=LATENCY_BUCKETS_SECONDS,
                labels={"op": op},
                help="request handling latency by op",
            )
            for op in ("query", "mutate")
        }
        self._errors = self.registry.counter(
            "repro_errors_total", help="requests answered with an error response"
        )
        self._overloaded = self.registry.counter(
            "repro_overloaded_total", help="requests rejected by admission control"
        )
        self._store_put_failures = self.registry.counter(
            "repro_store_put_failures_total",
            help="asynchronous store writes that failed (verdicts still answered)",
        )
        self._pending_gauge = self.registry.gauge(
            "repro_pending", help="requests currently past admission"
        )
        self.pending = 0
        self.peak_pending = 0
        self._persist_futures: set = set()
        self._closed = False

    # Registry-backed counters, exposed as the plain ints they replaced.
    @property
    def request_counts(self) -> Dict[str, int]:
        return {op: counter.value for op, counter in self._request_counters.items()}

    @property
    def error_count(self) -> int:
        return self._errors.value

    @property
    def overloaded_count(self) -> int:
        return self._overloaded.value

    @property
    def store_put_failures(self) -> int:
        return self._store_put_failures.value

    # ------------------------------------------------------------------
    def _record_computed(self, entries, verdicts, seconds) -> None:
        """Record a computed batch: LRU now, the store off the event loop."""
        records = []
        for (key, _instance, name), verdict, spent in zip(entries, verdicts, seconds):
            self.cache.insert(key, verdict, name=name, seconds=spent, persist=False)
            records.append((key, bool(verdict), name, spent))
        if self.store is not None and records:
            # A store write is a COMMIT that can wait out a concurrent
            # writer's lock; keep it off the loop.  close() drains these.
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(None, self.store.put_many, records)
            self._persist_futures.add(future)
            future.add_done_callback(self._persist_done)

    def _persist_done(self, future) -> None:
        self._persist_futures.discard(future)
        if not future.cancelled() and future.exception() is not None:
            self._store_put_failures.inc()
            self.events.append("store-put-failure", error=repr(future.exception()))

    # ------------------------------------------------------------------
    async def handle_line(self, line: str) -> str:
        """One request line in, one response line out (never raises)."""
        try:
            request = parse_request(line)
        except ProtocolError as error:
            self._errors.inc()
            return encode_response(
                error_response(error.request_id, error.code, str(error))
            )
        response = await self.handle_request(request)
        return encode_response(response)

    async def handle_request(self, request) -> Dict[str, Any]:
        if isinstance(request, PingRequest):
            self._request_counters["ping"].inc()
            return pong_response(request.id)
        if isinstance(request, StatsRequest):
            # Snapshot first, count after: a stats poll must not count
            # itself, or every qps derived from two polls is off by one
            # (the ``repro top`` client polls once per refresh).
            response = stats_response(request.id, self.stats())
            self._request_counters["stats"].inc()
            return response
        if isinstance(request, MutateRequest):
            return await self._handle_mutate(request)
        assert isinstance(request, QueryRequest)
        return await self._handle_query(request)

    async def _handle_query(self, request: QueryRequest) -> Dict[str, Any]:
        self._request_counters["query"].inc()
        started = time.perf_counter()
        trace = RequestTrace(op="query", request_id=request.id)
        if self.pending >= self.config.max_pending:
            self._overloaded.inc()
            return error_response(
                request.id,
                "overloaded",
                f"{self.pending} queries already pending "
                f"(max_pending={self.config.max_pending}); retry later",
            )
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        self._pending_gauge.set(self.pending)
        try:
            with active(trace):
                if request.session is not None:
                    return await self._answer_session(request, trace)
                with trace.span("resolve"):
                    resolved = self.resolver.resolve(request)
                trace.name = resolved.name
                return await self._answer(request, resolved, trace)
        except ProtocolError as error:
            self._errors.inc()
            trace.annotate(error=error.code)
            self.events.append("query-error", code=error.code, id=request.id)
            return error_response(
                error.request_id if error.request_id is not None else request.id,
                error.code,
                str(error),
            )
        except Exception as error:  # noqa: BLE001 -- the daemon must not die
            self._errors.inc()
            trace.annotate(error="internal")
            self.events.append("query-error", code="internal", id=request.id)
            return error_response(request.id, "internal", repr(error))
        finally:
            self.pending -= 1
            self._pending_gauge.set(self.pending)
            self._latency["query"].observe(time.perf_counter() - started)
            self.traces.record(trace)

    #: Scenarios larger than this are not bulk-promoted (the first query
    #: would pay fingerprinting for every sibling instance).
    SCENARIO_PROMOTE_LIMIT = 512

    def _bulk_store_lookup(
        self, scenario: str, key: str
    ) -> Optional[Tuple[bool, str]]:
        """First store lookup of a scenario: promote all its keys at once.

        Runs on a worker thread.  One ``get_many`` round-trip pulls every
        stored sibling verdict into the LRU, so a warm-store client sweeping
        a scenario pays tier-2 latency once instead of once per instance.
        """
        keys = self.resolver.scenario_keys(scenario)
        if len(keys) > self.SCENARIO_PROMOTE_LIMIT:
            return self.cache.lookup_store(key)
        found = self.cache.lookup_store_many(keys)
        if key in found:
            self.cache.note_store_hit()
            return found[key], "store"
        self.cache.note_store_miss()
        return None

    async def _answer(
        self, request: QueryRequest, resolved: ResolvedQuery, trace: RequestTrace
    ) -> Dict[str, Any]:
        start = time.perf_counter()
        with trace.span("lru"):
            hit = self.cache.lookup_lru(resolved.key)
        if hit is None and self.store is not None:
            # Tier 2 is disk I/O (and can wait out a concurrent writer's
            # lock): run it on the loop's default worker pool, not the loop.
            # The span measures the wait as the request saw it, executor
            # queueing included.
            loop = asyncio.get_running_loop()
            scenario = request.scenario
            with trace.span("store"):
                if scenario is not None and scenario not in self._promoted_scenarios:
                    self._promoted_scenarios.add(scenario)
                    hit = await loop.run_in_executor(
                        None, self._bulk_store_lookup, scenario, resolved.key
                    )
                else:
                    hit = await loop.run_in_executor(
                        None, self.cache.lookup_store, resolved.key
                    )
        if hit is not None:
            verdict, tier = hit
            trace.annotate(source=tier, key=resolved.key)
            return query_response(
                request.id,
                verdict,
                source=tier,
                key=resolved.key,
                name=resolved.name,
                seconds=time.perf_counter() - start,
                trace=trace.breakdown(),
            )
        with trace.span("coalesce"):
            result = await self.coalescer.submit(
                resolved.key, resolved.instance, resolved.name
            )
        # The engine time inside the (shared) batch, attributed to this
        # request; the batch's own compile/engine spans live in the
        # compute tier's ``compute-batch`` trace.
        trace.add_span(
            "engine", result.seconds, deduped=result.deduped, batch=result.batch_size
        )
        source = "coalesced" if result.deduped else "compute"
        trace.annotate(source=source, key=resolved.key)
        return query_response(
            request.id,
            result.verdict,
            source=source,
            key=resolved.key,
            name=resolved.name,
            seconds=result.seconds,
            trace=trace.breakdown(),
        )

    # ------------------------------------------------------------------
    # Dynamic sessions
    # ------------------------------------------------------------------
    async def _handle_mutate(self, request: MutateRequest) -> Dict[str, Any]:
        self._request_counters["mutate"].inc()
        started = time.perf_counter()
        if self.pending >= self.config.max_pending:
            self._overloaded.inc()
            return error_response(
                request.id,
                "overloaded",
                f"{self.pending} requests already pending "
                f"(max_pending={self.config.max_pending}); retry later",
            )
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        self._pending_gauge.set(self.pending)
        try:
            session, opened = self._session_for_mutate(request)
            loop = asyncio.get_running_loop()
            applied, dirty, seconds = await loop.run_in_executor(
                None, self._mutate_session, session, request
            )
            return mutate_response(
                request.id,
                session=request.session,
                applied=applied,
                dirty=dirty,
                generation=session.mutable.compiled.generation,
                seconds=seconds,
                opened=opened,
            )
        except ProtocolError as error:
            self._errors.inc()
            self.events.append("mutate-error", code=error.code, id=request.id)
            return error_response(
                error.request_id if error.request_id is not None else request.id,
                error.code,
                str(error),
            )
        except Exception as error:  # noqa: BLE001 -- the daemon must not die
            self._errors.inc()
            self.events.append("mutate-error", code="internal", id=request.id)
            return error_response(request.id, "internal", repr(error))
        finally:
            self.pending -= 1
            self._pending_gauge.set(self.pending)
            self._latency["mutate"].observe(time.perf_counter() - started)

    def _session_for_mutate(
        self, request: MutateRequest
    ) -> Tuple[_DynamicSession, bool]:
        """The (possibly freshly opened) session a mutate addresses.

        Runs on the event loop with no awaits between the lookup and the
        insertion, so two concurrent opens of the same name cannot both
        create it.  Opening resolves and compiles synchronously -- the same
        loop-side cost the static query path pays in ``resolver.resolve``.
        """
        addressed = request.scenario is not None or request.spec is not None
        session = self.sessions.get(request.session)
        if session is not None:
            if addressed:
                raise ProtocolError(
                    "bad-request",
                    f"session {request.session!r} is already open; "
                    "later mutates carry only deltas",
                    request.id,
                )
            return session, False
        if not addressed:
            raise ProtocolError(
                "unknown-session",
                f"unknown session {request.session!r}; the opening mutate "
                "must carry 'scenario' or 'spec' addressing",
                request.id,
            )
        if len(self.sessions) >= self.config.max_sessions:
            raise ProtocolError(
                "session-limit",
                f"{len(self.sessions)} dynamic sessions already open "
                f"(max_sessions={self.config.max_sessions})",
                request.id,
            )
        resolved = self.resolver.resolve(
            QueryRequest(
                id=request.id,
                scenario=request.scenario,
                instance=request.instance,
                index=request.index,
                spec=request.spec,
            )
        )
        mutable = MutableInstance.from_game_instance(
            resolved.instance,
            canonical=CanonicalVerdictCache(store=self.store, max_entries=65536),
        )
        session = _DynamicSession(request.session, mutable)
        self.sessions[request.session] = session
        self.sessions_opened += 1
        return session, True

    def _mutate_session(
        self, session: _DynamicSession, request: MutateRequest
    ) -> Tuple[int, int, float]:
        """Worker-thread body of a mutate: decode, apply atomically, count."""
        start = time.perf_counter()
        with session.lock:
            mutable = session.mutable
            try:
                deltas = [
                    delta_from_wire(body, mutable.nodes) for body in request.deltas
                ]
                reports = mutable.apply_batch(deltas)
            except DeltaError as error:
                raise ProtocolError("bad-delta", str(error), request.id) from error
            session.mutate_batches += 1
            session.deltas_applied += len(reports)
            dirty = sum(len(report.dirty) for report in reports)
            return len(reports), dirty, time.perf_counter() - start

    async def _answer_session(
        self, request: QueryRequest, trace: RequestTrace
    ) -> Dict[str, Any]:
        session = self.sessions.get(request.session)
        if session is None:
            raise ProtocolError(
                "unknown-session",
                f"unknown session {request.session!r}; open it with a mutate "
                "carrying 'scenario' or 'spec' addressing",
                request.id,
            )
        trace.annotate(session=request.session)
        loop = asyncio.get_running_loop()
        # contextvars do not cross run_in_executor: hand the trace object
        # to the worker explicitly so its spans land on this request.
        return await loop.run_in_executor(
            None, self._query_session, session, request, trace
        )

    def _query_session(
        self, session: _DynamicSession, request: QueryRequest, trace: RequestTrace
    ) -> Dict[str, Any]:
        """Worker-thread body of a session query: tiers first, then repair.

        The session key is content-addressed over the *current* graph
        state, so the LRU/store tiers can never serve a pre-mutation
        verdict -- a mutated game has a fresh key, and a reverted game
        legitimately re-hits its old entry.
        """
        start = time.perf_counter()
        with session.lock:
            session.queries += 1
            mutable = session.mutable
            trace.name = mutable.name
            with trace.span("key"):
                key = mutable.key()
            with trace.span("lru"):
                hit = self.cache.lookup_lru(key)
            if hit is None:
                with trace.span("store"):
                    hit = self.cache.lookup_store(key)
            if hit is not None:
                verdict, tier = hit
                mutable.note_verdict(verdict)
                trace.annotate(source=tier, key=key)
                return query_response(
                    request.id,
                    verdict,
                    source=tier,
                    key=key,
                    name=mutable.name,
                    seconds=time.perf_counter() - start,
                    trace=trace.breakdown(),
                )
            with trace.span("repair"):
                verdict = mutable.verdict()
            seconds = time.perf_counter() - start
            self.cache.insert(key, verdict, name=mutable.name, seconds=seconds)
            canonical = mutable.compiled.canonical
            if canonical is not None:
                try:
                    canonical.flush()
                except Exception:  # noqa: BLE001 -- persistence is best-effort
                    self._store_put_failures.inc()
            trace.annotate(source="dynamic", key=key)
            return query_response(
                request.id,
                verdict,
                source="dynamic",
                key=key,
                name=mutable.name,
                seconds=seconds,
                trace=trace.breakdown(),
            )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Everything the ``stats`` request reports."""
        tiers = self.cache.stats()
        tiers["store"]["async_put_failures"] = self.store_put_failures
        tiers["compute"] = self.compute.engine_stats()
        return {
            "uptime_seconds": round(time.perf_counter() - self._monotonic_start, 3),
            # The raw monotonic reading behind uptime: two polls subtract
            # these to get the exact interval between them (``repro top``
            # derives true rates from it instead of trusting wall clocks).
            "since_monotonic": time.perf_counter(),
            "requests": dict(self.request_counts),
            "errors": self.error_count,
            "overloaded": self.overloaded_count,
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "max_pending": self.config.max_pending,
            "tiers": tiers,
            "coalescer": self.coalescer.stats(),
            "latency": {op: hist.snapshot() for op, hist in self._latency.items()},
            "traces": self.traces.stats(),
            "dynamic": {
                "sessions": len(self.sessions),
                "max_sessions": self.config.max_sessions,
                "opened": self.sessions_opened,
                "by_session": {
                    name: session.info() for name, session in self.sessions.items()
                },
            },
        }

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.coalescer.close()
        for session in self.sessions.values():
            canonical = session.mutable.compiled.canonical
            if canonical is not None and self.store is not None:
                try:
                    canonical.flush()
                except Exception:  # noqa: BLE001 -- persistence is best-effort
                    self._store_put_failures.inc()
        if self._persist_futures:
            # Verdicts already answered to clients must reach the store
            # before it is closed (daemon restarts start warm).
            await asyncio.gather(*list(self._persist_futures), return_exceptions=True)
        if self._owns_store and self.store is not None:
            self.store.close()


class VerdictServer:
    """The asyncio listener wrapping one :class:`VerdictService`."""

    def __init__(
        self,
        service: VerdictService,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.address: Optional[Address] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    async def start(self) -> Address:
        if self.socket_path is not None:
            parent = os.path.dirname(os.path.abspath(self.socket_path))
            os.makedirs(parent, exist_ok=True)
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path, limit=MAX_LINE_BYTES
            )
            self.address = ("unix", self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = ("tcp", self.host, port)
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.service.close()
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response = error_response(
                        None, "bad-request", f"request line exceeds {MAX_LINE_BYTES} bytes"
                    )
                    writer.write(encode_response(response).encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8", "replace").strip()
                if not text:
                    continue
                response_line = await self.service.handle_line(text)
                writer.write(response_line.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels live connections; close quietly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                pass


class ServerThread:
    """A daemon on a background thread, for tests / benchmarks / the loadgen.

    Creates the event loop, service and listener on the thread, exposes the
    bound address (and the service object, for in-process assertions), and
    tears everything down in :meth:`stop`.  Also usable as a context
    manager.
    """

    def __init__(
        self,
        store: Union[VerdictStore, str, None] = None,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        self._store = store
        self._config = config
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._http_port = http_port
        self._http_host = http_host
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[VerdictServer] = None
        self.service: Optional[VerdictService] = None
        self.console = None
        self.address: Optional[Address] = None
        #: ("host", port) of the HTTP console once started (None without one).
        self.http_address: Optional[Tuple[str, int]] = None

    def start(self) -> Address:
        self._thread = threading.Thread(
            target=self._run, name="verdict-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("verdict server failed to start") from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.service = VerdictService(store=self._store, config=self._config)
            self.server = VerdictServer(
                self.service,
                host=self._host,
                port=self._port,
                socket_path=self._socket_path,
            )
            self.address = loop.run_until_complete(self.server.start())
            if self._http_port is not None:
                from repro.obs.http import ConsoleServer

                self.console = ConsoleServer(
                    self.service, host=self._http_host, port=self._http_port
                )
                self.http_address = loop.run_until_complete(self.console.start())
        except BaseException as error:  # noqa: BLE001 -- reported to starter
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            if self.console is not None:
                loop.run_until_complete(self.console.stop())
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
