"""The online verdict daemon: an asyncio JSON-lines server over the tiers.

:class:`VerdictService` is the transport-free core -- parse a request,
admit or reject it, walk the read path (LRU -> store -> coalesced
compute), answer.  :class:`VerdictServer` puts it behind an ``asyncio``
TCP or UNIX-socket listener, one JSON line per request, responses in
request order per connection.  :class:`ServerThread` runs the whole thing
on a background thread for tests, benchmarks and the load generator.

Backpressure is explicit and bounded: at most ``max_pending`` queries may
be past admission at once (pending in the coalescer window, dispatched to
the compute pool, or reading a tier).  The next query is answered
immediately with an ``overloaded`` error instead of being queued, so
memory stays bounded and clients learn to back off; cheap ``ping`` /
``stats`` requests are always admitted.  ``peak_pending`` in the stats
response lets tests assert the bound was honored under load.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.canonical import CanonicalVerdictCache
from repro.engine.dynamic import DeltaError, MutableInstance, delta_from_wire
from repro.obs.log import get_logger
from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, MetricsRegistry
from repro.obs.prof import SamplingProfiler
from repro.obs.trace import RequestTrace, TraceLog, active
from repro.service.cache import ComputeTier, TieredVerdictCache
from repro.service.coalescer import RequestCoalescer
from repro.service.protocol import (
    AdminRequest,
    MutateRequest,
    PingRequest,
    ProtocolError,
    QueryRequest,
    StatsRequest,
    admin_response,
    encode_response,
    error_response,
    mutate_response,
    parse_request,
    pong_response,
    query_response,
    stats_response,
)
from repro.service.resilience import CircuitBreaker, FaultInjector, FaultingStore
from repro.service.resolver import ResolvedQuery, Resolver
from repro.sweep.store import VerdictStore, open_store

#: A served endpoint: ("tcp", host, port) or ("unix", path).
Address = Tuple[Any, ...]

#: Longest accepted request line (64 KiB, the StreamReader default).
MAX_LINE_BYTES = 64 * 1024

#: Structured event log of the serving layer (JSON lines on stderr by
#: default; ``repro serve --log-level`` / REPRO_LOG_LEVEL tune it).
_log = get_logger("repro.service")


class _DynamicSession:
    """One named mutable game living in the daemon.

    All access (mutate *and* query) runs on worker threads under
    ``lock``, so concurrent clients of the same session are serialized:
    a query observes either all or none of any delta batch, never a
    half-applied one.  The per-session canonical cache shares the store's
    ``node_verdicts`` table, so ball verdicts survive mutation exactly when
    their canonical signature does.
    """

    #: Most idempotency tokens remembered per session (oldest evicted).
    MAX_TOKENS = 512

    def __init__(
        self,
        name: str,
        mutable: MutableInstance,
        opening: Optional[Dict[str, Any]] = None,
        recovered: bool = False,
    ) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.mutable = mutable
        self.created_at = time.time()
        self.mutate_batches = 0
        self.deltas_applied = 0
        self.queries = 0
        #: The wire-form address the opening mutate carried -- journaled as
        #: sequence 0 so recovery can reopen the same game.
        self.opening: Dict[str, Any] = dict(opening or {})
        self.recovered = recovered
        self.journaled_open = False
        #: Once an append fails the journal is a divergent prefix: stop
        #: writing to it rather than let recovery silently skip a batch.
        self.journal_broken = False
        self.journal_seq = 1
        #: token -> (applied, dirty) for mutate retries after a lost reply.
        self.token_results: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()

    def remember_token(self, token: str, applied: int, dirty: int) -> None:
        self.token_results[token] = (applied, dirty)
        self.token_results.move_to_end(token)
        while len(self.token_results) > self.MAX_TOKENS:
            self.token_results.popitem(last=False)

    def info(self) -> Dict[str, Any]:
        return {
            "mutate_batches": self.mutate_batches,
            "deltas_applied": self.deltas_applied,
            "queries": self.queries,
            "recovered": self.recovered,
            **self.mutable.info(),
        }


@dataclass
class ServiceConfig:
    """Tuning knobs of one daemon."""

    lru_size: int = 4096
    window_seconds: float = 0.002
    max_batch: int = 32
    max_pending: int = 64
    max_compiled: int = 64
    max_engines: int = 256
    max_sessions: int = 32
    #: Consecutive store failures before the store tier's breaker opens.
    breaker_threshold: int = 5
    #: Seconds an open breaker waits before letting one probe through.
    breaker_reset_seconds: float = 5.0
    #: Server-side deadline applied when a request carries none (None = off).
    default_deadline_seconds: Optional[float] = None
    #: Start the continuous sampling profiler at this rate (None = attached
    #: but idle; start it later via the ``profile-start`` admin action).
    profile_hz: Optional[float] = None
    #: Pool identity: set by the supervisor on each forked worker (None =
    #: a solo daemon).  Reported in stats so the router can label metrics
    #: and track each worker's replication progress.
    worker_id: Optional[int] = None
    #: Replay the store's append log from this ``log_seq`` before accepting
    #: traffic (None = no catch-up).  A restarted pool worker is handed the
    #: last sequence it was seen at, so it rejoins warm instead of cold.
    catch_up_from: Optional[int] = None


class VerdictService:
    """The transport-free service core (owns resolver, tiers, coalescer)."""

    def __init__(
        self,
        store: Union[VerdictStore, str, None] = None,
        config: Optional[ServiceConfig] = None,
        resolver: Optional[Resolver] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        #: The daemon's private metrics registry (every tier's instruments
        #: live here; ``/metrics`` and ``stats`` both read it).
        self.registry = MetricsRegistry()
        #: Named failpoints (chaos testing): inert until configured via
        #: ``--faults`` or the ``admin`` op; every store call goes through
        #: the :class:`FaultingStore` wrapper so injected errors exercise
        #: the same degraded paths real store trouble does.
        self.faults = faults if faults is not None else FaultInjector(
            registry=self.registry
        )
        self._owns_store = isinstance(store, str) or store is None
        raw_store: Optional[VerdictStore] = (
            open_store(store) if isinstance(store, str) else store
        )
        self.store: Optional[VerdictStore] = (
            FaultingStore(raw_store, self.faults) if raw_store is not None else None
        )
        #: Recent per-request traces (plus the compute tier's batch traces).
        self.traces = TraceLog(capacity=256)
        #: The continuous sampling profiler (``/profile``, admin actions).
        #: Always attached; only sampling when started.
        self.profiler = SamplingProfiler(hz=self.config.profile_hz or 97.0)
        if self.config.profile_hz is not None:
            self.profiler.start()
        #: Append-only (ring-buffered) record of notable service events.
        self.events = self.registry.events(
            "repro_service", capacity=512, help="notable daemon events"
        )
        #: The store tier's circuit breaker: fed by every store get/put
        #: outcome; while open, reads are skipped (answers degrade to
        #: LRU -> compute) and writes are shed instead of attempted.
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_seconds=self.config.breaker_reset_seconds,
            on_transition=self._breaker_transition,
        )
        self._breaker_gauge = self.registry.gauge(
            "repro_breaker_state",
            help="store breaker state (0=closed, 1=half-open, 2=open)",
        )
        self.resolver = resolver or Resolver()
        self.cache = TieredVerdictCache(
            self.store, lru_size=self.config.lru_size, registry=self.registry
        )
        self.compute = ComputeTier(
            max_compiled=self.config.max_compiled,
            max_engines=self.config.max_engines,
            store=self.store,
            registry=self.registry,
            trace_log=self.traces,
            faults=self.faults,
            breaker=self.breaker,
        )
        #: Scenarios whose keys were already bulk-promoted from the store.
        self._promoted_scenarios: set = set()
        self.coalescer = RequestCoalescer(
            self.compute.evaluate,
            window_seconds=self.config.window_seconds,
            max_batch=self.config.max_batch,
            on_computed=self._record_computed,
            registry=self.registry,
        )
        self.started_at = time.time()
        self._monotonic_start = time.perf_counter()
        #: Dynamic sessions by name; mutated and queried on worker threads
        #: under each session's own lock (see :class:`_DynamicSession`).
        self.sessions: Dict[str, _DynamicSession] = {}
        self.sessions_opened = 0
        self._request_counters = {
            op: self.registry.counter(
                "repro_requests_total", labels={"op": op}, help="requests by op"
            )
            for op in ("query", "mutate", "stats", "ping", "admin")
        }
        self._latency = {
            op: self.registry.histogram(
                "repro_request_seconds",
                buckets=LATENCY_BUCKETS_SECONDS,
                labels={"op": op},
                help="request handling latency by op",
            )
            for op in ("query", "mutate")
        }
        self._errors = self.registry.counter(
            "repro_errors_total", help="requests answered with an error response"
        )
        self._overloaded = self.registry.counter(
            "repro_overloaded_total", help="requests rejected by admission control"
        )
        self._store_put_failures = self.registry.counter(
            "repro_store_put_failures_total",
            help="asynchronous store writes that failed (verdicts still answered)",
        )
        #: Per-error-code breakdown of the total above (stats + ``top``).
        self._put_failures_by_error: Dict[str, int] = {}
        self._degraded = self.registry.counter(
            "repro_degraded_total",
            help="responses answered without the store tier (breaker open or store error)",
        )
        self._deadline_exceeded = self.registry.counter(
            "repro_deadline_exceeded_total",
            help="requests abandoned at their server-side deadline",
        )
        self._store_writes_skipped = self.registry.counter(
            "repro_store_writes_skipped_total",
            help="store writes shed while the breaker was open",
        )
        self._journal_appends = self.registry.counter(
            "repro_journal_appends_total",
            help="session journal entries written",
        )
        self._journal_skipped = self.registry.counter(
            "repro_journal_skipped_total",
            help="session journal appends shed (breaker open or journal broken)",
        )
        self._pending_gauge = self.registry.gauge(
            "repro_pending", help="requests currently past admission"
        )
        self.pending = 0
        self.peak_pending = 0
        #: True once a graceful drain began: new queries/mutates are
        #: answered with a typed ``draining`` error, in-flight ones finish.
        self.draining = False
        self.sessions_recovered = 0
        #: Result of the last append-log catch-up replay (None until one ran).
        self.catch_up: Optional[Dict[str, Any]] = None
        self._persist_futures: set = set()
        self._closed = False

    # Registry-backed counters, exposed as the plain ints they replaced.
    @property
    def request_counts(self) -> Dict[str, int]:
        return {op: counter.value for op, counter in self._request_counters.items()}

    @property
    def error_count(self) -> int:
        return self._errors.value

    @property
    def overloaded_count(self) -> int:
        return self._overloaded.value

    @property
    def store_put_failures(self) -> int:
        return self._store_put_failures.value

    # ------------------------------------------------------------------
    def _breaker_transition(self, old: str, new: str) -> None:
        """Surface every breaker state change: gauge, counter, event."""
        self._breaker_gauge.set(
            {"closed": 0, "half-open": 1, "open": 2}.get(new, -1)
        )
        self.registry.counter(
            "repro_breaker_transitions_total",
            labels={"to": new},
            help="store breaker transitions by target state",
        ).inc()
        self.events.append("breaker", old=old, new=new)
        _log.warning("breaker-transition", old=old, new=new)

    def _count_store_put_failure(self, error: BaseException) -> None:
        """One failed store write: total, per-error-code counter, breaker."""
        self._store_put_failures.inc()
        code = type(error).__name__
        self.registry.counter(
            "repro_store_put_failures_by_error_total",
            labels={"error": code},
            help="failed store writes by error type",
        ).inc()
        self._put_failures_by_error[code] = self._put_failures_by_error.get(code, 0) + 1
        self.breaker.record_failure()
        self.events.append("store-put-failure", error=repr(error))
        _log.error("store-put-failure", error=repr(error), code=code)

    def _record_computed(self, entries, verdicts, seconds) -> None:
        """Record a computed batch: LRU now, the store off the event loop."""
        records = []
        for (key, _instance, name), verdict, spent in zip(entries, verdicts, seconds):
            self.cache.insert(key, verdict, name=name, seconds=spent, persist=False)
            records.append((key, bool(verdict), name, spent))
        if self.store is not None and records:
            if not self.breaker.allow():
                # The store tier is open: shed the write instead of feeding
                # the failure streak (the LRU already has the verdicts).
                self._store_writes_skipped.inc(len(records))
                return
            # A store write is a COMMIT that can wait out a concurrent
            # writer's lock; keep it off the loop.  close() drains these.
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(None, self.store.put_many, records)
            self._persist_futures.add(future)
            future.add_done_callback(self._persist_done)

    def _persist_done(self, future) -> None:
        self._persist_futures.discard(future)
        if future.cancelled():
            return
        error = future.exception()
        if error is None:
            self.breaker.record_success()
        else:
            self._count_store_put_failure(error)

    # ------------------------------------------------------------------
    async def handle_line(self, line: str) -> str:
        """One request line in, one response line out (never raises)."""
        try:
            request = parse_request(line)
        except ProtocolError as error:
            self._errors.inc()
            return encode_response(
                error_response(error.request_id, error.code, str(error))
            )
        response = await self.handle_request(request)
        return encode_response(response)

    async def handle_request(self, request) -> Dict[str, Any]:
        if isinstance(request, PingRequest):
            self._request_counters["ping"].inc()
            return pong_response(request.id)
        if isinstance(request, StatsRequest):
            # Snapshot first, count after: a stats poll must not count
            # itself, or every qps derived from two polls is off by one
            # (the ``repro top`` client polls once per refresh).
            response = stats_response(request.id, self.stats())
            self._request_counters["stats"].inc()
            return response
        if isinstance(request, AdminRequest):
            return self._handle_admin(request)
        if isinstance(request, MutateRequest):
            return await self._handle_mutate(request)
        assert isinstance(request, QueryRequest)
        return await self._handle_query(request)

    def _handle_admin(self, request: AdminRequest) -> Dict[str, Any]:
        """Inspect or reconfigure faults / the profiler on a live daemon."""
        self._request_counters["admin"].inc()
        if request.action == "set-faults":
            try:
                self.faults.configure_spec(request.spec or "")
            except ValueError as error:
                self._errors.inc()
                return error_response(request.id, "bad-request", str(error))
            self.events.append("faults-set", spec=request.spec)
            _log.info("faults-set", spec=request.spec)
        elif request.action == "clear-faults":
            self.faults.clear()
            self.events.append("faults-cleared")
            _log.info("faults-cleared")
        elif request.action in ("profile-start", "profile-stop", "profile-snapshot"):
            return self._handle_admin_profile(request)
        return admin_response(request.id, self.faults.snapshot())

    def _handle_admin_profile(self, request: AdminRequest) -> Dict[str, Any]:
        if request.action == "profile-start":
            hz: Optional[float] = None
            if request.spec:
                try:
                    hz = float(request.spec)
                except ValueError:
                    self._errors.inc()
                    return error_response(
                        request.id,
                        "bad-request",
                        f"profile-start spec must be a sampling rate in hz, "
                        f"got {request.spec!r}",
                    )
            try:
                started = self.profiler.start(hz=hz)
            except ValueError as error:
                self._errors.inc()
                return error_response(request.id, "bad-request", str(error))
            event = "profile-started" if started else "profile-already-running"
            self.events.append(event, hz=self.profiler.hz)
            _log.info(event, hz=self.profiler.hz)
            profile: Dict[str, Any] = self.profiler.status()
        elif request.action == "profile-stop":
            stopped = self.profiler.stop()
            event = "profile-stopped" if stopped else "profile-not-running"
            self.events.append(event, samples=self.profiler.status()["samples"])
            _log.info(event)
            profile = self.profiler.status()
        else:  # profile-snapshot
            profile = self.profiler.snapshot()
        return admin_response(request.id, self.faults.snapshot(), profile=profile)

    def _deadline_seconds(
        self, request: Union[QueryRequest, MutateRequest]
    ) -> Optional[float]:
        if request.deadline_ms is not None:
            return request.deadline_ms / 1000.0
        return self.config.default_deadline_seconds

    async def _handle_query(self, request: QueryRequest) -> Dict[str, Any]:
        self._request_counters["query"].inc()
        started = time.perf_counter()
        trace = RequestTrace(op="query", request_id=request.id)
        if self.draining:
            self._errors.inc()
            return error_response(
                request.id, "draining", "daemon is draining; no new work accepted"
            )
        if self.pending >= self.config.max_pending:
            self._overloaded.inc()
            return error_response(
                request.id,
                "overloaded",
                f"{self.pending} queries already pending "
                f"(max_pending={self.config.max_pending}); retry later",
            )
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        self._pending_gauge.set(self.pending)
        deadline = self._deadline_seconds(request)
        try:
            with active(trace):
                work = self._dispatch_query(request, trace)
                if deadline is not None:
                    return await asyncio.wait_for(work, timeout=deadline)
                return await work
        except asyncio.TimeoutError:
            self._errors.inc()
            self._deadline_exceeded.inc()
            trace.annotate(error="deadline-exceeded")
            self.events.append("query-error", code="deadline-exceeded", id=request.id)
            return error_response(
                request.id,
                "deadline-exceeded",
                f"query abandoned at its {deadline:.3f}s deadline",
            )
        except ProtocolError as error:
            self._errors.inc()
            trace.annotate(error=error.code)
            self.events.append("query-error", code=error.code, id=request.id)
            _log.debug("query-error", code=error.code, id=request.id)
            return error_response(
                error.request_id if error.request_id is not None else request.id,
                error.code,
                str(error),
            )
        except Exception as error:  # noqa: BLE001 -- the daemon must not die
            self._errors.inc()
            trace.annotate(error="internal")
            self.events.append("query-error", code="internal", id=request.id)
            _log.error("query-internal-error", id=request.id, error=repr(error))
            return error_response(request.id, "internal", repr(error))
        finally:
            self.pending -= 1
            self._pending_gauge.set(self.pending)
            self._latency["query"].observe(time.perf_counter() - started)
            self.traces.record(trace)

    async def _dispatch_query(
        self, request: QueryRequest, trace: RequestTrace
    ) -> Dict[str, Any]:
        """The deadline-wrapped body of one query (session or static)."""
        delay = self.faults.delay("slow-response")
        if delay > 0.0:
            await asyncio.sleep(delay)
        if request.session is not None:
            return await self._answer_session(request, trace)
        with trace.span("resolve"):
            resolved = self.resolver.resolve(request)
        trace.name = resolved.name
        return await self._answer(request, resolved, trace)

    #: Scenarios larger than this are not bulk-promoted (the first query
    #: would pay fingerprinting for every sibling instance).
    SCENARIO_PROMOTE_LIMIT = 512

    def _bulk_store_lookup(
        self, scenario: str, key: str
    ) -> Optional[Tuple[bool, str]]:
        """First store lookup of a scenario: promote all its keys at once.

        Runs on a worker thread.  One ``get_many`` round-trip pulls every
        stored sibling verdict into the LRU, so a warm-store client sweeping
        a scenario pays tier-2 latency once instead of once per instance.
        """
        keys = self.resolver.scenario_keys(scenario)
        if len(keys) > self.SCENARIO_PROMOTE_LIMIT:
            return self.cache.lookup_store(key)
        found = self.cache.lookup_store_many(keys)
        if key in found:
            self.cache.note_store_hit()
            return found[key], "store"
        self.cache.note_store_miss()
        return None

    async def _answer(
        self, request: QueryRequest, resolved: ResolvedQuery, trace: RequestTrace
    ) -> Dict[str, Any]:
        start = time.perf_counter()
        degraded = False
        with trace.span("lru"):
            hit = self.cache.lookup_lru(resolved.key)
        if hit is None and self.store is not None:
            # Tier 2 is disk I/O (and can wait out a concurrent writer's
            # lock): run it on the loop's default worker pool, not the loop.
            # The span measures the wait as the request saw it, executor
            # queueing included.  A store failure here degrades the answer
            # (LRU -> compute still yields a correct verdict) and feeds the
            # breaker; an open breaker skips the tier outright.
            loop = asyncio.get_running_loop()
            scenario = request.scenario
            with trace.span("store"):
                if not self.breaker.allow():
                    degraded = True
                    self.cache.note_store_skipped()
                else:
                    try:
                        if (
                            scenario is not None
                            and scenario not in self._promoted_scenarios
                        ):
                            self._promoted_scenarios.add(scenario)
                            hit = await loop.run_in_executor(
                                None, self._bulk_store_lookup, scenario, resolved.key
                            )
                        else:
                            hit = await loop.run_in_executor(
                                None, self.cache.lookup_store, resolved.key
                            )
                    except Exception as error:  # noqa: BLE001 -- degrade, not die
                        degraded = True
                        hit = None
                        self.cache.note_store_error("get", error)
                        self.breaker.record_failure()
                        self.events.append("store-get-failure", error=repr(error))
                    else:
                        self.breaker.record_success()
        if degraded:
            self._degraded.inc()
            trace.annotate(degraded=True)
        if hit is not None:
            verdict, tier = hit
            trace.annotate(source=tier, key=resolved.key)
            return query_response(
                request.id,
                verdict,
                source=tier,
                key=resolved.key,
                name=resolved.name,
                seconds=time.perf_counter() - start,
                trace=trace.breakdown(),
            )
        with trace.span("coalesce"):
            result = await self.coalescer.submit(
                resolved.key, resolved.instance, resolved.name
            )
        # The engine time inside the (shared) batch, attributed to this
        # request; the batch's own compile/engine spans live in the
        # compute tier's ``compute-batch`` trace.
        trace.add_span(
            "engine", result.seconds, deduped=result.deduped, batch=result.batch_size
        )
        source = "coalesced" if result.deduped else "compute"
        trace.annotate(source=source, key=resolved.key)
        return query_response(
            request.id,
            result.verdict,
            source=source,
            key=resolved.key,
            name=resolved.name,
            seconds=result.seconds,
            trace=trace.breakdown(),
            degraded=degraded,
        )

    # ------------------------------------------------------------------
    # Dynamic sessions
    # ------------------------------------------------------------------
    async def _handle_mutate(self, request: MutateRequest) -> Dict[str, Any]:
        self._request_counters["mutate"].inc()
        started = time.perf_counter()
        if self.draining:
            self._errors.inc()
            return error_response(
                request.id, "draining", "daemon is draining; no new work accepted"
            )
        if self.pending >= self.config.max_pending:
            self._overloaded.inc()
            return error_response(
                request.id,
                "overloaded",
                f"{self.pending} requests already pending "
                f"(max_pending={self.config.max_pending}); retry later",
            )
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        self._pending_gauge.set(self.pending)
        deadline = self._deadline_seconds(request)
        try:
            delay = self.faults.delay("slow-response")
            if delay > 0.0:
                await asyncio.sleep(delay)
            session, opened = self._session_for_mutate(request)
            loop = asyncio.get_running_loop()
            work = loop.run_in_executor(None, self._mutate_session, session, request)
            if deadline is not None:
                spent = time.perf_counter() - started
                applied, dirty, seconds, deduped, journaled = await asyncio.wait_for(
                    work, timeout=max(0.0, deadline - spent)
                )
            else:
                applied, dirty, seconds, deduped, journaled = await work
            return mutate_response(
                request.id,
                session=request.session,
                applied=applied,
                dirty=dirty,
                generation=session.mutable.compiled.generation,
                seconds=seconds,
                opened=opened,
                deduped=deduped,
                journaled=journaled,
            )
        except asyncio.TimeoutError:
            self._errors.inc()
            self._deadline_exceeded.inc()
            self.events.append(
                "mutate-error", code="deadline-exceeded", id=request.id
            )
            return error_response(
                request.id,
                "deadline-exceeded",
                f"mutate abandoned at its {deadline:.3f}s deadline; "
                "retry with the same token to learn its outcome",
            )
        except ProtocolError as error:
            self._errors.inc()
            self.events.append("mutate-error", code=error.code, id=request.id)
            return error_response(
                error.request_id if error.request_id is not None else request.id,
                error.code,
                str(error),
            )
        except Exception as error:  # noqa: BLE001 -- the daemon must not die
            self._errors.inc()
            self.events.append("mutate-error", code="internal", id=request.id)
            _log.error("mutate-internal-error", id=request.id, error=repr(error))
            return error_response(request.id, "internal", repr(error))
        finally:
            self.pending -= 1
            self._pending_gauge.set(self.pending)
            self._latency["mutate"].observe(time.perf_counter() - started)

    def _session_for_mutate(
        self, request: MutateRequest
    ) -> Tuple[_DynamicSession, bool]:
        """The (possibly freshly opened) session a mutate addresses.

        Runs on the event loop with no awaits between the lookup and the
        insertion, so two concurrent opens of the same name cannot both
        create it.  Opening resolves and compiles synchronously -- the same
        loop-side cost the static query path pays in ``resolver.resolve``.
        """
        addressed = request.scenario is not None or request.spec is not None
        session = self.sessions.get(request.session)
        if session is not None:
            if addressed:
                raise ProtocolError(
                    "bad-request",
                    f"session {request.session!r} is already open; "
                    "later mutates carry only deltas",
                    request.id,
                )
            return session, False
        if not addressed:
            raise ProtocolError(
                "unknown-session",
                f"unknown session {request.session!r}; the opening mutate "
                "must carry 'scenario' or 'spec' addressing",
                request.id,
            )
        if len(self.sessions) >= self.config.max_sessions:
            raise ProtocolError(
                "session-limit",
                f"{len(self.sessions)} dynamic sessions already open "
                f"(max_sessions={self.config.max_sessions})",
                request.id,
            )
        resolved = self.resolver.resolve(
            QueryRequest(
                id=request.id,
                scenario=request.scenario,
                instance=request.instance,
                index=request.index,
                spec=request.spec,
            )
        )
        mutable = MutableInstance.from_game_instance(
            resolved.instance,
            canonical=CanonicalVerdictCache(store=self.store, max_entries=65536),
        )
        opening: Dict[str, Any] = {}
        if request.scenario is not None:
            opening["scenario"] = request.scenario
            if request.instance is not None:
                opening["instance"] = request.instance
            if request.index is not None:
                opening["index"] = request.index
        if request.spec is not None:
            opening["spec"] = dict(request.spec)
        session = _DynamicSession(request.session, mutable, opening=opening)
        self.sessions[request.session] = session
        self.sessions_opened += 1
        return session, True

    def _mutate_session(
        self, session: _DynamicSession, request: MutateRequest
    ) -> Tuple[int, int, float, bool, bool]:
        """Worker-thread body of a mutate: dedup, decode, apply, journal."""
        start = time.perf_counter()
        with session.lock:
            mutable = session.mutable
            token = request.token
            if token is not None:
                cached = session.token_results.get(token)
                if cached is not None:
                    # A retry of a batch that already applied (the first
                    # reply was lost): report the remembered outcome, do
                    # not apply it twice.
                    applied, dirty = cached
                    return applied, dirty, time.perf_counter() - start, True, True
            try:
                deltas = [
                    delta_from_wire(body, mutable.nodes) for body in request.deltas
                ]
                reports = mutable.apply_batch(deltas)
            except DeltaError as error:
                raise ProtocolError("bad-delta", str(error), request.id) from error
            session.mutate_batches += 1
            session.deltas_applied += len(reports)
            dirty = sum(len(report.dirty) for report in reports)
            applied = len(reports)
            if token is not None:
                session.remember_token(token, applied, dirty)
            journaled = self._journal_mutation(session, request, applied, dirty)
            return applied, dirty, time.perf_counter() - start, False, journaled

    def _journal_mutation(
        self,
        session: _DynamicSession,
        request: MutateRequest,
        applied: int,
        dirty: int,
    ) -> bool:
        """Append one applied batch to the session's write-ahead journal.

        Sequence 0 records the opening address; sequence n the n-th
        applied batch in wire form (plus its outcome, so recovery rebuilds
        the idempotency-token memory).  Runs on the worker thread under the
        session lock, after the batch applied: every acknowledged mutation
        is either journaled or honestly reported ``journaled: false``.
        Once an append fails the journal is a divergent prefix -- later
        batches are not appended either, so recovery never silently skips
        a batch in the middle.
        """
        if self.store is None or session.journal_broken:
            if session.journal_broken:
                self._journal_skipped.inc()
            return False
        if not self.breaker.allow():
            # This batch applied but will not be journaled: any journal
            # written later would replay a divergent prefix, so stop.
            self._journal_skipped.inc()
            session.journal_broken = True
            return False
        entries: List[Tuple[int, Dict[str, Any]]] = []
        if not session.journaled_open:
            entries.append((0, {"kind": "open", "address": dict(session.opening)}))
        batch_entry: Dict[str, Any] = {
            "kind": "deltas",
            "deltas": [dict(body) for body in request.deltas],
            "applied": applied,
            "dirty": dirty,
        }
        if request.token is not None:
            batch_entry["token"] = request.token
        entries.append((session.journal_seq, batch_entry))
        try:
            for seq, entry in entries:
                self.store.journal_append(session.name, seq, entry)
                if entry["kind"] == "open":
                    session.journaled_open = True
                else:
                    session.journal_seq = seq + 1
            self.breaker.record_success()
            self._journal_appends.inc(len(entries))
            return True
        except Exception as error:  # noqa: BLE001 -- journaling is best-effort
            session.journal_broken = True
            self._count_store_put_failure(error)
            _log.error("journal-broken", session=session.name, error=repr(error))
            return False

    def recover_sessions(self) -> int:
        """Replay journaled dynamic sessions from the store (post-crash).

        Called once at startup, before serving.  Each journaled session is
        reopened from its recorded address and every delta batch re-applied
        in sequence; the rebuilt graph is content-addressed, so a later
        ``query_session`` answers exactly what the pre-crash daemon would
        have.  A journal that cannot be replayed (store trouble, an address
        that no longer resolves) is skipped with an event -- recovery is
        best-effort and must never stop the daemon from starting.
        """
        if self.store is None:
            return 0
        try:
            names = self.store.journal_sessions()
        except Exception as error:  # noqa: BLE001 -- recovery is best-effort
            self.events.append("recover-failed", error=repr(error))
            _log.error("recover-failed", error=repr(error))
            return 0
        recovered = 0
        for name in names:
            if name in self.sessions:
                continue
            if len(self.sessions) >= self.config.max_sessions:
                self.events.append("session-recover-skipped", session=name)
                continue
            try:
                entries = self.store.journal_entries(name)
                session = self._replay_journal(name, entries)
            except Exception as error:  # noqa: BLE001 -- skip the bad journal
                self.events.append(
                    "session-recover-failed", session=name, error=repr(error)
                )
                _log.error("session-recover-failed", session=name, error=repr(error))
                continue
            if session is None:
                continue
            self.sessions[name] = session
            self.sessions_opened += 1
            recovered += 1
            self.events.append("session-recovered", session=name, entries=len(entries))
            _log.info("session-recovered", session=name, entries=len(entries))
        self.sessions_recovered += recovered
        return recovered

    def catch_up_from_log(self, from_seq: int) -> Dict[str, Any]:
        """Replay the store's append log from *from_seq* into the warm tiers.

        The pod-style (re)join path: before a pool worker starts accepting
        traffic, it streams every ``(log_seq, kind, record)`` its siblings
        appended since it last looked and applies the verdict entries to
        its LRU (no re-persist -- the entries came *from* the store).
        Journal entries are not re-applied here; :meth:`recover_sessions`
        already rebuilt session state from the authoritative per-session
        journal.  Returns and remembers a summary (``stats()`` reports it
        under ``worker.catch_up``), so the supervisor can verify a worker
        replayed the log before routing to it.
        """
        summary: Dict[str, Any] = {
            "from_seq": int(from_seq),
            "to_seq": int(from_seq),
            "replayed": 0,
            "verdicts": 0,
            "journal": 0,
        }
        if self.store is not None:
            try:
                for seq, kind, record in self.store.entries_since(int(from_seq)):
                    summary["to_seq"] = seq
                    summary["replayed"] += 1
                    if kind == "verdict":
                        summary["verdicts"] += 1
                        self.cache.insert(
                            record["key"],
                            bool(record["verdict"]),
                            name=record.get("name", ""),
                            seconds=float(record.get("seconds", 0.0)),
                            persist=False,
                        )
                    elif kind == "journal":
                        summary["journal"] += 1
            except Exception as error:  # noqa: BLE001 -- catch-up is best-effort
                summary["error"] = repr(error)
                self.events.append("catch-up-failed", error=repr(error))
                _log.error("catch-up-failed", error=repr(error))
        self.catch_up = summary
        self.events.append(
            "catch-up",
            from_seq=summary["from_seq"],
            to_seq=summary["to_seq"],
            replayed=summary["replayed"],
        )
        _log.info(
            "catch-up",
            from_seq=summary["from_seq"],
            to_seq=summary["to_seq"],
            replayed=summary["replayed"],
        )
        return summary

    def _replay_journal(
        self, name: str, entries: List[Tuple[int, Dict[str, Any]]]
    ) -> Optional[_DynamicSession]:
        """One session rebuilt from its journal (None if it has no open)."""
        if not entries or entries[0][1].get("kind") != "open":
            return None
        address = entries[0][1].get("address") or {}
        resolved = self.resolver.resolve(
            QueryRequest(
                scenario=address.get("scenario"),
                instance=address.get("instance"),
                index=address.get("index"),
                spec=address.get("spec"),
            )
        )
        mutable = MutableInstance.from_game_instance(
            resolved.instance,
            canonical=CanonicalVerdictCache(store=self.store, max_entries=65536),
        )
        session = _DynamicSession(name, mutable, opening=dict(address), recovered=True)
        session.journaled_open = True
        last_seq = 0
        for seq, entry in entries[1:]:
            if entry.get("kind") != "deltas":
                continue
            deltas = [
                delta_from_wire(body, mutable.nodes)
                for body in entry.get("deltas", ())
            ]
            reports = mutable.apply_batch(deltas)
            session.mutate_batches += 1
            session.deltas_applied += len(reports)
            token = entry.get("token")
            if token:
                session.remember_token(
                    token,
                    int(entry.get("applied", len(reports))),
                    int(entry.get("dirty", 0)),
                )
            last_seq = max(last_seq, seq)
        session.journal_seq = last_seq + 1
        return session

    async def _answer_session(
        self, request: QueryRequest, trace: RequestTrace
    ) -> Dict[str, Any]:
        session = self.sessions.get(request.session)
        if session is None:
            raise ProtocolError(
                "unknown-session",
                f"unknown session {request.session!r}; open it with a mutate "
                "carrying 'scenario' or 'spec' addressing",
                request.id,
            )
        trace.annotate(session=request.session)
        loop = asyncio.get_running_loop()
        # contextvars do not cross run_in_executor: hand the trace object
        # to the worker explicitly so its spans land on this request.
        return await loop.run_in_executor(
            None, self._query_session, session, request, trace
        )

    def _query_session(
        self, session: _DynamicSession, request: QueryRequest, trace: RequestTrace
    ) -> Dict[str, Any]:
        """Worker-thread body of a session query: tiers first, then repair.

        The session key is content-addressed over the *current* graph
        state, so the LRU/store tiers can never serve a pre-mutation
        verdict -- a mutated game has a fresh key, and a reverted game
        legitimately re-hits its old entry.
        """
        start = time.perf_counter()
        degraded = False
        with session.lock:
            session.queries += 1
            mutable = session.mutable
            trace.name = mutable.name
            with trace.span("key"):
                key = mutable.key()
            with trace.span("lru"):
                hit = self.cache.lookup_lru(key)
            if hit is None and self.store is not None:
                with trace.span("store"):
                    if not self.breaker.allow():
                        degraded = True
                        self.cache.note_store_skipped()
                    else:
                        try:
                            hit = self.cache.lookup_store(key)
                        except Exception as error:  # noqa: BLE001 -- degrade
                            degraded = True
                            self.cache.note_store_error("get", error)
                            self.breaker.record_failure()
                        else:
                            self.breaker.record_success()
            if hit is not None:
                verdict, tier = hit
                mutable.note_verdict(verdict)
                trace.annotate(source=tier, key=key)
                return query_response(
                    request.id,
                    verdict,
                    source=tier,
                    key=key,
                    name=mutable.name,
                    seconds=time.perf_counter() - start,
                    trace=trace.breakdown(),
                )
            with trace.span("repair"):
                verdict = mutable.verdict()
            seconds = time.perf_counter() - start
            try:
                if self.store is None or self.breaker.allow():
                    self.cache.insert(key, verdict, name=mutable.name, seconds=seconds)
                    if self.store is not None:
                        self.breaker.record_success()
                else:
                    degraded = True
                    self._store_writes_skipped.inc()
                    self.cache.insert(
                        key, verdict, name=mutable.name, seconds=seconds, persist=False
                    )
            except Exception as error:  # noqa: BLE001 -- the LRU already has it
                degraded = True
                self._count_store_put_failure(error)
            canonical = mutable.compiled.canonical
            if canonical is not None:
                try:
                    if self.store is None or self.breaker.allow():
                        canonical.flush()
                    else:
                        canonical.drain_records()
                except Exception as error:  # noqa: BLE001 -- best-effort
                    self._count_store_put_failure(error)
            if degraded:
                self._degraded.inc()
                trace.annotate(degraded=True)
            trace.annotate(source="dynamic", key=key)
            return query_response(
                request.id,
                verdict,
                source="dynamic",
                key=key,
                name=mutable.name,
                seconds=seconds,
                trace=trace.breakdown(),
                degraded=degraded,
            )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Everything the ``stats`` request reports."""
        tiers = self.cache.stats()
        tiers["store"]["async_put_failures"] = self.store_put_failures
        tiers["store"]["put_failures_by_error"] = dict(self._put_failures_by_error)
        tiers["store"]["writes_skipped"] = int(self._store_writes_skipped.value)
        tiers["compute"] = self.compute.engine_stats()
        now_monotonic = time.perf_counter()
        # Every stats poll leaves a compact sample in the registry's ring:
        # the time series behind /stats/history and the top sparklines.
        self.registry.record_sample(
            {
                "since_monotonic": now_monotonic,
                "uptime_seconds": round(now_monotonic - self._monotonic_start, 3),
                "queries": self.request_counts.get("query", 0),
                "mutates": self.request_counts.get("mutate", 0),
                "errors": self.error_count,
                "pending": self.pending,
                "lru_hits": tiers["lru"].get("hits", 0),
                "lru_misses": tiers["lru"].get("misses", 0),
                "store_hits": tiers["store"].get("hits", 0),
                "computed": tiers["compute"].get("computed", 0),
                "query_p50_ms": round(
                    self._latency["query"].percentile(0.50) * 1000.0, 4
                ),
                "query_p99_ms": round(
                    self._latency["query"].percentile(0.99) * 1000.0, 4
                ),
            }
        )
        return {
            "uptime_seconds": round(time.perf_counter() - self._monotonic_start, 3),
            # The raw monotonic reading behind uptime: two polls subtract
            # these to get the exact interval between them (``repro top``
            # derives true rates from it instead of trusting wall clocks).
            "since_monotonic": time.perf_counter(),
            "requests": dict(self.request_counts),
            "errors": self.error_count,
            "overloaded": self.overloaded_count,
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "max_pending": self.config.max_pending,
            "tiers": tiers,
            "coalescer": self.coalescer.stats(),
            "latency": {op: hist.snapshot() for op, hist in self._latency.items()},
            "traces": self.traces.stats(),
            "profiler": self.profiler.status(),
            "samples": self.registry.sample_stats(),
            "resilience": {
                "breaker": self.breaker.snapshot(),
                "faults": self.faults.snapshot(),
                "degraded": self._degraded.value,
                "deadline_exceeded": self._deadline_exceeded.value,
                "draining": self.draining,
                "sessions_recovered": self.sessions_recovered,
                "journal_appends": self._journal_appends.value,
                "journal_skipped": self._journal_skipped.value,
            },
            "dynamic": {
                "sessions": len(self.sessions),
                "max_sessions": self.config.max_sessions,
                "opened": self.sessions_opened,
                "recovered": self.sessions_recovered,
                "by_session": {
                    name: session.info() for name, session in self.sessions.items()
                },
            },
            "worker": self.worker_info(),
        }

    def worker_info(self) -> Dict[str, Any]:
        """Pool identity and replication progress (``stats.worker``).

        ``log_seq`` is the store's newest append sequence as this worker
        sees it: the supervisor records it at every health probe and hands
        it back as ``--catch-up-from`` when the worker is restarted.
        """
        log_seq = 0
        if self.store is not None:
            try:
                log_seq = self.store.last_seq()
            except Exception:  # noqa: BLE001 -- stats must stay observable
                log_seq = -1
        return {
            "id": self.config.worker_id,
            "pid": os.getpid(),
            "log_seq": log_seq,
            "catch_up": self.catch_up,
        }

    def healthz(self) -> Tuple[bool, Dict[str, Any]]:
        """One liveness predicate for every prober (LBs, the supervisor).

        Healthy means "send me traffic": not draining and the store
        breaker is not open.  A half-open breaker still reports healthy --
        the daemon is probing its own store and answering degraded, which
        beats ejecting it from rotation.
        """
        breaker_state = self.breaker.state
        healthy = not self.draining and breaker_state != "open"
        return healthy, {
            "healthy": healthy,
            "draining": self.draining,
            "breaker": breaker_state,
        }

    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting queries/mutates (stats and ping still answer)."""
        if not self.draining:
            self.draining = True
            self.events.append("drain-begin", pending=self.pending)
            _log.info("drain-begin", pending=self.pending)

    async def drain(self, timeout: float = 5.0) -> None:
        """Graceful drain: reject new work, finish everything in flight.

        Already-admitted requests complete normally (the coalescer's
        pending batches are flushed and awaited, not failed); once
        *timeout* passes, whatever is still pending is left to
        :meth:`close`'s fail-fast path.
        """
        self.begin_drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        while self.pending > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await self.coalescer.drain()
        self.events.append("drain-end", pending=self.pending)
        _log.info("drain-end", pending=self.pending)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.profiler.stop()
        await self.coalescer.close()
        for session in self.sessions.values():
            canonical = session.mutable.compiled.canonical
            if canonical is not None and self.store is not None:
                try:
                    canonical.flush()
                except Exception as error:  # noqa: BLE001 -- best-effort
                    self._count_store_put_failure(error)
        if self._persist_futures:
            # Verdicts already answered to clients must reach the store
            # before it is closed (daemon restarts start warm).
            await asyncio.gather(*list(self._persist_futures), return_exceptions=True)
        if self._owns_store and self.store is not None:
            self.store.close()


class VerdictServer:
    """The asyncio listener wrapping one :class:`VerdictService`."""

    def __init__(
        self,
        service: VerdictService,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.address: Optional[Address] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    async def start(self) -> Address:
        # Crash recovery first: journaled dynamic sessions must be live
        # again before the first client connects, and a rejoining pool
        # worker replays the shared append log before its socket exists --
        # the supervisor's readiness ping doubles as "caught up".
        self.service.recover_sessions()
        if self.service.config.catch_up_from is not None:
            self.service.catch_up_from_log(self.service.config.catch_up_from)
        if self.socket_path is not None:
            parent = os.path.dirname(os.path.abspath(self.socket_path))
            os.makedirs(parent, exist_ok=True)
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path, limit=MAX_LINE_BYTES
            )
            self.address = ("unix", self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = ("tcp", self.host, port)
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self, drain_seconds: float = 0.0) -> None:
        """Stop listening; optionally drain in-flight work first.

        With ``drain_seconds > 0`` this is the graceful-shutdown path
        (SIGTERM): the listener closes immediately so no new connections
        arrive, admitted requests get up to that long to finish (new ones
        are answered ``draining``), and only then are the remaining
        connections cancelled and the service closed -- which flushes
        pending persists and session canonicals to the store.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain_seconds > 0.0:
            await self.service.drain(timeout=drain_seconds)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.service.close()
        if self.socket_path is not None and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------
    def _should_drop(self, text: str) -> bool:
        """Does the ``conn-drop`` failpoint eat this request's reply?

        Only data-plane requests (query/mutate) are dropped: the control
        plane -- ``admin`` (to clear the faults!), ``stats``, ``ping`` --
        stays reachable, so a chaos run can always observe and disarm.
        """
        faults = self.service.faults
        if "conn-drop" not in faults.active():
            return False
        try:
            op = json.loads(text).get("op")
        except (ValueError, AttributeError):
            op = None
        if op in ("admin", "stats", "ping"):
            return False
        return faults.should_fire("conn-drop")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response = error_response(
                        None, "bad-request", f"request line exceeds {MAX_LINE_BYTES} bytes"
                    )
                    writer.write(encode_response(response).encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8", "replace").strip()
                if not text:
                    continue
                response_line = await self.service.handle_line(text)
                if self._should_drop(text):
                    # Chaos: hang up without answering, as a crashed peer
                    # or cut network would.  The request itself completed.
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    break
                writer.write(response_line.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels live connections; close quietly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError, OSError):
                pass


class ServerThread:
    """A daemon on a background thread, for tests / benchmarks / the loadgen.

    Creates the event loop, service and listener on the thread, exposes the
    bound address (and the service object, for in-process assertions), and
    tears everything down in :meth:`stop`.  Also usable as a context
    manager.
    """

    def __init__(
        self,
        store: Union[VerdictStore, str, None] = None,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        self._store = store
        self._config = config
        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._http_port = http_port
        self._http_host = http_host
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[VerdictServer] = None
        self.service: Optional[VerdictService] = None
        self.console = None
        self.address: Optional[Address] = None
        #: ("host", port) of the HTTP console once started (None without one).
        self.http_address: Optional[Tuple[str, int]] = None

    def start(self) -> Address:
        self._thread = threading.Thread(
            target=self._run, name="verdict-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("verdict server failed to start") from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.service = VerdictService(store=self._store, config=self._config)
            self.server = VerdictServer(
                self.service,
                host=self._host,
                port=self._port,
                socket_path=self._socket_path,
            )
            self.address = loop.run_until_complete(self.server.start())
            if self._http_port is not None:
                from repro.obs.http import ConsoleServer

                self.console = ConsoleServer(
                    self.service, host=self._http_host, port=self._http_port
                )
                self.http_address = loop.run_until_complete(self.console.start())
        except BaseException as error:  # noqa: BLE001 -- reported to starter
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            if self.console is not None:
                loop.run_until_complete(self.console.stop())
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
