"""Finite certificate spaces: the moves available to Eve and Adam.

The paper lets certificates be arbitrary ``(r, p)``-bounded bit strings.  To
solve the game exhaustively we fix, per quantifier level, a finite set of
candidate certificates for every node; the arbiter must be written so that
certificates outside its expected format simply cause rejection (exactly as
in the proof of Lemma 11, where overly large certificates are rejected), so
restricting the enumeration to the candidates the arbiter can meaningfully
read does not change who wins the game.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.graphs.certificates import Polynomial, is_rp_bounded, neighborhood_information
from repro.graphs.identifiers import IdentifierAssignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.registry import WeakSharedRegistry

CandidateFunction = Callable[[LabeledGraph, Mapping[Node, str], Node], Sequence[str]]


@dataclass(frozen=True)
class CertificateSpace:
    """A finite space of per-node certificates.

    Attributes
    ----------
    candidates:
        A function mapping ``(graph, ids, node)`` to the candidate certificate
        strings available at that node.
    name:
        A human-readable description, used in reprs and error messages.
    """

    candidates: CandidateFunction
    name: str = "certificate-space"

    def node_candidates(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> List[str]:
        """The candidate certificates of *node* (as a list, preserving order)."""
        return list(self.candidates(graph, ids, node))

    def assignments(
        self, graph: LabeledGraph, ids: Mapping[Node, str]
    ) -> Iterator[Dict[Node, str]]:
        """All certificate assignments drawing each node's certificate from its candidates."""
        nodes = list(graph.nodes)
        per_node = [self.node_candidates(graph, ids, u) for u in nodes]
        for combination in itertools.product(*per_node):
            yield dict(zip(nodes, combination))

    def assignment_count(self, graph: LabeledGraph, ids: Mapping[Node, str]) -> int:
        """The number of assignments (product of per-node candidate counts)."""
        count = 1
        for u in graph.nodes:
            count *= max(1, len(self.node_candidates(graph, ids, u)))
        return count

    def is_bounded(
        self,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        radius: int,
        bound: Polynomial,
    ) -> bool:
        """Whether every candidate at every node satisfies the ``(radius, bound)`` condition."""
        for u in graph.nodes:
            info = neighborhood_information(graph, ids, u, radius)
            for candidate in self.node_candidates(graph, ids, u):
                if len(candidate) > bound(info):
                    return False
        return True

    def __repr__(self) -> str:
        return f"CertificateSpace({self.name!r})"


@dataclass(frozen=True)
class MaterializedSpace:
    """A certificate space evaluated on one ``(graph, ids)`` instance.

    This is the *coded form* of the space: the per-node candidate lists (in
    graph node order, preserving each node's enumeration order) plus the
    sorted alphabet of distinct candidate strings.  The compiled engine
    core interns exactly these strings into its integer alphabet, and the
    sweep store's fingerprints hash exactly these lists -- both consumers
    share one materialization instead of re-invoking the candidate function
    per node per use.
    """

    space_name: str
    per_node: Tuple[Tuple[str, ...], ...]
    alphabet: Tuple[str, ...]

    def assignment_count(self) -> int:
        """Product of per-node candidate counts (empty sets count as one)."""
        count = 1
        for candidates in self.per_node:
            count *= max(1, len(candidates))
        return count


#: space -> {(graph, identifier tuple): MaterializedSpace}, weak in the space
#: and bounded per space (FIFO eviction).
_MATERIALIZED = WeakSharedRegistry(limit=128)


def materialize_space(
    space: CertificateSpace, graph: LabeledGraph, ids: Mapping[Node, str]
) -> MaterializedSpace:
    """The (cached) :class:`MaterializedSpace` of *space* on ``(graph, ids)``.

    Candidate functions are deterministic by contract, so the result is
    cached per ``(space, graph, ids)``; spaces that do not support weak
    references are materialized afresh each call.
    """

    def build() -> MaterializedSpace:
        per_node = tuple(
            tuple(space.node_candidates(graph, ids, u)) for u in graph.nodes
        )
        alphabet = tuple(sorted({c for candidates in per_node for c in candidates}))
        return MaterializedSpace(space_name=space.name, per_node=per_node, alphabet=alphabet)

    key = (graph, tuple(ids[u] for u in graph.nodes))
    return _MATERIALIZED.get_or_build(space, key, build)


def enumerated_space(strings: Sequence[str], name: str = "") -> CertificateSpace:
    """The space in which every node may pick any of the given strings."""
    fixed = tuple(strings)
    return CertificateSpace(
        candidates=lambda graph, ids, node: fixed,
        name=name or f"enumerated{list(fixed)!r}",
    )


def bit_space() -> CertificateSpace:
    """Single-bit certificates ``{"0", "1"}``."""
    return enumerated_space(("0", "1"), name="bit")


def color_space(colors: int) -> CertificateSpace:
    """Certificates encoding a color in ``{0, ..., colors-1}`` as a fixed-width bit string."""
    width = max(1, (colors - 1).bit_length())
    values = tuple(format(i, "b").zfill(width) for i in range(colors))
    return enumerated_space(values, name=f"color[{colors}]")


def empty_space() -> CertificateSpace:
    """The trivial space containing only the empty certificate."""
    return enumerated_space(("",), name="empty")


def bounded_strings_space(max_length: int, name: str = "") -> CertificateSpace:
    """All bit strings of length at most *max_length* (grows exponentially; keep tiny)."""
    strings: List[str] = [""]
    for length in range(1, max_length + 1):
        strings.extend("".join(bits) for bits in itertools.product("01", repeat=length))
    return enumerated_space(tuple(strings), name=name or f"strings<= {max_length}")
