"""The class structure of Figures 2 and 13: inclusions, strictness, incomparability.

The paper's headline picture is the diagram of the locally polynomial
hierarchy and its complement hierarchy (Figure 2, extended in Figure 13):
which classes include which, which inclusions are strict, which classes are
pairwise distinct, and how the picture collapses to a strict linear chain on
graphs of bounded structural degree.  This module encodes the part of that
diagram that the paper states explicitly as a queryable object, so that the
test suite and the Figure-2 benchmark can regenerate the table of
relationships and cross-check it against the executable separation witnesses
of :mod:`repro.separations`.

Encoded facts (with their sources):

* the definitional inclusions inside each hierarchy -- every class is
  contained in both classes of every higher level (Section 4);
* pairwise distinctness and incomparability of same-level classes
  (Proposition 24, Proposition 26, Theorem 36, Corollaries 39/41/43);
* strictness of the level-increasing inclusions (Theorem 36 and Section 9.3);
* the bounded-degree collapse to the strict chain
  ``Pi^lp_0 ⊊ Sigma^lp_1 ⊊ Pi^lp_2 ⊊ Sigma^lp_3 ⊊ ...`` (Section 9,
  Proposition 38).

The cross-hierarchy edges of Figure 13 (Proposition 42) relate each class to
classes of the *complement* hierarchy; they are intentionally not encoded
here because their exact placement is part of the figure we do not reproduce
line by line -- the complement classes are still representable (``co...``
names) so that membership witnesses can talk about them.

Class names follow the paper: ``LP``, ``NLP``, ``Sigma^lp_l``, ``Pi^lp_l``
and their complements ``coLP``, ``coNLP``, ``coSigma^lp_l``, ``coPi^lp_l``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "HierarchyClass",
    "parse_class",
    "class_name",
    "hierarchy_classes",
    "includes",
    "strictly_includes",
    "incomparable",
    "bounded_degree_chain",
    "inclusion_edges",
    "figure2_rows",
]


@dataclass(frozen=True)
class HierarchyClass:
    """A class of the locally polynomial hierarchy or its complement hierarchy.

    Attributes
    ----------
    kind:
        ``"Sigma"`` or ``"Pi"``.
    level:
        The alternation level ``l >= 0``.
    complement:
        Whether this is the complement class (``co`` prefix in the paper).
    """

    kind: str
    level: int
    complement: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("Sigma", "Pi"):
            raise ValueError("kind must be 'Sigma' or 'Pi'")
        if self.level < 0:
            raise ValueError("level must be nonnegative")

    def name(self) -> str:
        """The paper's name for this class."""
        prefix = "co" if self.complement else ""
        if self.level == 0:
            return f"{prefix}LP"
        if self.level == 1 and self.kind == "Sigma":
            return f"{prefix}NLP"
        return f"{prefix}{self.kind}^lp_{self.level}"

    def dual(self) -> "HierarchyClass":
        """The complement class (Figure 2's right-hand hierarchy)."""
        return HierarchyClass(self.kind, self.level, not self.complement)

    def __str__(self) -> str:
        return self.name()


def class_name(kind: str, level: int, complement: bool = False) -> str:
    """The paper's name of the class with the given parameters."""
    return HierarchyClass(kind, level, complement).name()


def parse_class(name: str) -> HierarchyClass:
    """Parse a class name such as ``"NLP"``, ``"coLP"`` or ``"Pi^lp_3"``."""
    text = name.strip()
    complement = text.startswith("co")
    if complement:
        text = text[2:]
    if text == "LP":
        return HierarchyClass("Sigma", 0, complement)
    if text == "NLP":
        return HierarchyClass("Sigma", 1, complement)
    for kind in ("Sigma", "Pi"):
        prefix = f"{kind}^lp_"
        if text.startswith(prefix):
            return HierarchyClass(kind, int(text[len(prefix) :]), complement)
    raise ValueError(f"cannot parse hierarchy class name {name!r}")


def hierarchy_classes(max_level: int) -> List[HierarchyClass]:
    """All classes of both hierarchies up to the given level, as drawn in Figure 13."""
    classes: List[HierarchyClass] = []
    for complement in (False, True):
        for level in range(max_level + 1):
            classes.append(HierarchyClass("Sigma", level, complement))
            if level >= 1:
                classes.append(HierarchyClass("Pi", level, complement))
    return classes


# ----------------------------------------------------------------------
# Inclusions and separations
# ----------------------------------------------------------------------
def _canonical(value) -> HierarchyClass:
    return value if isinstance(value, HierarchyClass) else parse_class(str(value))


def includes(higher, lower) -> bool:
    """Whether ``lower ⊆ higher`` holds by the definitional inclusions of Section 4.

    Inside one hierarchy (same complement flag), every class is contained in
    both classes of every strictly higher level, and level 0 is contained in
    everything; the two classes of the same positive level are *not* related.
    Complementing both sides preserves inclusions, so the same rules apply
    verbatim to the complement hierarchy.
    """
    low = _canonical(lower)
    high = _canonical(higher)
    if low == high:
        return True
    if low.complement != high.complement:
        return False
    if low.level > high.level:
        return False
    if low.level == high.level:
        # Level 0 is a single class under two names; positive levels are not
        # comparable within the same level.
        return low.level == 0
    return True


def strictly_includes(higher, lower) -> bool:
    """Whether the paper proves ``lower ⊊ higher``.

    All level-increasing inclusions inside each hierarchy are strict: the
    ground-level separations (Propositions 24 and 26) and the infiniteness
    theorem (Theorem 36 with Section 9.3) show that no two classes on
    different levels coincide, even on graphs of bounded structural degree.
    """
    low = _canonical(lower)
    high = _canonical(higher)
    return includes(high, low) and low != high and high.level > low.level


def incomparable(first, second) -> bool:
    """Whether the two classes are provably incomparable (same level, different kind).

    Proposition 26 gives ``coLP`` vs ``NLP``; Corollaries 39, 41 and 43 extend
    pairwise distinctness to all same-level classes, and same-level classes of
    different kind contain each other in neither direction.
    """
    a = _canonical(first)
    b = _canonical(second)
    if a == b:
        return False
    if a.level != b.level or a.level == 0:
        return False
    return not includes(a, b) and not includes(b, a)


def bounded_degree_chain(max_level: int) -> List[str]:
    """The strict chain the hierarchy collapses to on bounded structural degree.

    Section 9: ``Pi^lp_0 ⊊ Sigma^lp_1 ⊊ Pi^lp_2 ⊊ Sigma^lp_3 ⊊ ...`` -- the
    representative of level ``l`` ends with a block of existential quantifiers
    for odd ``l`` and universal ones for even ``l``.
    """
    chain: List[str] = []
    for level in range(max_level + 1):
        kind = "Sigma" if level % 2 == 1 else "Pi"
        chain.append(HierarchyClass(kind, level).name())
    return chain


def inclusion_edges(max_level: int) -> List[Tuple[str, str, str]]:
    """The covering edges of each hierarchy up to *max_level*: ``(lower, higher, label)``.

    Edges whose endpoints lie on consecutive levels inside one hierarchy; all
    of them are strict (label ``"strict"``).
    """
    classes = hierarchy_classes(max_level)
    edges: List[Tuple[str, str, str]] = []
    for lower in classes:
        for higher in classes:
            if lower == higher or not includes(higher, lower):
                continue
            has_intermediate = any(
                middle not in (lower, higher)
                and includes(middle, lower)
                and includes(higher, middle)
                for middle in classes
            )
            if has_intermediate:
                continue
            label = "strict" if strictly_includes(higher, lower) else "definitional"
            edges.append((lower.name(), higher.name(), label))
    return sorted(edges)


def figure2_rows(max_level: int = 4) -> List[Dict[str, object]]:
    """The per-level summary of Figure 2, as data rows for the benchmark harness."""
    rows: List[Dict[str, object]] = []
    chain = bounded_degree_chain(max_level + 1)
    for level in range(max_level + 1):
        sigma = HierarchyClass("Sigma", level)
        pi = HierarchyClass("Pi", level)
        rows.append(
            {
                "level": level,
                "sigma": sigma.name(),
                "pi": pi.name(),
                "sigma_pi_incomparable": incomparable(sigma, pi),
                "included_in_next_sigma": includes(HierarchyClass("Sigma", level + 1), sigma),
                "included_in_next_pi": includes(HierarchyClass("Pi", level + 1), pi),
                "strict_step_up": strictly_includes(HierarchyClass("Sigma", level + 1), sigma),
                "bounded_degree_representative": chain[level],
            }
        )
    return rows
