"""Arbiter specifications: a machine plus its game parameters.

An :class:`ArbiterSpec` bundles everything needed to decide membership of a
graph in the class arbitrated by a machine: the machine itself, the identifier
radius it operates under, the certificate radius and polynomial bound, the
quantifier prefix (Sigma or Pi, and the level), and the finite certificate
space searched at each level.  ``decide`` then solves the game.

The specs defined at the bottom are the paper's standard examples:

* LP deciders (level 0): any certificate-free local algorithm;
* the NLP verifier for 3-colorability (Theorem 23's easy direction);
* the NLP verifier for 2-colorability (used in Proposition 24).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence

from repro.graphs.certificates import Polynomial, polynomial
from repro.graphs.identifiers import small_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace, color_space, empty_space
from repro.hierarchy.game import Quantifier, eve_wins, pi_prefix, sigma_prefix
from repro.machines import builtin
from repro.machines.interface import NodeMachine
from repro.machines.simulator import execute


@dataclass
class ArbiterSpec:
    """A complete description of a Sigma^lp_l or Pi^lp_l arbiter.

    Attributes
    ----------
    name:
        Human-readable name of the arbitrated property.
    machine:
        The locally polynomial machine acting as arbiter.
    level:
        The number ``l`` of certificate assignments (0 for LP deciders).
    kind:
        ``"Sigma"`` (Eve moves first) or ``"Pi"`` (Adam moves first).
    spaces:
        The finite certificate space searched at each of the ``level`` levels.
    identifier_radius:
        The radius for which identifier assignments must be locally unique.
    certificate_radius, certificate_bound:
        The ``(r, p)``-boundedness parameters the certificates are meant to
        satisfy (checked by :meth:`certificates_bounded`).
    """

    name: str
    machine: NodeMachine
    level: int
    kind: str = "Sigma"
    spaces: Sequence[CertificateSpace] = field(default_factory=tuple)
    identifier_radius: int = 1
    certificate_radius: int = 1
    certificate_bound: Polynomial = field(default_factory=lambda: polynomial(2, 4, 4))

    def __post_init__(self) -> None:
        if self.kind not in ("Sigma", "Pi"):
            raise ValueError("kind must be 'Sigma' or 'Pi'")
        if self.level < 0:
            raise ValueError("level must be nonnegative")
        if len(self.spaces) != self.level:
            raise ValueError("there must be exactly one certificate space per level")

    # ------------------------------------------------------------------
    def prefix(self) -> List[Quantifier]:
        """The quantifier prefix corresponding to ``kind`` and ``level``."""
        return sigma_prefix(self.level) if self.kind == "Sigma" else pi_prefix(self.level)

    def decide(self, graph: LabeledGraph, ids: Optional[Mapping[Node, str]] = None) -> bool:
        """Whether *graph* has the arbitrated property (Eve wins the game).

        If *ids* is omitted, a small ``identifier_radius``-locally unique
        assignment is constructed; by definition of the classes the outcome
        must not depend on this choice (tests verify this on several
        assignments).

        Solved through the fast :class:`~repro.engine.game.GameEngine`;
        :meth:`decide_naive` runs the exhaustive reference solver instead.
        """
        return self.game_engine(graph, ids).eve_wins(self.prefix())

    def decide_naive(
        self, graph: LabeledGraph, ids: Optional[Mapping[Node, str]] = None
    ) -> bool:
        """Reference path: the exhaustive solver (and, at level 0, one raw execution).

        Kept as the oracle the engine is cross-checked against; exponential
        in the graph size for positive levels.
        """
        if ids is None:
            ids = small_identifier_assignment(graph, self.identifier_radius)
        if self.level == 0:
            return execute(self.machine, graph, ids).accepts()
        return eve_wins(self.machine, graph, ids, list(self.spaces), self.prefix())

    def game_engine(
        self, graph: LabeledGraph, ids: Optional[Mapping[Node, str]] = None
    ) -> "GameEngine":
        """A :class:`~repro.engine.game.GameEngine` for this spec on *graph*.

        The engine's leaf evaluator is shared process-wide across games on
        the same ``(machine, graph, ids)`` instance.
        """
        from repro.engine import GameEngine

        if ids is None:
            ids = small_identifier_assignment(graph, self.identifier_radius)
        return GameEngine.for_game(self.machine, graph, ids, list(self.spaces))

    def certificates_bounded(self, graph: LabeledGraph, ids: Mapping[Node, str]) -> bool:
        """Whether every candidate certificate respects the ``(r, p)`` bound."""
        return all(
            space.is_bounded(graph, ids, self.certificate_radius, self.certificate_bound)
            for space in self.spaces
        )

    def class_name(self) -> str:
        """The hierarchy class this spec witnesses membership in, e.g. ``Sigma^lp_1``."""
        if self.level == 0:
            return "LP"
        if self.level == 1 and self.kind == "Sigma":
            return "NLP"
        return f"{self.kind}^lp_{self.level}"

    def __repr__(self) -> str:
        return f"ArbiterSpec({self.name!r}, {self.class_name()})"


# ----------------------------------------------------------------------
# Standard specs
# ----------------------------------------------------------------------
def lp_decider_spec(name: str, machine: NodeMachine, identifier_radius: int = 1) -> ArbiterSpec:
    """An LP decider: level 0, no certificates."""
    return ArbiterSpec(
        name=name,
        machine=machine,
        level=0,
        kind="Sigma",
        spaces=(),
        identifier_radius=identifier_radius,
    )


def nlp_verifier_spec(
    name: str,
    machine: NodeMachine,
    space: CertificateSpace,
    identifier_radius: int = 1,
    certificate_radius: int = 1,
) -> ArbiterSpec:
    """An NLP verifier: level 1, Eve chooses one certificate assignment."""
    return ArbiterSpec(
        name=name,
        machine=machine,
        level=1,
        kind="Sigma",
        spaces=(space,),
        identifier_radius=identifier_radius,
        certificate_radius=certificate_radius,
    )


def all_selected_spec() -> ArbiterSpec:
    """LP decider for ``all-selected`` (Remark 17)."""
    return lp_decider_spec("all-selected", builtin.all_selected_decider())


def eulerian_spec() -> ArbiterSpec:
    """LP decider for ``eulerian`` (Proposition 18)."""
    return lp_decider_spec("eulerian", builtin.eulerian_decider())


def three_colorability_spec() -> ArbiterSpec:
    """NLP verifier for ``3-colorable``: Eve's certificate is the node's color."""
    return nlp_verifier_spec(
        "3-colorable", builtin.three_colorability_verifier(), color_space(3)
    )


def two_colorability_spec() -> ArbiterSpec:
    """NLP verifier for ``2-colorable`` (the separation witness of Proposition 24)."""
    return nlp_verifier_spec(
        "2-colorable", builtin.two_colorability_verifier(), color_space(2)
    )
