"""The locally polynomial hierarchy as an executable game (Sections 4 and 6).

A graph property lies in Sigma^lp_l / Pi^lp_l if there is a locally polynomial
*arbiter* M such that Eve (existential) and Adam (universal), alternately
assigning bounded certificates to all nodes, produce an accepting execution of
M exactly on the graphs in the property -- with Eve moving first for Sigma and
Adam first for Pi.

This package makes the game concrete and finite:

* :mod:`repro.hierarchy.certificate_spaces` -- finite per-node certificate
  candidate sets (the moves available to the players),
* :mod:`repro.hierarchy.game` -- exhaustive game solving: does Eve have a
  winning strategy on a given graph under a given arbiter?
* :mod:`repro.hierarchy.arbiters` -- bundling of an arbiter machine with its
  parameters (radius, bound, certificate spaces, quantifier prefix) into a
  reusable :class:`~repro.hierarchy.arbiters.ArbiterSpec`, including the
  standard arbiters used in the paper (3-colorability, 2-colorability,
  certificate-free LP deciders).
"""

from repro.hierarchy.certificate_spaces import (
    CertificateSpace,
    enumerated_space,
    color_space,
    bit_space,
    empty_space,
)
from repro.hierarchy.game import (
    Quantifier,
    eve_wins,
    sigma_membership,
    pi_membership,
    enumerate_assignments,
)
from repro.hierarchy.arbiters import (
    ArbiterSpec,
    lp_decider_spec,
    nlp_verifier_spec,
    three_colorability_spec,
    two_colorability_spec,
)

__all__ = [
    "CertificateSpace",
    "enumerated_space",
    "color_space",
    "bit_space",
    "empty_space",
    "Quantifier",
    "eve_wins",
    "sigma_membership",
    "pi_membership",
    "enumerate_assignments",
    "ArbiterSpec",
    "lp_decider_spec",
    "nlp_verifier_spec",
    "three_colorability_spec",
    "two_colorability_spec",
]
