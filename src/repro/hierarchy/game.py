"""The Eve/Adam certificate game (Section 4): reference solver and fast front.

For a fixed arbiter ``M``, graph ``G``, identifier assignment ``id`` and a
quantifier prefix ``Q_1 ... Q_l`` over certificate spaces, the game value is

    Q_1 kappa_1  Q_2 kappa_2  ...  Q_l kappa_l :  M(G, id, kappa_1 ... kappa_l) ≡ accept

with existential quantifiers belonging to Eve and universal ones to Adam.
``G`` has the arbitrated property iff Eve wins, i.e. iff the quantified
statement is true.

Two solvers live behind this interface:

* :func:`eve_wins` is the **exhaustive reference oracle**: it expands the
  quantifiers with short-circuiting and re-runs the full LOCAL-model
  simulator at every leaf.  Its cost is the product of the assignment-space
  sizes times a full simulation -- keep it for tiny instances and for
  cross-checking.
* :func:`sigma_membership`, :func:`pi_membership` and
  :func:`winning_first_move` route through the memoizing
  :class:`~repro.engine.game.GameEngine` (cached per-node local views,
  leaf short-circuiting, transposition cache, pruned innermost search),
  which is observationally equivalent and orders of magnitude faster.
  Randomized tests (``tests/test_engine.py``) assert the equivalence.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.certificates import CertificateList
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace
from repro.machines.interface import NodeMachine
from repro.machines.simulator import execute


class Quantifier(str, Enum):
    """A quantifier of the game prefix: Eve's ∃ or Adam's ∀."""

    EXISTS = "E"
    FORALL = "A"


def sigma_prefix(level: int) -> List[Quantifier]:
    """The Sigma^lp_level prefix: Eve moves first, strictly alternating."""
    return [Quantifier.EXISTS if i % 2 == 0 else Quantifier.FORALL for i in range(level)]


def pi_prefix(level: int) -> List[Quantifier]:
    """The Pi^lp_level prefix: Adam moves first, strictly alternating."""
    return [Quantifier.FORALL if i % 2 == 0 else Quantifier.EXISTS for i in range(level)]


def enumerate_assignments(
    space: CertificateSpace, graph: LabeledGraph, ids: Mapping[Node, str]
) -> Iterator[Dict[Node, str]]:
    """All certificate assignments of *space* on ``(graph, ids)``."""
    return space.assignments(graph, ids)


def eve_wins(
    arbiter: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    spaces: Sequence[CertificateSpace],
    prefix: Sequence[Quantifier],
    fixed: Optional[Sequence[Mapping[Node, str]]] = None,
) -> bool:
    """Whether Eve has a winning strategy in the certificate game.

    Parameters
    ----------
    arbiter:
        The locally polynomial machine determining the winner.
    graph, ids:
        The input graph and its identifier assignment.
    spaces:
        One certificate space per quantifier level (``len(spaces) == len(prefix)``).
    prefix:
        The quantifier prefix, e.g. ``[EXISTS, FORALL]`` for Sigma^lp_2.
    fixed:
        Certificate assignments already chosen for the leading levels (used by
        the recursion; callers normally omit it).
    """
    if len(spaces) != len(prefix):
        raise ValueError("there must be exactly one certificate space per quantifier")
    chosen: List[Mapping[Node, str]] = list(fixed or [])
    depth = len(chosen)

    if depth == len(prefix):
        certificates = CertificateList(chosen)
        return execute(arbiter, graph, ids, certificates).accepts()

    quantifier = prefix[depth]
    space = spaces[depth]
    outcomes = (
        eve_wins(arbiter, graph, ids, spaces, prefix, chosen + [assignment])
        for assignment in enumerate_assignments(space, graph, ids)
    )
    if quantifier is Quantifier.EXISTS:
        return any(outcomes)
    return all(outcomes)


def sigma_membership(
    arbiter: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    spaces: Sequence[CertificateSpace],
) -> bool:
    """Game value with Eve moving first (membership under a Sigma^lp_l arbiter).

    Solved through the fast :class:`~repro.engine.game.GameEngine`; use
    :func:`eve_wins` directly for the exhaustive reference path.
    """
    from repro.engine import GameEngine

    return GameEngine.for_game(arbiter, graph, ids, spaces).sigma_value()


def pi_membership(
    arbiter: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    spaces: Sequence[CertificateSpace],
) -> bool:
    """Game value with Adam moving first (membership under a Pi^lp_l arbiter).

    Solved through the fast :class:`~repro.engine.game.GameEngine`; use
    :func:`eve_wins` directly for the exhaustive reference path.
    """
    from repro.engine import GameEngine

    return GameEngine.for_game(arbiter, graph, ids, spaces).pi_value()


def winning_first_move(
    arbiter: NodeMachine,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    spaces: Sequence[CertificateSpace],
    prefix: Sequence[Quantifier],
) -> Optional[Dict[Node, str]]:
    """A winning first move for the player owning the first quantifier, if any.

    For an existential first quantifier this is a certificate assignment that
    keeps Eve winning; for a universal one it is a *refuting* assignment that
    makes Eve lose (i.e. a winning move for Adam).  Returns ``None`` when the
    first player has no winning move.

    Solved through the fast :class:`~repro.engine.game.GameEngine`, whose
    enumeration order matches the exhaustive solver's, so both return the
    same move.
    """
    from repro.engine import GameEngine

    return GameEngine.for_game(arbiter, graph, ids, spaces).winning_first_move(prefix)
