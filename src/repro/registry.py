"""A weak-keyed, bounded sharing registry (one pattern, one home).

Several layers share expensive derived objects per *owner*: leaf evaluators
and compiled instances per machine, materialized certificate spaces per
space.  They all need the same shape of registry -- weak in the owner (so
a dead machine or space releases everything derived from it), bounded per
owner with FIFO eviction (so long sweeps over many graphs cannot grow
memory without limit), and degrading gracefully to "build a fresh one"
when the owner does not support weak references.

This module is dependency-free on purpose: it sits below both the engine
and the hierarchy layers, so either can import it without cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, TypeVar
from weakref import WeakKeyDictionary

Value = TypeVar("Value")


class WeakSharedRegistry:
    """``owner -> {key: value}`` with weak owners and a per-owner FIFO bound.

    Parameters
    ----------
    limit:
        Maximum number of entries kept per owner; inserting beyond it
        evicts the oldest entry (insertion order).
    """

    __slots__ = ("limit", "_registry")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self._registry: "WeakKeyDictionary[object, Dict[Hashable, object]]" = (
            WeakKeyDictionary()
        )

    def get_or_build(
        self, owner: object, key: Hashable, build: Callable[[], Value]
    ) -> Value:
        """The cached value for ``(owner, key)``, building and caching on miss.

        Owners that cannot be weakly referenced are not cached: *build* is
        simply called, so callers never need a separate fallback path.
        """
        try:
            per_owner = self._registry.setdefault(owner, {})
        except TypeError:
            return build()
        value = per_owner.get(key)
        if value is None:
            value = build()
            while len(per_owner) >= self.limit:
                per_owner.pop(next(iter(per_owner)))
            per_owner[key] = value
        return value

    def __repr__(self) -> str:
        return f"WeakSharedRegistry(owners={len(self._registry)}, limit={self.limit})"
