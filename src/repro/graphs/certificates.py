"""Certificate assignments and the ``(r, p)``-boundedness condition (Section 3).

A certificate assignment maps every node to a bit string.  The key resource
bound of the paper is that a certificate may only be polynomially large in the
amount of information contained in the node's constant-radius neighborhood:

    len(kappa(u)) <= p( sum_{v in N^G_r(u)} 1 + len(label(v)) + len(id(v)) )

Several certificate assignments are combined into a certificate-list
assignment, separating the individual certificates with ``#``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Sequence

from repro.graphs.labeled_graph import LabeledGraph, Node

CertificateAssignment = Dict[Node, str]
Polynomial = Callable[[int], int]

_CERT_CHARS = frozenset("01")
_LIST_CHARS = frozenset("01#")


def trivial_certificate_assignment(graph: LabeledGraph) -> CertificateAssignment:
    """The assignment giving every node the empty certificate."""
    return {u: "" for u in graph.nodes}


def validate_certificate_assignment(graph: LabeledGraph, kappa: Mapping[Node, str]) -> None:
    """Raise ``ValueError`` unless *kappa* assigns a bit string to every node."""
    for u in graph.nodes:
        if u not in kappa:
            raise ValueError(f"certificate assignment is missing node {u!r}")
        if not set(kappa[u]) <= _CERT_CHARS:
            raise ValueError(f"certificate of {u!r} is not a bit string: {kappa[u]!r}")


def neighborhood_information(
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    node: Node,
    radius: int,
) -> int:
    """The quantity the paper bounds certificates by.

    Returns ``sum_{v in N^G_r(node)} (1 + len(label(v)) + len(id(v)))``.
    """
    total = 0
    for v in graph.ball(node, radius):
        total += 1 + len(graph.label(v)) + len(ids[v])
    return total


def is_rp_bounded(
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    kappa: Mapping[Node, str],
    radius: int,
    bound: Polynomial,
) -> bool:
    """Whether *kappa* is an ``(radius, bound)``-bounded certificate assignment."""
    validate_certificate_assignment(graph, kappa)
    for u in graph.nodes:
        info = neighborhood_information(graph, ids, u, radius)
        if len(kappa[u]) > bound(info):
            return False
    return True


def polynomial(degree: int, coefficient: int = 1, constant: int = 0) -> Polynomial:
    """Convenience constructor for the monomial bound ``c * n**d + constant``."""
    if degree < 0 or coefficient < 0 or constant < 0:
        raise ValueError("polynomial bounds must have nonnegative parameters")

    def bound(n: int) -> int:
        return coefficient * (n**degree) + constant

    return bound


class CertificateList:
    """A certificate-list assignment ``kappa_1 . kappa_2 . ... . kappa_l``.

    The paper represents a list of certificate assignments as a single
    function to ``{0, 1, #}*`` where ``#`` separates individual certificates.
    """

    __slots__ = ("_assignments",)

    def __init__(self, assignments: Sequence[Mapping[Node, str]] = ()) -> None:
        self._assignments: List[Dict[Node, str]] = [dict(a) for a in assignments]

    @property
    def assignments(self) -> List[Dict[Node, str]]:
        """The individual certificate assignments, in order."""
        return [dict(a) for a in self._assignments]

    def __len__(self) -> int:
        return len(self._assignments)

    def append(self, kappa: Mapping[Node, str]) -> "CertificateList":
        """Return a new list extended by one more certificate assignment."""
        return CertificateList(self._assignments + [dict(kappa)])

    def combined(self, node: Node) -> str:
        """The string ``kappa_1(u) # kappa_2(u) # ... # kappa_l(u)``."""
        return "#".join(a.get(node, "") for a in self._assignments)

    def certificate(self, index: int, node: Node) -> str:
        """The ``index``-th certificate of *node* (0-based)."""
        return self._assignments[index].get(node, "")

    def is_rp_bounded(
        self,
        graph: LabeledGraph,
        ids: Mapping[Node, str],
        radius: int,
        bound: Polynomial,
    ) -> bool:
        """Whether every component assignment is ``(radius, bound)``-bounded."""
        return all(
            is_rp_bounded(graph, ids, kappa, radius, bound) for kappa in self._assignments
        )

    @classmethod
    def from_combined(cls, graph: LabeledGraph, combined: Mapping[Node, str]) -> "CertificateList":
        """Parse ``#``-separated per-node strings back into a list of assignments.

        All nodes must agree on the number of ``#`` separators.
        """
        lengths = {combined.get(u, "").count("#") for u in graph.nodes}
        if len(lengths) > 1:
            raise ValueError("nodes disagree on the number of certificates")
        count = (lengths.pop() if lengths else 0) + 1
        assignments: List[Dict[Node, str]] = [{} for _ in range(count)]
        for u in graph.nodes:
            value = combined.get(u, "")
            if not set(value) <= _LIST_CHARS:
                raise ValueError(f"invalid certificate-list string for node {u!r}: {value!r}")
            parts = value.split("#")
            for i in range(count):
                assignments[i][u] = parts[i] if i < len(parts) else ""
        return cls(assignments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CertificateList):
            return NotImplemented
        return self._assignments == other._assignments

    def __repr__(self) -> str:
        return f"CertificateList(length={len(self._assignments)})"
