"""Graph generators used by the tests, examples and benchmarks.

The families here cover the graphs appearing in the paper's figures and
proofs: paths, cycles (Propositions 24 and 26), grids (picture encodings of
Section 9.2.2), trees, random connected graphs, and the specific instances of
Figure 1 (3-round 3-colorability).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

import networkx as nx

from repro.graphs.labeled_graph import LabeledGraph, Node


def single_node(label: str = "") -> LabeledGraph:
    """A single labeled node -- the graphs identified with strings."""
    return LabeledGraph(["v"], [], {"v": label})


def string_graph(bits: str) -> LabeledGraph:
    """The single-node graph whose label is *bits* (``node`` in the paper)."""
    return single_node(bits)


def path_graph(length: int, labels: Optional[Sequence[str]] = None) -> LabeledGraph:
    """A path on *length* nodes ``p0 - p1 - ... - p_{length-1}``."""
    if length < 1:
        raise ValueError("a path needs at least one node")
    nodes = [f"p{i}" for i in range(length)]
    edges = [(nodes[i], nodes[i + 1]) for i in range(length - 1)]
    label_map = _label_map(nodes, labels)
    return LabeledGraph(nodes, edges, label_map)


def cycle_graph(length: int, labels: Optional[Sequence[str]] = None) -> LabeledGraph:
    """A cycle on *length* >= 3 nodes ``c0 - c1 - ... - c_{length-1} - c0``."""
    if length < 3:
        raise ValueError("a cycle needs at least three nodes")
    nodes = [f"c{i}" for i in range(length)]
    edges = [(nodes[i], nodes[(i + 1) % length]) for i in range(length)]
    label_map = _label_map(nodes, labels)
    return LabeledGraph(nodes, edges, label_map)


def star_graph(leaves: int, center_label: str = "", leaf_label: str = "") -> LabeledGraph:
    """A star with one center and *leaves* leaves."""
    if leaves < 0:
        raise ValueError("number of leaves must be nonnegative")
    nodes = ["center"] + [f"leaf{i}" for i in range(leaves)]
    edges = [("center", f"leaf{i}") for i in range(leaves)]
    labels = {"center": center_label}
    labels.update({f"leaf{i}": leaf_label for i in range(leaves)})
    return LabeledGraph(nodes, edges, labels)


def complete_graph(size: int, labels: Optional[Sequence[str]] = None) -> LabeledGraph:
    """The complete graph on *size* nodes."""
    if size < 1:
        raise ValueError("a complete graph needs at least one node")
    nodes = [f"k{i}" for i in range(size)]
    edges = [(nodes[i], nodes[j]) for i in range(size) for j in range(i + 1, size)]
    return LabeledGraph(nodes, edges, _label_map(nodes, labels))


def grid_graph(rows: int, cols: int, labels: Optional[Mapping[Node, str]] = None) -> LabeledGraph:
    """A ``rows x cols`` grid; nodes are ``(i, j)`` pairs.

    Grids are the graph-side image of pictures (Section 9.2.2).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    nodes = [(i, j) for i in range(rows) for j in range(cols)]
    edges = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                edges.append(((i, j), (i + 1, j)))
            if j + 1 < cols:
                edges.append(((i, j), (i, j + 1)))
    label_map = {node: "" for node in nodes}
    if labels:
        label_map.update(labels)
    return LabeledGraph(nodes, edges, label_map)


def random_tree(size: int, seed: int = 0, labels: Optional[Sequence[str]] = None) -> LabeledGraph:
    """A uniformly random labeled tree on *size* nodes (via networkx)."""
    if size < 1:
        raise ValueError("a tree needs at least one node")
    if size == 1:
        return single_node(labels[0] if labels else "")
    tree = nx.random_labeled_tree(size, seed=seed)
    nodes = [f"t{i}" for i in range(size)]
    edges = [(f"t{u}", f"t{v}") for u, v in tree.edges]
    return LabeledGraph(nodes, edges, _label_map(nodes, labels))


def random_regular_graph(
    degree: int, size: int, seed: int = 0, labels: Optional[Sequence[str]] = None
) -> LabeledGraph:
    """A random connected *degree*-regular graph on *size* nodes (via networkx).

    ``degree * size`` must be even and ``degree < size``.  Random regular
    graphs are connected with high probability for ``degree >= 3``; seeds
    producing a disconnected sample are skipped deterministically, so the
    result depends only on ``(degree, size, seed)``.
    """
    if degree < 2 or degree >= size:
        raise ValueError("need 2 <= degree < size")
    if (degree * size) % 2 != 0:
        raise ValueError("degree * size must be even")
    for attempt in range(100):
        sample = nx.random_regular_graph(degree, size, seed=seed + attempt)
        if nx.is_connected(sample):
            nodes = [f"r{i}" for i in range(size)]
            edges = [(f"r{u}", f"r{v}") for u, v in sample.edges]
            return LabeledGraph(nodes, edges, _label_map(nodes, labels))
    raise ValueError(f"no connected {degree}-regular graph found near seed {seed}")


def random_connected_graph(
    size: int, edge_probability: float = 0.4, seed: int = 0, labels: Optional[Sequence[str]] = None
) -> LabeledGraph:
    """A random connected graph: random tree plus extra random edges."""
    if size < 1:
        raise ValueError("size must be positive")
    rng = random.Random(seed)
    base = random_tree(size, seed=seed)
    nodes = list(base.nodes)
    extra = []
    for i in range(size):
        for j in range(i + 1, size):
            u, v = nodes[i], nodes[j]
            if not base.has_edge(u, v) and rng.random() < edge_probability:
                extra.append((u, v))
    edges = [tuple(e) for e in base.edges] + extra
    return LabeledGraph(nodes, edges, _label_map(nodes, labels))


def uniformly_labeled(graph: LabeledGraph, label: str) -> LabeledGraph:
    """Every node relabeled with *label* (e.g. ``"1"`` for all-selected)."""
    return graph.with_uniform_label(label)


def figure1_no_instance() -> LabeledGraph:
    """The no-instance of 3-round 3-colorability from Figure 1a.

    Nodes: ``u`` (degree 1), ``v1``, ``v2`` (degree 2), ``w1``, ``w2``, ``w3``.
    Adam can force a colouring conflict because of the edge ``{w1, w3}``.
    """
    nodes = ["u", "v1", "v2", "w1", "w2", "w3"]
    edges = [
        ("u", "w1"),
        ("v1", "w2"),
        ("v1", "w3"),
        ("v2", "w1"),
        ("v2", "w3"),
        ("w1", "w2"),
        ("w2", "w3"),
        ("w1", "w3"),
    ]
    return LabeledGraph(nodes, edges)


def figure1_yes_instance() -> LabeledGraph:
    """The yes-instance of Figure 1b: same graph without the edge ``{w1, w3}``."""
    nodes = ["u", "v1", "v2", "w1", "w2", "w3"]
    edges = [
        ("u", "w1"),
        ("v1", "w2"),
        ("v1", "w3"),
        ("v2", "w1"),
        ("v2", "w3"),
        ("w1", "w2"),
        ("w2", "w3"),
    ]
    return LabeledGraph(nodes, edges)


def figure3_graph() -> LabeledGraph:
    """The 4-node graph of Figure 3 used to illustrate the Hamiltonicity reduction.

    ``u1, u3, u4`` carry label ``1``; ``u2`` carries label ``0``.
    """
    nodes = ["u1", "u2", "u3", "u4"]
    edges = [("u1", "u2"), ("u1", "u3"), ("u2", "u4"), ("u3", "u4"), ("u1", "u4")]
    labels = {"u1": "1", "u2": "0", "u3": "1", "u4": "1"}
    return LabeledGraph(nodes, edges, labels)


def figure9_graph() -> LabeledGraph:
    """The 3-node path of Figure 9 with labels 1, 1, 0."""
    return path_graph(3, labels=["1", "1", "0"])


def boolean_graph(
    formulas: Mapping[Node, str], edges: Sequence[tuple], nodes: Optional[Sequence[Node]] = None
) -> LabeledGraph:
    """A graph whose labels are encodings of Boolean formulas.

    The Boolean-graph machinery in :mod:`repro.boolsat.boolean_graph` provides
    the encoding/decoding of formulas as bit strings; this helper simply wires
    the encoded labels into a :class:`LabeledGraph`.
    """
    from repro.boolsat.encoding import encode_formula_text

    node_list = list(nodes) if nodes is not None else list(formulas)
    labels = {u: encode_formula_text(formulas[u]) for u in formulas}
    return LabeledGraph(node_list, edges, labels)


def _label_map(nodes: List[Node], labels: Optional[Sequence[str]]) -> Dict[Node, str]:
    if labels is None:
        return {u: "" for u in nodes}
    if len(labels) != len(nodes):
        raise ValueError("number of labels must match number of nodes")
    return dict(zip(nodes, labels))
