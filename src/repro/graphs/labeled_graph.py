"""Labeled graphs as defined in Section 3 of the paper.

A labeled graph is a triple ``G = (V, E, lambda)`` where ``V`` is a finite
nonempty set of nodes, ``E`` is a set of undirected edges making the graph
connected, and ``lambda`` assigns a bit string to every node.  All graphs are
finite, simple, undirected and connected.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Set, Tuple

import networkx as nx

Node = Hashable
Edge = Tuple[Node, Node]

_BIT_CHARS = frozenset("01")


def _check_bitstring(label: str) -> str:
    """Validate that *label* is a bit string (possibly empty)."""
    if not isinstance(label, str):
        raise TypeError(f"label must be a str of bits, got {type(label).__name__}")
    if not set(label) <= _BIT_CHARS:
        raise ValueError(f"label must consist of '0'/'1' characters only, got {label!r}")
    return label


class LabeledGraph:
    """A finite, simple, undirected, connected graph with bit-string labels.

    Parameters
    ----------
    nodes:
        Iterable of hashable node identities.  Must be nonempty.
    edges:
        Iterable of 2-element node pairs.  Self-loops and duplicate edges are
        rejected.  The resulting graph must be connected.
    labels:
        Mapping from node to bit-string label.  Nodes absent from the mapping
        receive the empty label ``""``.
    """

    __slots__ = ("_adjacency", "_labels", "_nodes", "_edges")

    def __init__(
        self,
        nodes: Iterable[Node],
        edges: Iterable[Edge],
        labels: Optional[Mapping[Node, str]] = None,
    ) -> None:
        node_list = list(nodes)
        if not node_list:
            raise ValueError("a labeled graph must have at least one node")
        node_set = set(node_list)
        if len(node_set) != len(node_list):
            raise ValueError("duplicate nodes are not allowed")

        adjacency: Dict[Node, Set[Node]] = {u: set() for u in node_list}
        edge_set: Set[FrozenSet[Node]] = set()
        for u, v in edges:
            if u not in node_set or v not in node_set:
                raise ValueError(f"edge ({u!r}, {v!r}) refers to unknown node")
            if u == v:
                raise ValueError(f"self-loop at node {u!r} is not allowed (graphs are simple)")
            edge_set.add(frozenset((u, v)))
            adjacency[u].add(v)
            adjacency[v].add(u)

        label_map: Dict[Node, str] = {u: "" for u in node_list}
        if labels is not None:
            for u, lab in labels.items():
                if u not in node_set:
                    raise ValueError(f"label given for unknown node {u!r}")
                label_map[u] = _check_bitstring(lab)

        self._nodes: Tuple[Node, ...] = tuple(node_list)
        self._edges: FrozenSet[FrozenSet[Node]] = frozenset(edge_set)
        self._adjacency = {u: frozenset(neigh) for u, neigh in adjacency.items()}
        self._labels = label_map

        if not self._is_connected():
            raise ValueError("labeled graphs must be connected")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The nodes of the graph, in insertion order."""
        return self._nodes

    @property
    def edges(self) -> FrozenSet[FrozenSet[Node]]:
        """The undirected edges, each a 2-element frozenset."""
        return self._edges

    def edge_pairs(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over edges as ordered pairs (one orientation per edge)."""
        for edge in self._edges:
            u, v = tuple(edge)
            yield u, v

    def label(self, node: Node) -> str:
        """Return the bit-string label of *node*."""
        return self._labels[node]

    @property
    def labels(self) -> Dict[Node, str]:
        """A copy of the labeling function as a dictionary."""
        return dict(self._labels)

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The set of neighbors of *node*."""
        return self._adjacency[node]

    def degree(self, node: Node) -> int:
        """The number of neighbors of *node*."""
        return len(self._adjacency[node])

    def structural_degree(self, node: Node) -> int:
        """Degree plus label length (Section 9: ``structural degree``)."""
        return self.degree(node) + len(self.label(node))

    def cardinality(self) -> int:
        """Number of nodes, written ``card(G)`` in the paper."""
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether ``{u, v}`` is an edge of the graph."""
        return v in self._adjacency.get(u, frozenset())

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def _is_connected(self) -> bool:
        start = self._nodes[0]
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == len(self._nodes)

    def distances_from(self, source: Node) -> Dict[Node, int]:
        """BFS distances from *source* to every node."""
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def distance(self, u: Node, v: Node) -> int:
        """Shortest-path distance between *u* and *v*."""
        return self.distances_from(u)[v]

    def diameter(self) -> int:
        """The diameter of the graph."""
        return max(max(self.distances_from(u).values()) for u in self._nodes)

    def ball(self, center: Node, radius: int) -> Set[Node]:
        """The set of nodes at distance at most *radius* from *center*."""
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        dist = {center: 0}
        queue = deque([center])
        while queue:
            u = queue.popleft()
            if dist[u] == radius:
                continue
            for v in self._adjacency[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return set(dist)

    def neighborhood(self, center: Node, radius: int) -> "LabeledGraph":
        """The *r*-neighborhood ``N^G_r(u)``: induced subgraph of the ball."""
        return self.induced_subgraph(self.ball(center, radius))

    def induced_subgraph(self, nodes: Iterable[Node]) -> "LabeledGraph":
        """Induced subgraph on *nodes* (must be nonempty and connected)."""
        node_set = set(nodes)
        sub_edges = [
            tuple(e) for e in self._edges if set(e) <= node_set
        ]
        sub_labels = {u: self._labels[u] for u in node_set}
        ordered = [u for u in self._nodes if u in node_set]
        return LabeledGraph(ordered, sub_edges, sub_labels)

    def max_degree(self) -> int:
        """Maximum node degree."""
        return max(self.degree(u) for u in self._nodes)

    def max_structural_degree(self) -> int:
        """Maximum structural degree (degree + label length)."""
        return max(self.structural_degree(u) for u in self._nodes)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def relabel(self, labels: Mapping[Node, str]) -> "LabeledGraph":
        """Return a copy with the labels of the given nodes replaced."""
        new_labels = dict(self._labels)
        for u, lab in labels.items():
            if u not in self._adjacency:
                raise ValueError(f"unknown node {u!r}")
            new_labels[u] = _check_bitstring(lab)
        return LabeledGraph(self._nodes, (tuple(e) for e in self._edges), new_labels)

    def with_uniform_label(self, label: str) -> "LabeledGraph":
        """Return a copy in which every node carries *label*."""
        return self.relabel({u: label for u in self._nodes})

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` with ``label`` node attributes."""
        graph = nx.Graph()
        for u in self._nodes:
            graph.add_node(u, label=self._labels[u])
        for u, v in self.edge_pairs():
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.Graph, label_attr: str = "label") -> "LabeledGraph":
        """Build a labeled graph from a networkx graph.

        Missing label attributes default to the empty string.
        """
        labels = {u: str(graph.nodes[u].get(label_attr, "")) for u in graph.nodes}
        return cls(list(graph.nodes), list(graph.edges), labels)

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (
            set(self._nodes) == set(other._nodes)
            and self._edges == other._edges
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._nodes),
                self._edges,
                frozenset(self._labels.items()),
            )
        )

    def __repr__(self) -> str:
        return (
            f"LabeledGraph(nodes={len(self._nodes)}, edges={len(self._edges)}, "
            f"labels={{{', '.join(f'{u!r}: {lab!r}' for u, lab in sorted(self._labels.items(), key=lambda kv: str(kv[0])))}}})"
        )

    # ------------------------------------------------------------------
    # Isomorphism (used to express isomorphism-closed graph properties)
    # ------------------------------------------------------------------
    def is_isomorphic_to(self, other: "LabeledGraph") -> bool:
        """Label-preserving graph isomorphism check (delegates to networkx)."""
        return nx.is_isomorphic(
            self.to_networkx(),
            other.to_networkx(),
            node_match=lambda a, b: a.get("label", "") == b.get("label", ""),
        )

    def is_single_node(self) -> bool:
        """Whether the graph lies in ``node`` (single-node graphs ~ strings)."""
        return len(self._nodes) == 1
