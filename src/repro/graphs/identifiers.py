"""Identifier assignments (Section 3 of the paper).

An identifier assignment maps every node of a graph to a bit string.  The
paper requires only *local* uniqueness: an assignment is ``r``-locally unique
if any two distinct nodes within distance ``2r`` of each other (equivalently,
in the ``r``-neighborhood of a common node) receive distinct identifiers.  An
assignment is *small* if every identifier has length at most
``ceil(log2 card(N^G_{2r}(u)))``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, Mapping

from repro.graphs.labeled_graph import LabeledGraph, Node

IdentifierAssignment = Dict[Node, str]

_BIT_CHARS = frozenset("01")


def identifier_key(identifier: str):
    """Sort key realizing the paper's lexicographic identifier order.

    ``id(u) < id(v)`` iff ``id(u)`` is a proper prefix of ``id(v)`` or the
    first differing bit of ``id(u)`` is smaller.  Ordinary tuple comparison of
    the character sequence implements exactly this order.
    """
    return tuple(identifier)


def validate_identifier_assignment(graph: LabeledGraph, ids: Mapping[Node, str]) -> None:
    """Raise ``ValueError`` if *ids* is not a bit-string map covering all nodes."""
    for u in graph.nodes:
        if u not in ids:
            raise ValueError(f"identifier assignment is missing node {u!r}")
        if not set(ids[u]) <= _BIT_CHARS:
            raise ValueError(f"identifier of node {u!r} is not a bit string: {ids[u]!r}")


def is_locally_unique(graph: LabeledGraph, ids: Mapping[Node, str], radius: int) -> bool:
    """Whether *ids* is ``radius``-locally unique on *graph*.

    Two distinct nodes within distance ``2 * radius`` of each other must carry
    distinct identifiers.
    """
    validate_identifier_assignment(graph, ids)
    if radius < 0:
        raise ValueError("radius must be nonnegative")
    for u in graph.nodes:
        ball = graph.ball(u, 2 * radius)
        for v in ball:
            if v != u and ids[v] == ids[u]:
                return False
    return True


def is_globally_unique(graph: LabeledGraph, ids: Mapping[Node, str]) -> bool:
    """Whether all identifiers are pairwise distinct."""
    validate_identifier_assignment(graph, ids)
    values = [ids[u] for u in graph.nodes]
    return len(set(values)) == len(values)


def is_small(graph: LabeledGraph, ids: Mapping[Node, str], radius: int) -> bool:
    """Whether *ids* is small with respect to *radius* (Section 3).

    Every identifier must have length at most
    ``ceil(log2 card(N^G_{2 radius}(u)))``.
    """
    validate_identifier_assignment(graph, ids)
    for u in graph.nodes:
        ball_size = len(graph.ball(u, 2 * radius))
        bound = math.ceil(math.log2(ball_size)) if ball_size > 1 else 0
        if len(ids[u]) > bound:
            return False
    return True


def _to_bits(value: int, width: int) -> str:
    if width == 0:
        return ""
    return format(value, "b").zfill(width)


def small_identifier_assignment(graph: LabeledGraph, radius: int) -> IdentifierAssignment:
    """Construct a small ``radius``-locally unique identifier assignment.

    This realizes Remark 3 of the paper: greedily colour the nodes so that any
    two nodes within distance ``2 * radius`` receive different colours; the
    number of colours needed never exceeds the size of the largest
    ``2 * radius``-ball, so encoding the colour in binary stays within the
    logarithmic bound.
    """
    if radius < 0:
        raise ValueError("radius must be nonnegative")
    colour: Dict[Node, int] = {}
    for u in graph.nodes:
        ball = graph.ball(u, 2 * radius)
        used = {colour[v] for v in ball if v in colour and v != u}
        candidate = 0
        while candidate in used:
            candidate += 1
        colour[u] = candidate

    ids: IdentifierAssignment = {}
    for u in graph.nodes:
        ball_size = len(graph.ball(u, 2 * radius))
        width = math.ceil(math.log2(ball_size)) if ball_size > 1 else 0
        ids[u] = _to_bits(colour[u], width)
    return ids


def sequential_identifier_assignment(graph: LabeledGraph, width: int | None = None) -> IdentifierAssignment:
    """Globally unique identifiers ``0, 1, 2, ...`` encoded in binary.

    If *width* is ``None`` the minimal fixed width is used so that all
    identifiers have equal length (and are therefore pairwise distinct as bit
    strings).
    """
    n = graph.cardinality()
    if width is None:
        width = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    ids: IdentifierAssignment = {}
    for index, u in enumerate(graph.nodes):
        if index >= 2**width:
            raise ValueError("width too small for the number of nodes")
        ids[u] = _to_bits(index, width)
    return ids


def cyclic_identifier_assignment(graph: LabeledGraph, period: int) -> IdentifierAssignment:
    """Assign identifiers cyclically ``0 .. period-1`` in node order.

    This is the assignment used in the proof of Proposition 26 for cycle
    graphs: on a cycle whose length is a multiple of ``period`` it is
    ``r``-locally unique whenever ``period >= 2 r + 1``.
    """
    if period < 1:
        raise ValueError("period must be positive")
    width = max(1, math.ceil(math.log2(period))) if period > 1 else 1
    ids: IdentifierAssignment = {}
    for index, u in enumerate(graph.nodes):
        ids[u] = _to_bits(index % period, width)
    return ids


def random_identifier_assignment(
    graph: LabeledGraph, radius: int, rng: random.Random | None = None
) -> IdentifierAssignment:
    """A random globally unique assignment (hence locally unique for any radius).

    Identifiers are random permutations of ``0 .. n-1`` encoded with a fixed
    width, useful for property-based tests that identifiers must not matter.
    """
    rng = rng or random.Random(0)
    n = graph.cardinality()
    width = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    values = list(range(n))
    rng.shuffle(values)
    return {u: _to_bits(values[i], width) for i, u in enumerate(graph.nodes)}
