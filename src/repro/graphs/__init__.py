"""Graph substrate: labeled graphs, identifiers, certificates, structures.

This package implements Section 3 ("Preliminaries") of the paper:

* :class:`~repro.graphs.labeled_graph.LabeledGraph` -- finite, simple,
  undirected, connected graphs whose nodes carry bit-string labels.
* Identifier assignments (locally unique, small) in
  :mod:`repro.graphs.identifiers`.
* Certificate assignments and the ``(r, p)``-boundedness condition in
  :mod:`repro.graphs.certificates`.
* Relational structures and the structural representation ``$G`` of a graph
  (Figure 5 of the paper) in :mod:`repro.graphs.structures`.
* Graph generators used throughout the tests, examples and benchmarks in
  :mod:`repro.graphs.generators`.
"""

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.identifiers import (
    IdentifierAssignment,
    is_locally_unique,
    small_identifier_assignment,
    sequential_identifier_assignment,
)
from repro.graphs.certificates import (
    CertificateAssignment,
    CertificateList,
    neighborhood_information,
    is_rp_bounded,
)
from repro.graphs.structures import Structure, structural_representation
from repro.graphs import generators

__all__ = [
    "LabeledGraph",
    "IdentifierAssignment",
    "is_locally_unique",
    "small_identifier_assignment",
    "sequential_identifier_assignment",
    "CertificateAssignment",
    "CertificateList",
    "neighborhood_information",
    "is_rp_bounded",
    "Structure",
    "structural_representation",
    "generators",
]
