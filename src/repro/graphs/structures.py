"""Relational structures and structural representations (Section 3, Figure 5).

A structure ``S = (D, unary_1..unary_m, binary_1..binary_n)`` consists of a
finite nonempty domain, ``m`` unary relations and ``n`` binary relations; the
pair ``(m, n)`` is its signature.

The structural representation ``$G`` of a labeled graph ``G`` has signature
``(1, 2)``:

* one element per node and one element ``(u, i)`` per labeling bit,
* ``unary_1`` marks the labeling bits of value 1,
* ``binary_1`` contains the (symmetric) edges and the successor relation on
  each node's labeling bits,
* ``binary_2`` points from each node to each of its labeling bits.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node

Element = Hashable
Pair = Tuple[Element, Element]


class Structure:
    """A finite relational structure with unary and binary relations."""

    __slots__ = ("_domain", "_unary", "_binary", "_adjacency")

    def __init__(
        self,
        domain: Iterable[Element],
        unary: Sequence[Iterable[Element]] = (),
        binary: Sequence[Iterable[Pair]] = (),
    ) -> None:
        domain_list = list(domain)
        if not domain_list:
            raise ValueError("structures must have a nonempty domain")
        domain_set = set(domain_list)
        if len(domain_set) != len(domain_list):
            raise ValueError("duplicate elements in domain")

        unary_rels: List[FrozenSet[Element]] = []
        for rel in unary:
            rel_set = frozenset(rel)
            if not rel_set <= domain_set:
                raise ValueError("unary relation contains elements outside the domain")
            unary_rels.append(rel_set)

        binary_rels: List[FrozenSet[Pair]] = []
        for rel in binary:
            rel_set = frozenset(tuple(pair) for pair in rel)
            for a, b in rel_set:
                if a not in domain_set or b not in domain_set:
                    raise ValueError("binary relation contains elements outside the domain")
            binary_rels.append(rel_set)

        self._domain: Tuple[Element, ...] = tuple(domain_list)
        self._unary: Tuple[FrozenSet[Element], ...] = tuple(unary_rels)
        self._binary: Tuple[FrozenSet[Pair], ...] = tuple(binary_rels)

        adjacency: Dict[Element, Set[Element]] = {a: set() for a in domain_list}
        for rel in self._binary:
            for a, b in rel:
                adjacency[a].add(b)
                adjacency[b].add(a)
        self._adjacency = {a: frozenset(neigh) for a, neigh in adjacency.items()}

    # ------------------------------------------------------------------
    @property
    def domain(self) -> Tuple[Element, ...]:
        """The elements of the structure."""
        return self._domain

    @property
    def signature(self) -> Tuple[int, int]:
        """The pair ``(m, n)``: number of unary and binary relations."""
        return (len(self._unary), len(self._binary))

    def cardinality(self) -> int:
        """Number of elements, ``card(S)``."""
        return len(self._domain)

    def __len__(self) -> int:
        return len(self._domain)

    def __contains__(self, element: Element) -> bool:
        return element in self._adjacency

    def unary(self, index: int) -> FrozenSet[Element]:
        """The ``index``-th unary relation (1-based, as in the paper)."""
        return self._unary[index - 1]

    def binary(self, index: int) -> FrozenSet[Pair]:
        """The ``index``-th binary relation (1-based, as in the paper)."""
        return self._binary[index - 1]

    def in_unary(self, index: int, element: Element) -> bool:
        """Whether *element* lies in the ``index``-th unary relation."""
        return element in self._unary[index - 1]

    def in_binary(self, index: int, a: Element, b: Element) -> bool:
        """Whether ``(a, b)`` lies in the ``index``-th binary relation."""
        return (a, b) in self._binary[index - 1]

    def connected(self, a: Element, b: Element) -> bool:
        """The symmetric closure of all binary relations: ``a -⇀↽- b``."""
        return b in self._adjacency[a]

    def connections(self, element: Element) -> FrozenSet[Element]:
        """All elements connected to *element* by some binary relation."""
        return self._adjacency[element]

    def degree(self, element: Element) -> int:
        """Number of elements connected to *element* (structure degree)."""
        return len(self._adjacency[element])

    def max_degree(self) -> int:
        """Maximum structure degree over all elements."""
        return max(self.degree(a) for a in self._domain)

    # ------------------------------------------------------------------
    def ball(self, center: Element, radius: int) -> Set[Element]:
        """Elements reachable from *center* in at most *radius* connection steps."""
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        dist = {center: 0}
        queue = deque([center])
        while queue:
            a = queue.popleft()
            if dist[a] == radius:
                continue
            for b in self._adjacency[a]:
                if b not in dist:
                    dist[b] = dist[a] + 1
                    queue.append(b)
        return set(dist)

    def restriction(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced by *elements*."""
        element_set = set(elements)
        unary = [rel & element_set for rel in self._unary]
        binary = [
            {(a, b) for (a, b) in rel if a in element_set and b in element_set}
            for rel in self._binary
        ]
        ordered = [a for a in self._domain if a in element_set]
        return Structure(ordered, unary, binary)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            set(self._domain) == set(other._domain)
            and self._unary == other._unary
            and self._binary == other._binary
        )

    def __repr__(self) -> str:
        m, n = self.signature
        return f"Structure(|D|={len(self._domain)}, signature=({m}, {n}))"


# ----------------------------------------------------------------------
# Structural representation of labeled graphs (Figure 5)
# ----------------------------------------------------------------------
def bit_element(node: Node, position: int) -> Tuple[str, Node, int]:
    """The domain element representing the ``position``-th labeling bit of *node*.

    Positions are 1-based, following the paper.
    """
    return ("bit", node, position)


def node_element(node: Node) -> Node:
    """The domain element representing *node* itself (the node identity)."""
    return node


def is_bit_element(element: Element) -> bool:
    """Whether *element* is a labeling-bit element created by :func:`bit_element`."""
    return isinstance(element, tuple) and len(element) == 3 and element[0] == "bit"


def structural_representation(graph: LabeledGraph) -> Structure:
    """The structure ``$G`` of signature ``(1, 2)`` representing *graph*.

    * ``unary_1``: labeling bits of value ``1``.
    * ``binary_1``: graph edges (both orientations) plus the successor relation
      on each node's labeling bits.
    * ``binary_2``: node-to-labeling-bit ownership.
    """
    domain: List[Element] = []
    ones: Set[Element] = set()
    rel1: Set[Pair] = set()
    rel2: Set[Pair] = set()

    for u in graph.nodes:
        domain.append(node_element(u))
    for u in graph.nodes:
        label = graph.label(u)
        for i in range(1, len(label) + 1):
            element = bit_element(u, i)
            domain.append(element)
            if label[i - 1] == "1":
                ones.add(element)
            rel2.add((node_element(u), element))
            if i > 1:
                rel1.add((bit_element(u, i - 1), element))

    for u, v in graph.edge_pairs():
        rel1.add((node_element(u), node_element(v)))
        rel1.add((node_element(v), node_element(u)))

    return Structure(domain, unary=[ones], binary=[rel1, rel2])


def neighborhood_representation(graph: LabeledGraph, center: Node, radius: int) -> Structure:
    """The structural representation ``N^{$G}_r(u)`` of a node's r-neighborhood."""
    return structural_representation(graph.neighborhood(center, radius))


def node_elements(structure: Structure) -> List[Element]:
    """The elements of a structural representation that correspond to nodes.

    A node element is one with no ``binary_2`` arrow pointing *to* it (the
    formula ``IsNode`` of Section 5.1).
    """
    targets = {b for (a, b) in structure.binary(2)}
    return [a for a in structure.domain if a not in targets]
