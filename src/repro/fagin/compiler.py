"""Compiling local second-order sentences into arbiters (Theorems 14/15, backward direction).

Given a sentence of the local second-order hierarchy,

    phi  =  Q_1 R-block_1  ...  Q_l R-block_l  ∀x  psi(x),        psi ∈ BF,

the compiler produces

* one :class:`~repro.hierarchy.certificate_spaces.CertificateSpace` per
  quantifier block, whose certificates encode interpretations of that block's
  relation variables restricted to tuples "owned" by the certificate's node
  (first element is the node or one of its labeling bits, the remaining
  elements lie in a bounded neighborhood), and
* a :class:`CompiledArbiter`: a constant-round local algorithm in which every
  node gathers its radius-``r`` neighborhood (``r`` = nesting depth of the
  bounded quantifiers of ``psi``), decodes all certificates in the
  neighborhood into a partial interpretation of the relation variables, and
  evaluates ``psi`` at its own element and at each of its labeling bits.

Running the resulting arbiter through the certificate game of
:mod:`repro.hierarchy.game` decides exactly the property defined by ``phi``
(on the graphs where the exhaustive game is feasible); this is the executable
content of the generalized Fagin theorem.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.fagin.encoding import (
    ElementRef,
    RelationContent,
    TupleRef,
    encode_relation_content,
    safe_decode_relation_content,
)
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.graphs.structures import Structure
from repro.hierarchy.arbiters import ArbiterSpec
from repro.hierarchy.certificate_spaces import CertificateSpace
from repro.logic.fragments import second_order_prefix, is_lfo_sentence
from repro.logic.semantics import EvaluationOptions, evaluate
from repro.logic.syntax import (
    BoundedExists,
    BoundedForall,
    Forall,
    Formula,
    LocalExists,
    LocalForall,
    RelationVariable,
)
from repro.machines.local_algorithm import LocalView, NeighborhoodGatherAlgorithm


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------
def bounded_quantifier_depth(formula: Formula) -> int:
    """The maximum "reach" of the bounded quantifiers of a BF formula.

    Bounded quantifiers reach one step from their anchor; the radius-``r``
    variants reach ``r`` steps.  The value bounds how far from the evaluated
    element the formula can "see", and therefore the gathering radius of the
    compiled arbiter.
    """
    from repro.logic.syntax import (
        And,
        BinaryAtom,
        Equal,
        Iff,
        Implies,
        Not,
        Or,
        RelationAtom,
        TruthConstant,
        UnaryAtom,
        Exists,
    )

    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return 0
    if isinstance(formula, Not):
        return bounded_quantifier_depth(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return max(bounded_quantifier_depth(formula.left), bounded_quantifier_depth(formula.right))
    if isinstance(formula, (BoundedExists, BoundedForall)):
        return 1 + bounded_quantifier_depth(formula.body)
    if isinstance(formula, (LocalExists, LocalForall)):
        return formula.radius + bounded_quantifier_depth(formula.body)
    if isinstance(formula, (Exists, Forall)):
        # Unbounded quantifiers can see the whole structure; callers reject
        # such formulas before asking for a depth.
        raise ValueError("unbounded first-order quantifier inside a BF formula")
    raise TypeError(f"unknown formula node {formula!r}")


def quantifier_blocks(formula: Formula) -> Tuple[List[Tuple[str, List[RelationVariable]]], Formula]:
    """Group the second-order prefix into alternation blocks.

    Returns ``([(kind, [relations...]), ...], matrix)`` with ``kind`` being
    ``"E"`` or ``"A"``.
    """
    prefix, matrix = second_order_prefix(formula)
    blocks: List[Tuple[str, List[RelationVariable]]] = []
    for kind, relation in prefix:
        if blocks and blocks[-1][0] == kind:
            blocks[-1][1].append(relation)
        else:
            blocks.append((kind, [relation]))
    return blocks, matrix


# ----------------------------------------------------------------------
# Certificate spaces encoding relation interpretations
# ----------------------------------------------------------------------
def _owned_refs(graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> List[ElementRef]:
    """References to the elements owned by *node*: itself plus its labeling bits."""
    refs: List[ElementRef] = [(ids[node], None)]
    refs.extend((ids[node], i) for i in range(1, len(graph.label(node)) + 1))
    return refs


def _nearby_refs(
    graph: LabeledGraph, ids: Mapping[Node, str], node: Node, radius: int
) -> List[ElementRef]:
    """References to all elements owned by nodes within *radius* of *node*."""
    refs: List[ElementRef] = []
    for v in sorted(graph.ball(node, radius), key=lambda w: ids[w]):
        refs.extend(_owned_refs(graph, ids, v))
    return refs


def relation_certificate_space(
    relations: Sequence[RelationVariable],
    locality_radius: int,
    candidate_limit: int = 14,
    name: str = "",
) -> CertificateSpace:
    """The certificate space encoding interpretations of a block of relations.

    At node ``u`` the candidates are all ways to choose, for every relation of
    the block, a set of tuples whose first element is owned by ``u`` and whose
    remaining elements are owned by nodes within ``2 * locality_radius`` of
    ``u``.  The number of candidate tuples per node is capped by
    *candidate_limit* to keep the game enumerable.
    """

    def candidates(graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> List[str]:
        owned = _owned_refs(graph, ids, node)
        nearby = _nearby_refs(graph, ids, node, 2 * locality_radius)
        all_tuples: List[Tuple[str, TupleRef]] = []
        for relation in relations:
            if relation.arity == 1:
                tuples = [(ref,) for ref in owned]
            else:
                tuples = [
                    (first, *rest)
                    for first in owned
                    for rest in itertools.product(nearby, repeat=relation.arity - 1)
                ]
            all_tuples.extend((relation.name, tup) for tup in tuples)
        if len(all_tuples) > candidate_limit:
            raise ValueError(
                f"certificate space at node {node!r} would need {len(all_tuples)} candidate "
                f"tuples (> limit {candidate_limit}); use smaller graphs or monadic relations"
            )
        certificates: List[str] = []
        for mask in range(2 ** len(all_tuples)):
            content: Dict[str, Set[TupleRef]] = {relation.name: set() for relation in relations}
            for i, (rel_name, tup) in enumerate(all_tuples):
                if (mask >> i) & 1:
                    content[rel_name].add(tup)
            certificates.append(encode_relation_content({k: frozenset(v) for k, v in content.items()}))
        return certificates

    label = name or "+".join(r.name for r in relations)
    return CertificateSpace(candidates=candidates, name=f"relations[{label}]")


def decode_relation_certificates(
    view: LocalView, level_index: int, relations: Sequence[RelationVariable]
) -> Dict[str, Set[TupleRef]]:
    """Union of the relation fragments encoded by all certificates in a view."""
    combined: Dict[str, Set[TupleRef]] = {relation.name: set() for relation in relations}
    for identifier in view.nodes:
        certificates = view.certificates_of(identifier)
        if level_index >= len(certificates):
            continue
        content = safe_decode_relation_content(certificates[level_index])
        for name, tuples in content.items():
            if name in combined:
                combined[name].update(tuples)
    return combined


# ----------------------------------------------------------------------
# The compiled arbiter
# ----------------------------------------------------------------------
def _view_structure(view: LocalView) -> Tuple[Structure, Dict[ElementRef, object]]:
    """Build the structural representation of a local view.

    Elements are the view's node identifiers and ``(identifier, position)``
    pairs for labeling bits; the mapping from :class:`ElementRef` to element
    is returned alongside so decoded certificates can be resolved.
    """
    domain: List[object] = []
    ones: Set[object] = set()
    rel1: Set[Tuple[object, object]] = set()
    rel2: Set[Tuple[object, object]] = set()
    ref_to_element: Dict[ElementRef, object] = {}

    for identifier in sorted(view.nodes):
        domain.append(identifier)
        ref_to_element[(identifier, None)] = identifier
        label = view.label_of(identifier)
        previous = None
        for position in range(1, len(label) + 1):
            element = (identifier, position)
            domain.append(element)
            ref_to_element[(identifier, position)] = element
            rel2.add((identifier, element))
            if label[position - 1] == "1":
                ones.add(element)
            if previous is not None:
                rel1.add((previous, element))
            previous = element
    for edge in view.edges:
        a, b = tuple(edge)
        rel1.add((a, b))
        rel1.add((b, a))

    return Structure(domain, unary=[ones], binary=[rel1, rel2]), ref_to_element


@dataclass
class CompiledArbiter:
    """The result of compiling a local second-order sentence."""

    sentence: Formula
    blocks: List[Tuple[str, List[RelationVariable]]]
    matrix: Formula
    radius: int
    algorithm: NeighborhoodGatherAlgorithm
    spaces: List[CertificateSpace]

    def spec(self, name: str = "") -> ArbiterSpec:
        """Wrap the arbiter into an :class:`ArbiterSpec` ready for the game solver."""
        kind = "Sigma" if not self.blocks or self.blocks[0][0] == "E" else "Pi"
        return ArbiterSpec(
            name=name or f"compiled[{kind}^lp_{len(self.blocks)}]",
            machine=self.algorithm,
            level=len(self.blocks),
            kind=kind,
            spaces=tuple(self.spaces),
            identifier_radius=max(1, self.radius + 1),
            certificate_radius=max(1, 2 * self.radius),
        )


def compile_sentence(
    sentence: Formula,
    candidate_limit: int = 14,
) -> CompiledArbiter:
    """Compile a sentence of the local second-order hierarchy into an arbiter.

    The sentence must consist of a second-order quantifier prefix followed by
    an LFO matrix ``∀x psi(x)`` with ``psi`` in BF.
    """
    blocks, matrix = quantifier_blocks(sentence)
    if not is_lfo_sentence(matrix):
        raise ValueError("the matrix after the second-order prefix must be an LFO sentence")
    assert isinstance(matrix, Forall)
    psi = matrix.body
    first_order_variable = matrix.variable
    radius = bounded_quantifier_depth(psi)

    all_relations = [relation for _, block in blocks for relation in block]
    spaces = [
        relation_certificate_space(block, radius, candidate_limit=candidate_limit)
        for _, block in blocks
    ]

    def compute(view: LocalView) -> str:
        structure, ref_to_element = _view_structure(view)
        # Decode all certificate levels visible in the view.
        interpretation: Dict[RelationVariable, FrozenSet[Tuple[object, ...]]] = {}
        for level_index, (_, block) in enumerate(blocks):
            decoded = decode_relation_certificates(view, level_index, block)
            for relation in block:
                tuples = set()
                for tup in decoded[relation.name]:
                    try:
                        resolved = tuple(ref_to_element[ref] for ref in tup)
                    except KeyError:
                        continue  # tuple refers to elements outside the view
                    tuples.add(resolved)
                interpretation[relation] = frozenset(tuples)
        # Evaluate psi at the center element and at each of its labeling bits.
        center = view.center
        own_elements = [center] + [
            (center, position) for position in range(1, len(view.center_label()) + 1)
        ]
        options = EvaluationOptions(candidate_limit=0)
        for element in own_elements:
            assignment: Dict[object, object] = dict(interpretation)
            assignment[first_order_variable] = element
            if not evaluate(structure, psi, assignment, options):
                return "0"
        return "1"

    algorithm = NeighborhoodGatherAlgorithm(radius, compute, name="fagin-compiled")
    return CompiledArbiter(
        sentence=sentence,
        blocks=blocks,
        matrix=matrix,
        radius=radius,
        algorithm=algorithm,
        spaces=spaces,
    )
