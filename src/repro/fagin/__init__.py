"""The generalized Fagin theorem made executable (Sections 7 and 8).

* :mod:`repro.fagin.compiler` -- the backward direction of Theorems 14/15:
  compile a sentence of the local second-order hierarchy into an arbiter for
  the corresponding level of the locally polynomial hierarchy.  Certificates
  encode the interpretations of the quantified relation variables, restricted
  (as in the paper) to tuples of elements near the certificate's owner.
* :mod:`repro.fagin.cook_levin` -- the construction of Theorem 22: from a
  Sigma^lfo_1 sentence and an input graph, build the Boolean graph whose
  satisfiability is equivalent to the sentence holding on the graph.  This is
  the executable content of the generalized Cook-Levin theorem.
"""

from repro.fagin.compiler import (
    CompiledArbiter,
    compile_sentence,
    relation_certificate_space,
    decode_relation_certificates,
)
from repro.fagin.cook_levin import cook_levin_boolean_graph, cook_levin_reduction_check

__all__ = [
    "CompiledArbiter",
    "compile_sentence",
    "relation_certificate_space",
    "decode_relation_certificates",
    "cook_levin_boolean_graph",
    "cook_levin_reduction_check",
]
