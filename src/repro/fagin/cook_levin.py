"""The generalized Cook-Levin construction (Theorem 22).

Given a Sigma^lfo_1 sentence ``∃R_1 ... ∃R_n ∀x φ(x)`` defining a graph
property ``L``, and an input graph ``G`` with a locally unique identifier
assignment, this module builds the Boolean graph ``G''`` of the paper's proof:
every node ``u`` is labeled with the Boolean formula

    φ^G_u  =  ⋀_{a owned by u}  τ_{x ↦ a}(φ)

where ``τ_σ`` replaces relation-free atoms by their truth values in ``$G``,
replaces ``R(y_1, ..., y_k)`` by the Boolean variable
``P_R(id-reference of σ(y_1), ..., σ(y_k))``, and expands bounded quantifiers
into finite disjunctions/conjunctions over the connected elements.

``G`` satisfies the sentence iff ``G''`` is a satisfiable Boolean graph
(``G ∈ L  ⟺  G'' ∈ sat-graph``); this is the executable content of the
NLP-hardness of ``sat-graph``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.boolsat import formulas as bf
from repro.boolsat.boolean_graph import boolean_graph_from_formulas
from repro.graphs.identifiers import small_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.graphs.structures import Structure, bit_element, structural_representation
from repro.logic.fragments import classify_local_second_order, second_order_prefix
from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Equal,
    Forall,
    Formula,
    Iff,
    Implies,
    LocalExists,
    LocalForall,
    Not,
    Or,
    RelationAtom,
    SOExists,
    TruthConstant,
    UnaryAtom,
)


def _element_reference(ids: Mapping[Node, str], element: object) -> str:
    """A stable name for a structural element, built from identifiers."""
    if isinstance(element, tuple) and len(element) == 3 and element[0] == "bit":
        _, node, position = element
        return f"v{ids[node] or 'e'}b{position}"
    return f"v{ids[element] or 'e'}"


def _translate(
    formula: Formula,
    sigma: Dict[str, object],
    structure: Structure,
    reference: Callable[[object], str],
) -> bf.BooleanFormula:
    """The translation ``τ_σ`` of the proof of Theorem 22."""
    if isinstance(formula, TruthConstant):
        return bf.Const(formula.value)
    if isinstance(formula, UnaryAtom):
        return bf.Const(structure.in_unary(formula.index, sigma[formula.variable]))
    if isinstance(formula, BinaryAtom):
        return bf.Const(
            structure.in_binary(formula.index, sigma[formula.left], sigma[formula.right])
        )
    if isinstance(formula, Equal):
        return bf.Const(sigma[formula.left] == sigma[formula.right])
    if isinstance(formula, RelationAtom):
        arguments = "_".join(reference(sigma[name]) for name in formula.arguments)
        return bf.Var(f"{formula.relation.name}_{arguments}")
    if isinstance(formula, Not):
        return bf.Not(_translate(formula.operand, sigma, structure, reference))
    if isinstance(formula, And):
        return bf.And(
            _translate(formula.left, sigma, structure, reference),
            _translate(formula.right, sigma, structure, reference),
        )
    if isinstance(formula, Or):
        return bf.Or(
            _translate(formula.left, sigma, structure, reference),
            _translate(formula.right, sigma, structure, reference),
        )
    if isinstance(formula, Implies):
        return bf.Or(
            bf.Not(_translate(formula.left, sigma, structure, reference)),
            _translate(formula.right, sigma, structure, reference),
        )
    if isinstance(formula, Iff):
        left = _translate(formula.left, sigma, structure, reference)
        right = _translate(formula.right, sigma, structure, reference)
        return bf.And(bf.Or(bf.Not(left), right), bf.Or(left, bf.Not(right)))
    if isinstance(formula, (BoundedExists, BoundedForall)):
        anchor = sigma[formula.anchor]
        parts = [
            _translate(formula.body, {**sigma, formula.variable: element}, structure, reference)
            for element in structure.connections(anchor)
        ]
        if isinstance(formula, BoundedExists):
            return bf.disjunction(parts)
        return bf.conjunction(parts)
    if isinstance(formula, (LocalExists, LocalForall)):
        anchor = sigma[formula.anchor]
        parts = [
            _translate(formula.body, {**sigma, formula.variable: element}, structure, reference)
            for element in structure.ball(anchor, formula.radius)
        ]
        if isinstance(formula, LocalExists):
            return bf.disjunction(parts)
        return bf.conjunction(parts)
    raise ValueError(
        f"formula node {type(formula).__name__} is not allowed inside the BF matrix"
    )


def cook_levin_boolean_graph(
    sentence: Formula,
    graph: LabeledGraph,
    ids: Optional[Mapping[Node, str]] = None,
) -> LabeledGraph:
    """The Boolean graph ``G''`` of Theorem 22 for a Sigma^lfo_1 sentence.

    The sentence must be of the form ``∃R_1 ... ∃R_n ∀x φ(x)`` with ``φ`` in
    BF (i.e. it must lie in Sigma^lfo_1, possibly with an empty prefix).
    """
    logic_class = classify_local_second_order(sentence)
    if logic_class is None or logic_class.kind != "Sigma" or logic_class.level > 1:
        raise ValueError("the Cook-Levin construction expects a Sigma^lfo_1 sentence")

    prefix, matrix = second_order_prefix(sentence)
    if any(kind != "E" for kind, _ in prefix):
        raise ValueError("the second-order prefix must be purely existential")
    assert isinstance(matrix, Forall)
    phi = matrix.body
    variable = matrix.variable

    if ids is None:
        # The proof uses (r + 1)-locally unique identifiers where r is the
        # visibility radius of phi; a globally-unique small assignment also works.
        from repro.fagin.compiler import bounded_quantifier_depth

        ids = small_identifier_assignment(graph, bounded_quantifier_depth(phi) + 1)

    structure = structural_representation(graph)
    reference = lambda element: _element_reference(ids, element)

    node_formulas: Dict[Node, bf.BooleanFormula] = {}
    for u in graph.nodes:
        owned: List[object] = [u]
        owned.extend(bit_element(u, i) for i in range(1, len(graph.label(u)) + 1))
        parts = [
            _translate(phi, {variable: element}, structure, reference) for element in owned
        ]
        node_formulas[u] = bf.conjunction(parts)

    edges = [tuple(edge) for edge in graph.edges]
    return boolean_graph_from_formulas(node_formulas, edges)


def cook_levin_reduction_check(
    sentence: Formula,
    graphs: Sequence[LabeledGraph],
    ground_truth: Callable[[LabeledGraph], bool],
) -> List[Tuple[LabeledGraph, bool, bool]]:
    """Check ``G ∈ L ⟺ G'' ∈ sat-graph`` on the given graphs.

    Returns the list of counterexamples ``(graph, ground_truth_value,
    sat_graph_value)``; empty means the equivalence held everywhere.
    """
    from repro.properties.satgraph import sat_graph

    failures: List[Tuple[LabeledGraph, bool, bool]] = []
    for graph in graphs:
        boolean_graph = cook_levin_boolean_graph(sentence, graph)
        expected = ground_truth(graph)
        actual = sat_graph(boolean_graph)
        if expected != actual:
            failures.append((graph, expected, actual))
    return failures
