"""Space-time diagrams as relations over string structures (Theorem 12).

The heart of Fagin's proof -- and of its distributed generalization in
Theorem 14 -- is the encoding of a polynomial-time machine's space-time
diagram as a collection of relations over the input structure: because the
running time is polynomially bounded in the structure's cardinality, every
time step and every tape position can be addressed by a ``k``-tuple of domain
elements, where ``k`` depends only on the degree of the bounding polynomial.

This module performs that encoding executably for the single-node case (the
classical theorem), which the paper recovers by restricting Theorem 14 to
single-node graphs:

* :func:`diagram_relations` converts the diagram of an accepting or rejecting
  run of a :class:`~repro.machines.classical.ClassicalTuringMachine` into the
  relations ``S_q`` (states), ``H`` (head positions) and ``T_α`` (tape
  contents), indexed by ``k``-tuples of elements of the string structure;
* the ``verify_*`` functions check the consistency conditions that the
  formula of Fagin's proof expresses (``ExecGroundRules``, ``OwnInput``,
  ``ComputeLocally``, ``Accept``) directly against those relations;
* :func:`fagin_theorem_check` confirms, input by input, that the machine
  accepts exactly when its canonical witness satisfies all the conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.generators import string_graph
from repro.graphs.structures import Structure, structural_representation
from repro.machines.classical import BLANK, LEFT_END, ClassicalTuringMachine, MachineRun

__all__ = [
    "FaginWitness",
    "element_order",
    "tuple_degree",
    "index_tuple",
    "diagram_relations",
    "verify_ground_rules",
    "verify_initial_configuration",
    "verify_transitions",
    "verify_acceptance",
    "verify_witness",
    "fagin_theorem_check",
]

TAPE_ALPHABET = ("0", "1", BLANK, LEFT_END)

ElementTuple = Tuple[object, ...]


@dataclass(frozen=True)
class FaginWitness:
    """The relational encoding of one space-time diagram.

    Attributes
    ----------
    degree:
        The tuple length ``k``: times and positions are ``k``-tuples of
        elements, so the encoding can address ``card(S)^k`` cells.
    order:
        The canonical linear order of the structure's elements used to read
        tuples as numbers.
    states:
        ``states[q]`` is the set of time tuples at which the machine is in
        state ``q``.
    heads:
        The set of pairs ``(time tuple, position tuple)`` scanned by the head.
    tape:
        ``tape[symbol]`` is the set of pairs ``(time tuple, position tuple)``
        carrying that symbol.
    steps, width:
        The dimensions of the encoded diagram.
    """

    degree: int
    order: Tuple[object, ...]
    states: Mapping[str, FrozenSet[ElementTuple]]
    heads: FrozenSet[Tuple[ElementTuple, ElementTuple]]
    tape: Mapping[str, FrozenSet[Tuple[ElementTuple, ElementTuple]]]
    steps: int
    width: int


# ----------------------------------------------------------------------
# Addressing cells by tuples of elements
# ----------------------------------------------------------------------
def element_order(structure: Structure) -> Tuple[object, ...]:
    """The canonical linear order of the structure's elements (domain order)."""
    return tuple(structure.domain)


def tuple_degree(structure: Structure, needed: int) -> int:
    """The smallest ``k`` with ``card(S)^k >= needed`` (at least 1)."""
    size = structure.cardinality()
    if size < 2 and needed > size:
        # A one-element structure can address only one cell, no matter the
        # tuple length; the paper treats this case separately (footnote 2).
        raise ValueError("structures with a single element cannot address multiple cells")
    degree = 1
    capacity = size
    while capacity < needed:
        degree += 1
        capacity *= size
    return degree


def index_tuple(index: int, order: Sequence[object], degree: int) -> ElementTuple:
    """The ``index``-th ``degree``-tuple of elements in lexicographic order."""
    size = len(order)
    if index >= size**degree:
        raise ValueError(f"index {index} does not fit into {degree}-tuples over {size} elements")
    digits: List[int] = []
    remaining = index
    for _ in range(degree):
        digits.append(remaining % size)
        remaining //= size
    return tuple(order[digit] for digit in reversed(digits))


# ----------------------------------------------------------------------
# Encoding a diagram
# ----------------------------------------------------------------------
def diagram_relations(run: MachineRun, structure: Structure) -> FaginWitness:
    """Encode the space-time diagram of *run* as relations over *structure*."""
    diagram = run.diagram
    needed = max(diagram.steps + 1, diagram.width, 1)
    degree = tuple_degree(structure, needed)
    order = element_order(structure)

    states: Dict[str, set] = {}
    heads: set = set()
    tape: Dict[str, set] = {symbol: set() for symbol in TAPE_ALPHABET}

    time_tuples = [index_tuple(t, order, degree) for t in range(diagram.steps + 1)]
    position_tuples = [index_tuple(p, order, degree) for p in range(diagram.width)]

    for time, time_tuple in enumerate(time_tuples):
        states.setdefault(diagram.states[time], set()).add(time_tuple)
        heads.add((time_tuple, position_tuples[diagram.heads[time]]))
        for position, position_tuple in enumerate(position_tuples):
            tape[diagram.cell(time, position)].add((time_tuple, position_tuple))

    return FaginWitness(
        degree=degree,
        order=order,
        states={state: frozenset(tuples) for state, tuples in states.items()},
        heads=frozenset(heads),
        tape={symbol: frozenset(cells) for symbol, cells in tape.items()},
        steps=diagram.steps,
        width=diagram.width,
    )


# ----------------------------------------------------------------------
# The consistency conditions of Fagin's formula
# ----------------------------------------------------------------------
def _time_tuples(witness: FaginWitness) -> List[ElementTuple]:
    return [index_tuple(t, witness.order, witness.degree) for t in range(witness.steps + 1)]


def _position_tuples(witness: FaginWitness) -> List[ElementTuple]:
    return [index_tuple(p, witness.order, witness.degree) for p in range(witness.width)]


def verify_ground_rules(witness: FaginWitness, machine: ClassicalTuringMachine) -> bool:
    """``ExecGroundRules``: one state per time, one symbol per cell, one head per time."""
    times = _time_tuples(witness)
    positions = _position_tuples(witness)
    for time_tuple in times:
        holding_states = [q for q, tuples in witness.states.items() if time_tuple in tuples]
        if len(holding_states) != 1 or holding_states[0] not in machine.states:
            return False
        head_cells = [pair for pair in witness.heads if pair[0] == time_tuple]
        if len(head_cells) != 1:
            return False
        for position_tuple in positions:
            symbols = [
                symbol
                for symbol, cells in witness.tape.items()
                if (time_tuple, position_tuple) in cells
            ]
            if len(symbols) != 1:
                return False
    return True


def verify_initial_configuration(witness: FaginWitness, machine: ClassicalTuringMachine, word: str) -> bool:
    """``OwnInput``: at time 0 the tape spells ``> word`` (padded with blanks)."""
    times = _time_tuples(witness)
    positions = _position_tuples(witness)
    initial = (LEFT_END + word).ljust(witness.width, BLANK)
    time0 = times[0]
    if time0 not in witness.states.get(machine.initial_state, frozenset()):
        return False
    if (time0, positions[0]) not in witness.heads:
        return False
    for position, position_tuple in enumerate(positions):
        expected = initial[position]
        if (time0, position_tuple) not in witness.tape[expected]:
            return False
    return True


def _cell_symbol(witness: FaginWitness, time_tuple: ElementTuple, position_tuple: ElementTuple) -> Optional[str]:
    for symbol, cells in witness.tape.items():
        if (time_tuple, position_tuple) in cells:
            return symbol
    return None


def _state_at(witness: FaginWitness, time_tuple: ElementTuple) -> Optional[str]:
    for state, tuples in witness.states.items():
        if time_tuple in tuples:
            return state
    return None


def verify_transitions(witness: FaginWitness, machine: ClassicalTuringMachine) -> bool:
    """``ComputeLocally``: consecutive configurations respect the transition function."""
    times = _time_tuples(witness)
    positions = _position_tuples(witness)
    position_index = {tuple_: index for index, tuple_ in enumerate(positions)}

    for step in range(witness.steps):
        now, nxt = times[step], times[step + 1]
        state = _state_at(witness, now)
        next_state = _state_at(witness, nxt)
        head_pairs = [pair for pair in witness.heads if pair[0] == now]
        next_head_pairs = [pair for pair in witness.heads if pair[0] == nxt]
        if len(head_pairs) != 1 or len(next_head_pairs) != 1:
            return False
        head = position_index[head_pairs[0][1]]
        next_head = position_index[next_head_pairs[0][1]]
        scanned = _cell_symbol(witness, now, positions[head])

        if state in (machine.accept_state, machine.reject_state):
            # Halting states do not move; configurations stay frozen.
            expected_state, expected_written, expected_move = state, scanned, 0
        else:
            transition = machine.transitions.get((state, scanned))
            if transition is None:
                expected_state, expected_written, expected_move = machine.reject_state, scanned, 0
            else:
                expected_state, expected_written, expected_move = transition

        if next_state != expected_state:
            return False
        if next_head != max(0, head + expected_move):
            return False
        for position, position_tuple in enumerate(positions):
            before = _cell_symbol(witness, now, position_tuple)
            after = _cell_symbol(witness, nxt, position_tuple)
            expected_symbol = expected_written if position == head else before
            if after != expected_symbol:
                return False
    return True


def verify_acceptance(witness: FaginWitness, machine: ClassicalTuringMachine) -> bool:
    """``Accept``: the final configuration is in the accepting state."""
    final_time = _time_tuples(witness)[-1]
    return final_time in witness.states.get(machine.accept_state, frozenset())


def verify_witness(
    witness: FaginWitness, machine: ClassicalTuringMachine, word: str
) -> Dict[str, bool]:
    """Evaluate all four condition groups; the witness is accepting iff all hold."""
    checks = {
        "ground_rules": verify_ground_rules(witness, machine),
        "initial_configuration": verify_initial_configuration(witness, machine, word),
        "transitions": verify_transitions(witness, machine),
        "acceptance": verify_acceptance(witness, machine),
    }
    checks["all"] = all(checks.values())
    return checks


def fagin_theorem_check(machine: ClassicalTuringMachine, word: str) -> Dict[str, object]:
    """The executable content of Theorem 12 on one input.

    Runs the machine on *word*, encodes the run's space-time diagram over the
    structural representation of the single-node graph labeled *word*, and
    verifies the Fagin conditions.  The machine accepts exactly when the
    canonical witness passes all checks; on rejecting runs the ground rules,
    initial configuration and transition conditions still hold (the diagram is
    genuine) but the acceptance condition fails.
    """
    if not word:
        raise ValueError(
            "the empty word corresponds to a one-element structure, which the paper "
            "treats as a special case (footnote 2); pass a nonempty bit string"
        )
    graph = string_graph(word)
    structure = structural_representation(graph)
    run = machine.run(word)
    witness = diagram_relations(run, structure)
    checks = verify_witness(witness, machine, word)
    return {
        "word": word,
        "accepted_by_machine": run.accepted,
        "witness_checks": checks,
        "witness_is_accepting": checks["all"],
        "agreement": run.accepted == checks["all"],
        "tuple_degree": witness.degree,
        "structure_cardinality": structure.cardinality(),
        "diagram_cells": (witness.steps + 1) * witness.width,
    }
