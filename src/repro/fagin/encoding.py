"""Bit-string encoding of relation interpretations as certificates.

The backward direction of Theorem 15 lets Eve and Adam encode interpretations
of the quantified relation variables in their certificates: the certificate
of node ``u`` stores, for every relation variable of the current block, the
set of tuples whose *first* element is ``u`` itself or one of ``u``'s
labeling bits (the "owned" elements), with the other elements drawn from a
bounded neighborhood of ``u``.  Elements are referenced by the owning node's
locally unique identifier together with an optional bit position.

The concrete wire format is a plain ASCII description converted to a bit
string with the 8-bit encoding of :mod:`repro.boolsat.encoding` -- the paper
leaves the encoding of finite objects unspecified, so any injective encoding
will do.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.boolsat.encoding import decode_text, encode_text

ElementRef = Tuple[str, Optional[int]]
"""A reference to a structural element: (owner identifier, bit position or None)."""

TupleRef = Tuple[ElementRef, ...]
RelationContent = Dict[str, FrozenSet[TupleRef]]


def _render_element(ref: ElementRef) -> str:
    identifier, position = ref
    return f"{identifier or '@'}.{position if position is not None else '-'}"


def _parse_element(text: str) -> ElementRef:
    identifier, _, position = text.partition(".")
    if identifier == "@":
        identifier = ""
    return (identifier, None if position == "-" else int(position))


def _element_sort_key(ref: ElementRef) -> Tuple[str, int, int]:
    """Total order on element references; ``None`` positions sort first.

    Plain tuple comparison would try ``int < None`` when a whole-node
    reference meets a bit-position reference of the same owner.
    """
    identifier, position = ref
    return (identifier, 0 if position is None else 1, position if position is not None else 0)


def _tuple_sort_key(tup: TupleRef) -> Tuple[Tuple[str, int, int], ...]:
    return tuple(_element_sort_key(ref) for ref in tup)


def encode_relation_content(content: Mapping[str, Iterable[TupleRef]]) -> str:
    """Serialize a per-node relation fragment into a certificate bit string.

    Tuples are sorted under a ``None``-safe key so the encoding is canonical
    (equal fragments always serialize to equal bit strings).
    """
    parts = []
    for name in sorted(content):
        tuples = sorted(content[name], key=_tuple_sort_key)
        rendered = ",".join("+".join(_render_element(ref) for ref in tup) for tup in tuples)
        parts.append(f"{name}:{rendered}")
    return encode_text(";".join(parts))


def decode_relation_content(bits: str) -> RelationContent:
    """Parse a certificate produced by :func:`encode_relation_content`.

    Raises ``ValueError`` on malformed input; arbiters treat such certificates
    as empty relation fragments (the restrictive-arbiter convention).
    """
    text = decode_text(bits)
    result: Dict[str, FrozenSet[TupleRef]] = {}
    if not text:
        return result
    for part in text.split(";"):
        if not part:
            continue
        name, _, body = part.partition(":")
        tuples: List[TupleRef] = []
        if body:
            for tuple_text in body.split(","):
                refs = tuple(_parse_element(item) for item in tuple_text.split("+"))
                tuples.append(refs)
        result[name] = frozenset(tuples)
    return result


def safe_decode_relation_content(bits: str) -> RelationContent:
    """Like :func:`decode_relation_content` but returning ``{}`` on malformed input."""
    try:
        return decode_relation_content(bits)
    except (ValueError, KeyError):
        return {}
