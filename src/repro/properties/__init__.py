"""Ground-truth graph property checkers.

Every graph property mentioned in the paper is implemented here as a
*centralized* decision procedure on :class:`~repro.graphs.labeled_graph.LabeledGraph`.
These serve as oracles: the distributed machinery (deciders, verifiers,
arbiters, reductions, logical formulas) is tested against them.

All properties are closed under isomorphism by construction, since they only
inspect the graph's topology and labels.
"""

from repro.properties.base import GraphProperty, property_registry, register_property
from repro.properties.selection import (
    all_selected,
    not_all_selected,
    one_selected,
    none_selected,
)
from repro.properties.coloring import (
    is_k_colorable,
    three_colorable,
    two_colorable,
    non_two_colorable,
    non_three_colorable,
    chromatic_number,
    three_round_three_colorable,
    labels_form_proper_coloring,
)
from repro.properties.cycles import (
    eulerian,
    non_eulerian,
    hamiltonian,
    non_hamiltonian,
    acyclic,
    odd,
    is_tree,
)
from repro.properties.misc import (
    automorphic,
    prime_cardinality,
    bounded_structural_degree,
)
from repro.properties.satgraph import sat_graph, three_sat_graph, three_sat_graph_domain

__all__ = [
    "GraphProperty",
    "property_registry",
    "register_property",
    "all_selected",
    "not_all_selected",
    "one_selected",
    "none_selected",
    "is_k_colorable",
    "three_colorable",
    "two_colorable",
    "non_two_colorable",
    "non_three_colorable",
    "chromatic_number",
    "three_round_three_colorable",
    "labels_form_proper_coloring",
    "eulerian",
    "non_eulerian",
    "hamiltonian",
    "non_hamiltonian",
    "acyclic",
    "odd",
    "is_tree",
    "automorphic",
    "prime_cardinality",
    "bounded_structural_degree",
    "sat_graph",
    "three_sat_graph",
    "three_sat_graph_domain",
]
