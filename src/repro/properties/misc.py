"""Miscellaneous properties used in Figure 7: automorphic, prime, degree bounds."""

from __future__ import annotations

from itertools import permutations

import networkx as nx

from repro.graphs.labeled_graph import LabeledGraph
from repro.properties.base import GraphProperty, register_property


def automorphic(graph: LabeledGraph) -> bool:
    """Whether the graph has a nontrivial (label-preserving) automorphism.

    Goos and Suomela showed this inherently global property requires
    quadratic-size certificates; Figure 7 places it outside the locally
    bounded hierarchy.
    """
    nx_graph = graph.to_networkx()
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        nx_graph,
        nx_graph,
        node_match=lambda a, b: a.get("label", "") == b.get("label", ""),
    )
    identity = {u: u for u in graph.nodes}
    for mapping in matcher.isomorphisms_iter():
        if mapping != identity:
            return True
    return False


def prime_cardinality(graph: LabeledGraph) -> bool:
    """Whether the number of nodes is a prime number (the ``prime`` row of Fig. 7)."""
    n = graph.cardinality()
    if n < 2:
        return False
    divisor = 2
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 1
    return True


def bounded_structural_degree(graph: LabeledGraph, bound: int) -> bool:
    """Whether the graph lies in ``graph(bound)``: structural degree at most *bound*.

    The structural degree of a node is its degree plus its label length
    (Section 9).
    """
    return graph.max_structural_degree() <= bound


AUTOMORPHIC = register_property(
    GraphProperty(
        name="automorphic",
        decide=automorphic,
        description="has a nontrivial label-preserving automorphism",
        paper_alternation_class="outside locally bounded hierarchy",
        paper_lcp_class="LCP(poly(n))",
    )
)

PRIME = register_property(
    GraphProperty(
        name="prime",
        decide=prime_cardinality,
        description="has a prime number of nodes",
        paper_alternation_class="outside locally bounded hierarchy",
        paper_lcp_class="LCP(poly(n))",
    )
)
