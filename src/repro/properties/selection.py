"""Selection properties: all-selected, not-all-selected, one-selected.

``all-selected`` is the trivially LP-complete property requiring every node
to carry the label ``1`` (Remark 17); its complement ``not-all-selected``
separates several classes in the paper (it is coLP-complete and lies outside
NLP by Proposition 26); ``one-selected`` (exactly one node labeled ``1``) is
the Sigma^lfo_3 example of Example 8.
"""

from __future__ import annotations

from repro.graphs.labeled_graph import LabeledGraph
from repro.properties.base import GraphProperty, register_property


def _selected_count(graph: LabeledGraph) -> int:
    return sum(1 for u in graph.nodes if graph.label(u) == "1")


def all_selected(graph: LabeledGraph) -> bool:
    """Every node is labeled with the bit string ``1``."""
    return _selected_count(graph) == graph.cardinality()


def not_all_selected(graph: LabeledGraph) -> bool:
    """At least one node carries a label different from ``1``."""
    return not all_selected(graph)


def one_selected(graph: LabeledGraph) -> bool:
    """Exactly one node is labeled with the bit string ``1`` (Example 8)."""
    return _selected_count(graph) == 1


def none_selected(graph: LabeledGraph) -> bool:
    """No node is labeled with the bit string ``1``."""
    return _selected_count(graph) == 0


ALL_SELECTED = register_property(
    GraphProperty(
        name="all-selected",
        decide=all_selected,
        description="every node is labeled 1",
        paper_alternation_class="LP",
        paper_lcp_class="LCP(0)",
    )
)

NOT_ALL_SELECTED = register_property(
    GraphProperty(
        name="not-all-selected",
        decide=not_all_selected,
        description="some node is not labeled 1",
        paper_alternation_class="coLP-complete",
        paper_lcp_class="LCP(0)",
    )
)

ONE_SELECTED = register_property(
    GraphProperty(
        name="one-selected",
        decide=one_selected,
        description="exactly one node is labeled 1",
        paper_alternation_class="Sigma_lb_3",
        paper_lcp_class="LCP(O(log n))",
    )
)
