"""Cycle-related properties: Eulerianness, Hamiltonicity, acyclicity, parity.

* ``eulerian`` -- all node degrees are even (Euler's theorem for connected
  graphs); LP-complete in the paper (Proposition 18).
* ``hamiltonian`` -- there is a cycle through every node exactly once; both
  LP-hard and coLP-hard (Propositions 19 and 20), hence outside NLP and coNLP.
* ``acyclic`` -- the graph is a tree (connected and without cycles);
  Sigma^lfo_3-definable (Section 5.2).
* ``odd`` -- the number of nodes is odd; Sigma^lfo_3-definable (Section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.properties.base import GraphProperty, register_property


def eulerian(graph: LabeledGraph) -> bool:
    """Whether the (connected) graph has an Eulerian cycle: all degrees even."""
    return all(graph.degree(u) % 2 == 0 for u in graph.nodes)


def non_eulerian(graph: LabeledGraph) -> bool:
    """Whether some node has odd degree."""
    return not eulerian(graph)


def find_hamiltonian_cycle(graph: LabeledGraph) -> Optional[List[Node]]:
    """A Hamiltonian cycle as a node sequence (without repeating the start), or ``None``.

    Backtracking search; exponential in the worst case but fine for the graph
    sizes produced by the reductions in this repository.  Following the usual
    convention, a single node or a single edge does not constitute a cycle, so
    graphs with fewer than three nodes are never Hamiltonian.
    """
    n = graph.cardinality()
    if n < 3:
        return None
    # A node of degree < 2 can never lie on a cycle.
    if any(graph.degree(u) < 2 for u in graph.nodes):
        return None
    nodes = list(graph.nodes)
    start = min(nodes, key=str)
    path = [start]
    visited = {start}

    def prune() -> bool:
        """Return True if the current partial path provably cannot be extended.

        Two checks: (1) every unvisited node must keep at least two usable
        neighbors (unvisited ones, or the path endpoints); (2) the unvisited
        nodes together with the two endpoints must be connected.
        """
        if len(path) == n:
            return False
        current = path[-1]
        unvisited = [u for u in nodes if u not in visited]
        usable = set(unvisited) | {current, start}
        for u in unvisited:
            if len(graph.neighbors(u) & usable) < 2:
                return True
        # Connectivity of unvisited ∪ {current} (the cycle must sweep them up).
        component = {unvisited[0]}
        frontier = [unvisited[0]]
        allowed = set(unvisited) | {current, start}
        while frontier:
            x = frontier.pop()
            for y in graph.neighbors(x):
                if y in allowed and y not in component:
                    component.add(y)
                    frontier.append(y)
        return not set(unvisited) <= component

    def backtrack() -> Optional[List[Node]]:
        if len(path) == n:
            if graph.has_edge(path[-1], start):
                return list(path)
            return None
        if prune():
            return None
        current = path[-1]
        # Order neighbors by degree to fail fast on forced vertices.
        for neighbor in sorted(graph.neighbors(current), key=lambda v: (graph.degree(v), str(v))):
            if neighbor in visited:
                continue
            path.append(neighbor)
            visited.add(neighbor)
            result = backtrack()
            if result is not None:
                return result
            visited.remove(neighbor)
            path.pop()
        return None

    return backtrack()


def hamiltonian(graph: LabeledGraph) -> bool:
    """Whether the graph contains a Hamiltonian cycle."""
    return find_hamiltonian_cycle(graph) is not None


def non_hamiltonian(graph: LabeledGraph) -> bool:
    """Whether the graph contains no Hamiltonian cycle."""
    return not hamiltonian(graph)


def acyclic(graph: LabeledGraph) -> bool:
    """Whether the graph has no cycles.

    Since graphs are connected, this is equivalent to being a tree, i.e. to
    having exactly ``card(G) - 1`` edges.
    """
    return len(graph.edges) == graph.cardinality() - 1


def is_tree(graph: LabeledGraph) -> bool:
    """Alias for :func:`acyclic` (connected and cycle-free)."""
    return acyclic(graph)


def odd(graph: LabeledGraph) -> bool:
    """Whether the number of nodes is odd."""
    return graph.cardinality() % 2 == 1


EULERIAN = register_property(
    GraphProperty(
        name="eulerian",
        decide=eulerian,
        description="all node degrees are even",
        paper_alternation_class="LP",
        paper_lcp_class="LCP(0)",
    )
)

HAMILTONIAN = register_property(
    GraphProperty(
        name="hamiltonian",
        decide=hamiltonian,
        description="contains a Hamiltonian cycle",
        paper_alternation_class="Sigma_lb_3",
        paper_lcp_class="LCP(O(log n))",
    )
)

ACYCLIC = register_property(
    GraphProperty(
        name="acyclic",
        decide=acyclic,
        description="contains no cycle (is a tree)",
        paper_alternation_class="Sigma_lb_3",
        paper_lcp_class="LCP(O(log n))",
    )
)

ODD = register_property(
    GraphProperty(
        name="odd",
        decide=odd,
        description="has an odd number of nodes",
        paper_alternation_class="Sigma_lb_3",
        paper_lcp_class="LCP(O(log n))",
    )
)
