"""The graph-property abstraction and a registry of named properties."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.graphs.labeled_graph import LabeledGraph

PropertyFunction = Callable[[LabeledGraph], bool]


@dataclass(frozen=True)
class GraphProperty:
    """A named, isomorphism-closed graph property.

    Wraps a centralized decision function together with metadata used by the
    locality-comparison machinery of Figure 7 (the paper's classification of
    the property in the locally bounded hierarchy and in the LCP hierarchy).
    """

    name: str
    decide: PropertyFunction
    description: str = ""
    paper_alternation_class: Optional[str] = None
    paper_lcp_class: Optional[str] = None

    def __call__(self, graph: LabeledGraph) -> bool:
        return self.decide(graph)

    def complement(self) -> "GraphProperty":
        """The complement property (within the class of all labeled graphs)."""
        return GraphProperty(
            name=f"non-{self.name}",
            decide=lambda graph: not self.decide(graph),
            description=f"complement of {self.name}",
        )


property_registry: Dict[str, GraphProperty] = {}


def register_property(prop: GraphProperty) -> GraphProperty:
    """Register *prop* under its name; returns it for decorator-like use."""
    property_registry[prop.name] = prop
    return prop


def get_property(name: str) -> GraphProperty:
    """Look up a registered property by name."""
    if name not in property_registry:
        raise KeyError(f"unknown graph property {name!r}; known: {sorted(property_registry)}")
    return property_registry[name]
