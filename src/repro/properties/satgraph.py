"""Boolean graph satisfiability as graph properties (Section 8).

``sat-graph`` contains the Boolean graphs (graphs whose labels encode Boolean
formulas) that admit a consistent family of satisfying valuations; it is the
paper's NLP-complete generalization of ``sat`` (Theorem 22).  ``3-sat-graph``
additionally requires every node formula to be in 3-CNF.
"""

from __future__ import annotations

from repro.boolsat.boolean_graph import sat_graph_satisfiable, three_sat_graph_member
from repro.graphs.labeled_graph import LabeledGraph
from repro.properties.base import GraphProperty, register_property


def _decodes_to_formulas(graph: LabeledGraph) -> bool:
    from repro.boolsat.boolean_graph import decode_boolean_graph

    try:
        decode_boolean_graph(graph)
    except (ValueError, KeyError):
        return False
    return True


def sat_graph(graph: LabeledGraph) -> bool:
    """Whether *graph* is a satisfiable Boolean graph.

    Graphs whose labels do not decode to Boolean formulas are not in the
    property (they are simply no-instances).
    """
    if not _decodes_to_formulas(graph):
        return False
    return sat_graph_satisfiable(graph)


def three_sat_graph_domain(graph: LabeledGraph) -> bool:
    """Whether every node label decodes to a 3-CNF formula."""
    return three_sat_graph_member(graph)


def three_sat_graph(graph: LabeledGraph) -> bool:
    """Whether *graph* is a satisfiable Boolean graph with 3-CNF labels."""
    return three_sat_graph_domain(graph) and sat_graph_satisfiable(graph)


SAT_GRAPH = register_property(
    GraphProperty(
        name="sat-graph",
        decide=sat_graph,
        description="Boolean graph with a consistent satisfying valuation family",
        paper_alternation_class="NLP-complete",
    )
)

THREE_SAT_GRAPH = register_property(
    GraphProperty(
        name="3-sat-graph",
        decide=three_sat_graph,
        description="satisfiable Boolean graph whose labels are 3-CNF formulas",
        paper_alternation_class="NLP-complete",
    )
)
