"""Coloring properties, including the 3-round 3-colorability game of Figure 1.

``k-colorable`` is decided by backtracking (graphs in this repository are
small).  ``3-round 3-colorability`` (Ajtai-Fagin-Stockmeyer, Example 1 of the
paper) is the game in which Eve first colors the degree-1 nodes, Adam then
colors the degree-2 nodes, and finally Eve colors all remaining nodes; the
graph has the property iff Eve can always complete a proper 3-coloring.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.properties.base import GraphProperty, register_property


def _coloring_via_sat(graph: LabeledGraph, colors: int) -> Optional[Dict[Node, int]]:
    """Find a proper coloring by encoding into CNF and running the DPLL solver.

    Used for larger graphs (notably the gadget graphs produced by the
    Theorem 23 reduction), where plain backtracking degrades.
    """
    from repro.boolsat.cnf import CNF
    from repro.boolsat.solver import satisfying_assignment

    def var(node: Node, color: int) -> str:
        return f"c_{node}_{color}"

    clauses = []
    for u in graph.nodes:
        clauses.append(frozenset((var(u, c), True) for c in range(colors)))
        for c1 in range(colors):
            for c2 in range(c1 + 1, colors):
                clauses.append(frozenset({(var(u, c1), False), (var(u, c2), False)}))
    for u, v in graph.edge_pairs():
        for c in range(colors):
            clauses.append(frozenset({(var(u, c), False), (var(v, c), False)}))

    model = satisfying_assignment(CNF(tuple(clauses)))
    if model is None:
        return None
    coloring: Dict[Node, int] = {}
    for u in graph.nodes:
        for c in range(colors):
            if model.get(var(u, c), False):
                coloring[u] = c
                break
    return coloring


#: Above this many nodes, colorings are found through the CDCL SAT solver
#: instead of plain backtracking.  The Theorem 23 gadget graphs (~1000
#: nodes) encode SAT instances, on which backtracking without clause
#: learning does not terminate in reasonable time.
_SAT_COLORING_THRESHOLD = 48


def find_proper_coloring(graph: LabeledGraph, colors: int) -> Optional[Dict[Node, int]]:
    """A proper *colors*-coloring of the graph, or ``None`` if none exists.

    Small graphs use backtracking with forward checking and the
    minimum-remaining-values heuristic; larger graphs (notably the gadget
    graphs produced by the Theorem 23 reduction, which embed SAT instances)
    are routed through the CDCL SAT encoding of :func:`_coloring_via_sat`.
    """
    if colors < 1:
        return None
    if graph.cardinality() > _SAT_COLORING_THRESHOLD:
        return _coloring_via_sat(graph, colors)

    assignment: Dict[Node, int] = {}
    available: Dict[Node, set] = {u: set(range(colors)) for u in graph.nodes}

    def choose_next() -> Node:
        unassigned = [u for u in graph.nodes if u not in assignment]
        return min(unassigned, key=lambda u: (len(available[u]), -graph.degree(u), str(u)))

    def backtrack() -> bool:
        if len(assignment) == len(graph.nodes):
            return True
        node = choose_next()
        for color in sorted(available[node]):
            assignment[node] = color
            removed = []
            feasible = True
            for neighbor in graph.neighbors(node):
                if neighbor in assignment:
                    continue
                if color in available[neighbor]:
                    available[neighbor].discard(color)
                    removed.append(neighbor)
                    if not available[neighbor]:
                        feasible = False
            if feasible and backtrack():
                return True
            for neighbor in removed:
                available[neighbor].add(color)
            del assignment[node]
        return False

    if backtrack():
        return dict(assignment)
    return None


def is_k_colorable(graph: LabeledGraph, colors: int) -> bool:
    """Whether the graph admits a proper coloring with *colors* colors."""
    return find_proper_coloring(graph, colors) is not None


def two_colorable(graph: LabeledGraph) -> bool:
    """Whether the graph is 2-colorable (equivalently, bipartite)."""
    return is_k_colorable(graph, 2)


def non_two_colorable(graph: LabeledGraph) -> bool:
    """Whether the graph is not 2-colorable (contains an odd cycle)."""
    return not two_colorable(graph)


def three_colorable(graph: LabeledGraph) -> bool:
    """Whether the graph is 3-colorable (the NLP-complete property of Theorem 23)."""
    return is_k_colorable(graph, 3)


def non_three_colorable(graph: LabeledGraph) -> bool:
    """Whether the graph is not 3-colorable."""
    return not three_colorable(graph)


def chromatic_number(graph: LabeledGraph) -> int:
    """The smallest number of colors in any proper coloring."""
    for colors in range(1, graph.cardinality() + 1):
        if is_k_colorable(graph, colors):
            return colors
    return graph.cardinality()


def labels_form_proper_coloring(graph: LabeledGraph, colors: int = 3) -> bool:
    """Whether the node labels encode a proper *colors*-coloring.

    Labels are read as binary numbers; an unreadable or out-of-range label
    makes the property fail.  This is the LCL-style decision version of
    coloring (Section 1.1).
    """
    values: Dict[Node, int] = {}
    for u in graph.nodes:
        label = graph.label(u)
        if not label:
            return False
        value = int(label, 2)
        if value >= colors:
            return False
        values[u] = value
    return all(values[u] != values[v] for u, v in graph.edge_pairs())


# ----------------------------------------------------------------------
# 3-round 3-colorability (Example 1 / Figure 1)
# ----------------------------------------------------------------------
def _nodes_by_degree(graph: LabeledGraph) -> Tuple[List[Node], List[Node], List[Node]]:
    """Partition nodes into (degree 1, degree 2, the rest), each sorted."""
    degree_one = [u for u in graph.nodes if graph.degree(u) == 1]
    degree_two = [u for u in graph.nodes if graph.degree(u) == 2]
    rest = [u for u in graph.nodes if graph.degree(u) not in (1, 2)]
    return degree_one, degree_two, rest


def _extends_to_proper(graph: LabeledGraph, fixed: Dict[Node, int], remaining: List[Node], colors: int) -> bool:
    """Whether *fixed* can be extended on *remaining* to a proper coloring."""
    for u, v in graph.edge_pairs():
        if u in fixed and v in fixed and fixed[u] == fixed[v]:
            return False

    assignment = dict(fixed)

    def backtrack(index: int) -> bool:
        if index == len(remaining):
            return True
        node = remaining[index]
        forbidden = {assignment[v] for v in graph.neighbors(node) if v in assignment}
        for color in range(colors):
            if color in forbidden:
                continue
            assignment[node] = color
            if backtrack(index + 1):
                return True
            del assignment[node]
        return False

    return backtrack(0)


def three_round_three_colorable(graph: LabeledGraph, colors: int = 3) -> bool:
    """The 3-round 3-colorability game (Example 1, Figure 1).

    Round 1: Eve colors all nodes of degree 1.
    Round 2: Adam colors all nodes of degree 2.
    Round 3: Eve colors every remaining node.

    The graph has the property iff Eve has a strategy forcing the final
    assignment to be a proper coloring whatever Adam plays.
    """
    degree_one, degree_two, rest = _nodes_by_degree(graph)

    def adam_cannot_win(eve_round_one: Dict[Node, int]) -> bool:
        for adam_choice in itertools.product(range(colors), repeat=len(degree_two)):
            fixed = dict(eve_round_one)
            fixed.update(dict(zip(degree_two, adam_choice)))
            if not _extends_to_proper(graph, fixed, rest, colors):
                return False
        return True

    for eve_choice in itertools.product(range(colors), repeat=len(degree_one)):
        eve_round_one = dict(zip(degree_one, eve_choice))
        if adam_cannot_win(eve_round_one):
            return True
    return False


def adam_winning_strategy_exists(graph: LabeledGraph, colors: int = 3) -> bool:
    """Whether Adam can force a monochromatic edge in the 3-round game."""
    return not three_round_three_colorable(graph, colors)


THREE_COLORABLE = register_property(
    GraphProperty(
        name="3-colorable",
        decide=three_colorable,
        description="admits a proper 3-coloring",
        paper_alternation_class="Sigma_lb_1",
        paper_lcp_class="LCP(O(1))",
    )
)

NON_TWO_COLORABLE = register_property(
    GraphProperty(
        name="non-2-colorable",
        decide=non_two_colorable,
        description="contains an odd cycle",
        paper_alternation_class="Sigma_lb_3",
        paper_lcp_class="LCP(O(log n))",
    )
)

NON_THREE_COLORABLE = register_property(
    GraphProperty(
        name="non-3-colorable",
        decide=non_three_colorable,
        description="admits no proper 3-coloring",
        paper_alternation_class="Pi_lb_4",
        paper_lcp_class="LCP(O(log n))",
    )
)
