"""From tiling systems to existential local monadic second-order logic (Corollary 33).

Corollary 33 of the paper observes that every tiling system can be described
by a sentence of the form ``∃(X_q)_{q∈Q} ∀x (OneState(x) ∧ LegalTiling(x))``,
where each ``X_q`` is a unary relation variable collecting the pixels in
state ``q`` and the two subformulas are bounded around ``x``.  This module
performs that translation mechanically: :func:`tiling_sentence` produces the
formula, and the test suite model checks it against the tiling-system
recognizer on small pictures.

Pixel cells relative to the quantified pixel ``x`` are addressed through the
two successor relations of the picture structure (binary relation 1 is the
vertical successor, binary relation 2 the horizontal successor); the frame of
boundary symbols surrounding the picture is represented by the *absence* of
the corresponding successor or predecessor.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.logic.semantics import EvaluationOptions, evaluate
from repro.logic.syntax import (
    BOTTOM,
    TOP,
    And,
    BinaryAtom,
    BoundedExists,
    Formula,
    Forall,
    Not,
    RelationAtom,
    RelationVariable,
    SOExists,
    UnaryAtom,
    conjunction,
    disjunction,
)
from repro.pictures.picture import Picture, picture_structure
from repro.pictures.tiling import BORDER, CellContent, Tile, TilingSystem

__all__ = [
    "state_variable",
    "one_state",
    "legal_tiling",
    "tiling_sentence",
    "formula_agrees_with_system",
]

VERTICAL = 1
HORIZONTAL = 2

#: The four positions a pixel can occupy inside a 2x2 window, as (row, column)
#: offsets of the window's top-left corner relative to the pixel.
_WINDOW_POSITIONS: Tuple[Tuple[int, int], ...] = ((0, 0), (0, -1), (-1, 0), (-1, -1))

#: Cell offsets of a 2x2 window relative to its top-left corner.
_CELL_OFFSETS: Tuple[Tuple[int, int], ...] = ((0, 0), (0, 1), (1, 0), (1, 1))


def state_variable(state: str) -> RelationVariable:
    """The unary relation variable ``X_q`` collecting the pixels in state ``q``."""
    return RelationVariable(f"X_{state}", 1)


def _entry_is(variable: str, entry: str) -> Formula:
    """The pixel named by *variable* carries the bit pattern *entry*."""
    literals: List[Formula] = []
    for index, bit in enumerate(entry, start=1):
        atom = UnaryAtom(index, variable)
        literals.append(atom if bit == "1" else Not(atom))
    return conjunction(literals)


def _pixel_content(variable: str, cell: CellContent) -> Formula:
    """The pixel named by *variable* matches the (non-border) tile cell *cell*."""
    entry, state = cell
    return And(_entry_is(variable, entry), RelationAtom(state_variable(state), (variable,)))


def _step(anchor: str, fresh: str, offset: int, relation: int, body: Formula) -> Formula:
    """``∃ fresh`` connected to *anchor* one step in the given direction, satisfying *body*.

    ``offset`` is +1 for a successor step and -1 for a predecessor step along
    the given binary relation.
    """
    if offset == 1:
        arrow = BinaryAtom(relation, anchor, fresh)
    else:
        arrow = BinaryAtom(relation, fresh, anchor)
    return BoundedExists(fresh, anchor, And(arrow, body))


def _cell_formula(variable: str, row_offset: int, column_offset: int, cell: CellContent, tag: str) -> Formula:
    """The framed-picture cell at the given offset from *variable* matches *cell*.

    A border cell means the offset leads outside the picture, i.e. the chain
    of successor/predecessor steps does not exist.
    """
    steps: List[Tuple[int, int]] = []
    if column_offset:
        steps.append((column_offset, HORIZONTAL))
    if row_offset:
        steps.append((row_offset, VERTICAL))

    if not steps:
        if cell == BORDER:
            # The quantified element is always a pixel, never a frame cell.
            return BOTTOM
        return _pixel_content(variable, cell)

    if cell == BORDER:
        # The target cell is border exactly if the step chain breaks somewhere.
        reach = _reach_formula(variable, steps, lambda name: None, tag)
        return Not(reach)
    return _reach_formula(variable, steps, lambda name: _pixel_content(name, cell), tag)


def _reach_formula(variable: str, steps: Sequence[Tuple[int, int]], payload, tag: str) -> Formula:
    """``∃`` a chain of steps from *variable*; apply *payload* at the final element.

    *payload* maps the final element's variable name to a formula (or ``None``
    for "just reach it").
    """
    names = [variable] + [f"_w{tag}_{i}" for i in range(len(steps))]

    def build(index: int) -> Formula:
        if index == len(steps):
            inner = payload(names[index])
            if inner is None:
                return TOP
            return inner
        offset, relation = steps[index]
        return _step(names[index], names[index + 1], offset, relation, build(index + 1))

    return build(0)


def one_state(variable: str, states: Sequence[str]) -> Formula:
    """``OneState(x)``: the pixel lies in exactly one of the state sets ``X_q``."""
    some_state = disjunction(RelationAtom(state_variable(q), (variable,)) for q in states)
    exclusions = conjunction(
        Not(And(RelationAtom(state_variable(a), (variable,)), RelationAtom(state_variable(b), (variable,))))
        for i, a in enumerate(states)
        for b in states[i + 1 :]
    )
    return And(some_state, exclusions)


def _window_formula(variable: str, position: Tuple[int, int], tiles: Iterable[Tile], tag: str) -> Formula:
    """The 2x2 window in which *variable* occupies *position* matches some tile."""
    row_shift, column_shift = position
    alternatives: List[Formula] = []
    for tile_index, tile in enumerate(tiles):
        cell_checks: List[Formula] = []
        for (cell_row, cell_column), cell in zip(_CELL_OFFSETS, tile):
            row_offset = cell_row + row_shift
            column_offset = cell_column + column_shift
            cell_checks.append(
                _cell_formula(
                    variable,
                    row_offset,
                    column_offset,
                    cell,
                    tag=f"{tag}_{tile_index}_{cell_row}{cell_column}",
                )
            )
        alternatives.append(conjunction(cell_checks))
    return disjunction(alternatives)


def legal_tiling(variable: str, system: TilingSystem) -> Formula:
    """``LegalTiling(x)``: every 2x2 window containing the pixel ``x`` matches a tile."""
    sorted_tiles = sorted(system.tiles, key=str)
    return conjunction(
        _window_formula(variable, position, sorted_tiles, tag=f"p{index}")
        for index, position in enumerate(_WINDOW_POSITIONS)
    )


def tiling_sentence(system: TilingSystem) -> Formula:
    """The ``mΣ^lfo_1`` sentence of Corollary 33 describing *system*."""
    states = sorted(system.states)
    matrix = Forall("x", And(one_state("x", states), legal_tiling("x", system)))
    sentence: Formula = matrix
    for state in reversed(states):
        sentence = SOExists(state_variable(state), sentence)
    return sentence


def formula_agrees_with_system(
    system: TilingSystem,
    pictures: Iterable[Picture],
    options: EvaluationOptions | None = None,
) -> Tuple[bool, List[Picture]]:
    """Model check :func:`tiling_sentence` against the tiling-system recognizer.

    Returns ``(all_agree, disagreements)`` over the given pictures.  Intended
    for small pictures only: the evaluator enumerates all interpretations of
    the state sets, which is exponential in the number of pixels.
    """
    sentence = tiling_sentence(system)
    opts = options or EvaluationOptions(candidate_limit=64)
    disagreements = [
        picture
        for picture in pictures
        if evaluate(picture_structure(picture), sentence, options=opts) != system.accepts(picture)
    ]
    return (not disagreements, disagreements)
