"""Tiling systems: nondeterministic finite automata on pictures (Section 9.2.1).

A t-bit tiling system ``T = (Q, Theta)`` accepts a picture ``P`` if the pixels
can be assigned states from ``Q`` such that every 2x2 window of the picture --
including the windows that overlap the frame of boundary symbols ``#``
surrounding the picture -- matches one of the tiles in ``Theta``.  A tile
entry is either the boundary symbol or a pair ``(bit string, state)``.

Giammarresi, Restivo, Seibert and Thomas showed that tiling systems recognize
exactly the picture languages definable in existential monadic second-order
logic (Theorem 32 of the paper); the recognizer implemented here is the
machine side of that correspondence.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.pictures.picture import Picture, Pixel

BORDER = "#"

CellContent = Union[str, Tuple[str, str]]
"""Either the boundary symbol or a pair ``(entry bits, state)``."""

Tile = Tuple[CellContent, CellContent, CellContent, CellContent]
"""A 2x2 tile, listed as (top-left, top-right, bottom-left, bottom-right)."""


@dataclass(frozen=True)
class TilingSystem:
    """A t-bit tiling system ``(Q, Theta)``."""

    bits: int
    states: FrozenSet[str]
    tiles: FrozenSet[Tile]

    @classmethod
    def build(cls, bits: int, states: Iterable[str], tiles: Iterable[Tile]) -> "TilingSystem":
        """Validating constructor."""
        state_set = frozenset(states)
        tile_set = set()
        for tile in tiles:
            if len(tile) != 4:
                raise ValueError("tiles must have exactly four entries")
            for cell in tile:
                if cell == BORDER:
                    continue
                entry, state = cell
                if len(entry) != bits or not set(entry) <= {"0", "1"}:
                    raise ValueError(f"invalid tile entry {entry!r} for a {bits}-bit system")
                if state not in state_set:
                    raise ValueError(f"tile uses unknown state {state!r}")
            tile_set.add(tuple(tile))
        return cls(bits=bits, states=state_set, tiles=frozenset(tile_set))

    # ------------------------------------------------------------------
    def accepts(self, picture: Picture) -> bool:
        """Whether some state assignment makes every 2x2 window match a tile."""
        return self.accepting_assignment(picture) is not None

    def accepting_assignment(self, picture: Picture) -> Optional[Dict[Pixel, str]]:
        """An accepting state assignment, or ``None``.

        Backtracking in row-major pixel order: assigning pixel ``(i, j)``
        completes every window whose bottom-right in-range pixel is
        ``(i, j)``, so tiles can be checked incrementally.
        """
        if picture.bits != self.bits:
            raise ValueError("picture and tiling system disagree on the number of bits")
        height, width = picture.size()
        order: List[Pixel] = [(i, j) for i in range(height) for j in range(width)]
        assignment: Dict[Pixel, str] = {}

        def cell_content(i: int, j: int) -> Optional[CellContent]:
            """Content of position (i, j) in the framed picture; None if not yet assigned."""
            if i < -1 or j < -1 or i > height or j > width:
                raise IndexError
            if i in (-1, height) or j in (-1, width):
                return BORDER
            if (i, j) not in assignment:
                return None
            return (picture.entry(i, j), assignment[(i, j)])

        def window_matches(a: int, b: int) -> bool:
            contents = []
            for di, dj in ((0, 0), (0, 1), (1, 0), (1, 1)):
                content = cell_content(a + di, b + dj)
                if content is None:
                    return True  # not fully determined yet; checked later
                contents.append(content)
            return tuple(contents) in self.tiles

        def all_windows() -> List[Tuple[int, int]]:
            return [(a, b) for a in range(-1, height) for b in range(-1, width)]

        def backtrack(index: int) -> bool:
            if index == len(order):
                return all(window_matches(a, b) for a, b in all_windows())
            i, j = order[index]
            for state in sorted(self.states):
                assignment[(i, j)] = state
                # Check every window containing (i, j) that is already fully
                # determined; later windows are checked when completed.
                consistent = True
                for a in (i - 1, i):
                    for b in (j - 1, j):
                        if not window_matches(a, b):
                            consistent = False
                            break
                    if not consistent:
                        break
                if consistent and backtrack(index + 1):
                    return True
                del assignment[(i, j)]
            return False

        if backtrack(0):
            return dict(assignment)
        return None

    def recognized_sample(
        self, heights: Sequence[int], widths: Sequence[int], entries: Sequence[str]
    ) -> List[Picture]:
        """All accepted pictures over the given sizes and entry alphabet (brute force)."""
        accepted = []
        for height in heights:
            for width in widths:
                for choice in itertools.product(entries, repeat=height * width):
                    rows = [
                        tuple(choice[row * width : (row + 1) * width]) for row in range(height)
                    ]
                    picture = Picture(bits=self.bits, rows=tuple(rows))
                    if self.accepts(picture):
                        accepted.append(picture)
        return accepted


def tiles_from_windows(windows: Iterable[Sequence[CellContent]]) -> FrozenSet[Tile]:
    """Convenience: normalize an iterable of 4-sequences into tiles."""
    return frozenset(tuple(window) for window in windows)
