"""Pictures and tiling systems (Section 9.2 of the paper).

Pictures are matrices of fixed-length bit strings; they are the structures on
which the paper's infiniteness proof operates.  This package provides:

* :mod:`repro.pictures.picture` -- t-bit pictures and their structural
  representations (Figure 6 / Figure 14),
* :mod:`repro.pictures.tiling` -- tiling systems (the 2-dimensional automaton
  model of Giammarresi-Restivo) and their recognition procedure,
* :mod:`repro.pictures.languages` -- example picture languages together with
  recognizing tiling systems (used to exercise the TS = existential-MSO
  machinery that Theorem 32 builds on),
* :mod:`repro.pictures.grid_encoding` -- the encoding of pictures as labeled
  grid graphs used to transfer results from pictures to graphs
  (Section 9.2.2).
"""

from repro.pictures.picture import Picture, picture_structure
from repro.pictures.tiling import Tile, TilingSystem, BORDER
from repro.pictures.languages import (
    square_pictures_system,
    is_square_picture,
    all_ones_system,
    is_all_ones_picture,
    top_row_has_one_system,
    has_one_in_top_row,
)
from repro.pictures.grid_encoding import picture_to_grid_graph, grid_graph_to_picture

__all__ = [
    "Picture",
    "picture_structure",
    "Tile",
    "TilingSystem",
    "BORDER",
    "square_pictures_system",
    "is_square_picture",
    "all_ones_system",
    "is_all_ones_picture",
    "top_row_has_one_system",
    "has_one_in_top_row",
    "picture_to_grid_graph",
    "grid_graph_to_picture",
]
