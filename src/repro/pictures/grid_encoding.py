"""Encoding pictures as labeled grid graphs (Section 9.2.2).

The infiniteness proof transfers results from pictures to graphs by encoding
every picture as a graph "in such a way that formulas can be translated from
one type of structure to the other".  The encoding implemented here maps a
t-bit picture of size ``(m, n)`` to the ``m x n`` grid graph whose node
``(i, j)`` is labeled with

    [is first row] [is first column] [pixel bits]

The two orientation bits make the encoding injective: the original picture
(including which successor relation is "vertical") can be reconstructed from
the labeled graph alone, which the tests verify as a round-trip property.
The resulting graphs have structural degree at most ``4 + 2 + t``, i.e. they
live in ``graph(Δ)`` for a constant Δ -- exactly the bounded-degree setting in
which the paper's separations hold.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.graphs.labeled_graph import LabeledGraph
from repro.pictures.picture import Picture


def picture_to_grid_graph(picture: Picture) -> LabeledGraph:
    """The labeled grid graph encoding *picture*."""
    labels: Dict[Tuple[int, int], str] = {}
    nodes = []
    edges = []
    for i in range(picture.height):
        for j in range(picture.width):
            nodes.append((i, j))
            first_row = "1" if i == 0 else "0"
            first_col = "1" if j == 0 else "0"
            labels[(i, j)] = first_row + first_col + picture.entry(i, j)
            if i + 1 < picture.height:
                edges.append(((i, j), (i + 1, j)))
            if j + 1 < picture.width:
                edges.append(((i, j), (i, j + 1)))
    return LabeledGraph(nodes, edges, labels)


def grid_graph_to_picture(graph: LabeledGraph, bits: Optional[int] = None) -> Picture:
    """Decode a graph produced by :func:`picture_to_grid_graph` back into a picture.

    Raises ``ValueError`` if the graph is not a consistently labeled grid
    encoding (wrong label lengths, missing corner, non-rectangular shape...).
    """
    if bits is None:
        any_label = graph.label(next(iter(graph.nodes)))
        bits = len(any_label) - 2
    if bits < 0:
        raise ValueError("labels are too short to encode orientation bits")

    def flags(node) -> Tuple[bool, bool, str]:
        label = graph.label(node)
        if len(label) != bits + 2:
            raise ValueError(f"node {node!r} has a label of unexpected length")
        return label[0] == "1", label[1] == "1", label[2:]

    # Locate the unique corner node (first row and first column).
    corners = [u for u in graph.nodes if flags(u)[0] and flags(u)[1]]
    if len(corners) != 1:
        raise ValueError("the encoding must have exactly one top-left corner")
    corner = corners[0]

    # Walk the first column (first-column flags) and, from each of its nodes,
    # the corresponding row (first-row flag only on the first row).
    def step(node, stay_first_row: bool):
        """The unvisited neighbor continuing the current row/column."""
        candidates = []
        for v in graph.neighbors(node):
            first_row, first_col, _ = flags(v)
            if stay_first_row and first_col and not v == node:
                candidates.append(v)
            if not stay_first_row and first_row and v != node:
                candidates.append(v)
        return candidates

    # Reconstruct coordinates by BFS over the grid using the flags: the first
    # row consists of the nodes with the first-row flag, ordered by distance
    # from the corner; similarly for the first column; the remaining nodes are
    # placed by their distances to the first row and first column.
    distances = graph.distances_from(corner)
    first_row_nodes = sorted(
        (u for u in graph.nodes if flags(u)[0]), key=lambda u: distances[u]
    )
    first_col_nodes = sorted(
        (u for u in graph.nodes if flags(u)[1]), key=lambda u: distances[u]
    )
    width = len(first_row_nodes)
    height = len(first_col_nodes)
    if width * height != graph.cardinality():
        raise ValueError("the graph is not a full rectangular grid encoding")

    # Coordinates: distance to the first column gives the column index,
    # distance to the first row gives the row index.
    column_distance: Dict[object, int] = {}
    for start in first_col_nodes:
        column_distance[start] = 0
    row_distance: Dict[object, int] = {}
    for start in first_row_nodes:
        row_distance[start] = 0

    def multi_source_bfs(sources: Dict[object, int]) -> Dict[object, int]:
        from collections import deque

        dist = dict(sources)
        queue = deque(sources)
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    column_of = multi_source_bfs(column_distance)
    row_of = multi_source_bfs(row_distance)

    rows = [["" for _ in range(width)] for _ in range(height)]
    for u in graph.nodes:
        i, j = row_of[u], column_of[u]
        if not (0 <= i < height and 0 <= j < width) or rows[i][j] != "":
            raise ValueError("the graph is not a consistent grid encoding")
        rows[i][j] = flags(u)[2]
    if any(entry == "" and bits > 0 for row in rows for entry in row):
        raise ValueError("some grid positions could not be reconstructed")
    return Picture(bits=bits, rows=tuple(tuple(row) for row in rows))
