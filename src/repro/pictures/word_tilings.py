"""Finite automata as tiling systems on one-row pictures (Sections 9.2-9.3).

On one-row pictures, tiling systems are exactly nondeterministic finite
automata: a run of an NFA assigns a state to every position of the word, the
left frame column plays the role of the initial state, and the right frame
column plays the role of acceptance.  This correspondence is the word-level
shadow of the Giammarresi-Restivo-Seibert-Thomas theorem (Theorem 32) and is
what lets the paper transfer the Buechi-Elgot-Trakhtenbrot theorem and the
pumping lemma into the picture/graph world in Section 9.3.

Both directions of the correspondence are implemented:

* :func:`nfa_to_tiling_system` turns an NFA into a tiling system that accepts
  exactly the one-row pictures of accepted words, and
* :func:`tiling_system_to_nfa` turns a tiling system into an NFA that agrees
  with it on all one-row pictures.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.pictures.automata import NFA
from repro.pictures.picture import Picture
from repro.pictures.tiling import BORDER, CellContent, Tile, TilingSystem
from repro.pictures.words import picture_to_word, word_to_picture

__all__ = [
    "nfa_to_tiling_system",
    "tiling_system_to_nfa",
    "tiling_system_accepts_word",
    "agree_on_words",
]


def _content(entry: str, state: str) -> CellContent:
    return (entry, state)


def nfa_to_tiling_system(nfa: NFA) -> TilingSystem:
    """A tiling system accepting exactly the one-row pictures of NFA-accepted words.

    The state assigned to pixel ``j`` is the NFA state reached *after* reading
    the ``j``-th symbol.  The tiles of the top window row (frame above,
    pixels below) enforce the run conditions:

    * ``(#, #, #, (s, q))``    -- ``q`` is reachable from an initial state on ``s``,
    * ``(#, #, (s, q), (s', q'))`` -- ``q'`` is a ``δ(q, s')`` successor,
    * ``(#, #, (s, q), #)``    -- ``q`` is accepting.

    The bottom window row (pixels above, frame below) repeats the same pixels
    and is admitted without further constraints.
    """
    alphabet = nfa.alphabet()
    contents: List[CellContent] = [
        _content(symbol, state) for symbol in alphabet for state in sorted(nfa.states)
    ]

    tiles: Set[Tile] = set()

    # Top window row: (#, #, left cell, right cell) -- this is where the run
    # conditions live.
    for symbol in alphabet:
        for state in nfa.step(nfa.initial, symbol):
            tiles.add((BORDER, BORDER, BORDER, _content(symbol, state)))
    for symbol, state in itertools.product(alphabet, sorted(nfa.states)):
        for next_symbol in alphabet:
            for next_state in nfa.transitions.get((state, next_symbol), frozenset()):
                tiles.add(
                    (BORDER, BORDER, _content(symbol, state), _content(next_symbol, next_state))
                )
        if state in nfa.accepting:
            tiles.add((BORDER, BORDER, _content(symbol, state), BORDER))

    # Bottom window row: (left cell, right cell, #, #) -- no constraints beyond
    # the contents being well-formed, so every combination is allowed.
    for left in contents:
        tiles.add((left, BORDER, BORDER, BORDER))
        tiles.add((BORDER, left, BORDER, BORDER))
        for right in contents:
            tiles.add((left, right, BORDER, BORDER))

    return TilingSystem.build(bits=nfa.width, states=sorted(nfa.states), tiles=tiles)


def _adjacency_allowed(system: TilingSystem, left: CellContent, right: CellContent) -> bool:
    """Whether two horizontally adjacent cells are jointly allowed on a one-row picture."""
    return (BORDER, BORDER, left, right) in system.tiles and (left, right, BORDER, BORDER) in system.tiles


def tiling_system_to_nfa(system: TilingSystem) -> NFA:
    """An NFA agreeing with *system* on all one-row pictures.

    The NFA's states are the possible cell contents ``entry|state`` of the
    tiling system plus a fresh initial state; a transition reading symbol
    ``s`` moves to a content with entry ``s`` whenever both the top and the
    bottom window of the corresponding horizontal adjacency are tiles.
    """
    alphabet = ["".join(bits) for bits in itertools.product("01", repeat=system.bits)]
    contents: List[CellContent] = [
        (symbol, state) for symbol in alphabet for state in sorted(system.states)
    ]

    def name(content: CellContent) -> str:
        entry, state = content
        return f"{entry}|{state}"

    start = "<start>"
    states = [start] + [name(content) for content in contents]

    transitions: Dict[Tuple[str, str], List[str]] = {}
    for content in contents:
        entry, _ = content
        starts_ok = (BORDER, BORDER, BORDER, content) in system.tiles and (
            BORDER,
            content,
            BORDER,
            BORDER,
        ) in system.tiles
        if starts_ok:
            transitions.setdefault((start, entry), []).append(name(content))
    for left in contents:
        for right in contents:
            if _adjacency_allowed(system, left, right):
                entry = right[0]
                transitions.setdefault((name(left), entry), []).append(name(right))

    accepting = [
        name(content)
        for content in contents
        if (BORDER, BORDER, content, BORDER) in system.tiles
        and (content, BORDER, BORDER, BORDER) in system.tiles
    ]

    return NFA.build(
        width=system.bits,
        states=states,
        initial=[start],
        accepting=accepting,
        transitions=transitions,
    )


def tiling_system_accepts_word(system: TilingSystem, word: str) -> bool:
    """Whether *system* accepts the one-row picture spelled out by *word*."""
    return system.accepts(word_to_picture(word, bits=system.bits))


def agree_on_words(
    system: TilingSystem, nfa: NFA, words: Iterable[str]
) -> Tuple[bool, List[str]]:
    """Check that a tiling system and an NFA accept exactly the same of the given words.

    Returns ``(all_agree, disagreements)``; the second component lists the
    words on which the two recognizers differ (empty when they agree).
    """
    disagreements = [
        word
        for word in words
        if tiling_system_accepts_word(system, word) != nfa.accepts(word)
    ]
    return (not disagreements, disagreements)
