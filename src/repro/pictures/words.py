"""Words as one-row pictures (Section 9.3).

The paper's separation arguments for properties *outside* the locally
polynomial hierarchy (Section 9.3) go through word languages: a bit string
``w`` of length ``n`` can be viewed as a 1-bit picture of size ``(1, n)``,
and the Buechi-Elgot-Trakhtenbrot theorem identifies the word languages
definable in monadic second-order logic with the regular languages.  This
module provides the conversions between bit strings, one-row pictures, and
the string graphs / cycle graphs on which the fooling arguments of
Section 9.3 are played.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.pictures.picture import Picture

__all__ = [
    "word_to_picture",
    "picture_to_word",
    "is_word_picture",
    "word_to_path_graph",
    "word_to_cycle_graph",
    "path_graph_to_word",
    "rotations",
    "pump_word",
]


def word_to_picture(word: str, bits: int = 1) -> Picture:
    """The ``(1, len(word))`` picture whose row spells out *word*.

    For ``bits == 1`` each character of *word* must be ``0`` or ``1`` and
    becomes one pixel; for larger ``bits`` the word is cut into consecutive
    blocks of ``bits`` characters (its length must be divisible by ``bits``).
    """
    if not word:
        raise ValueError("the empty word has no picture representation (pictures are nonempty)")
    if not set(word) <= {"0", "1"}:
        raise ValueError(f"words must be bit strings, got {word!r}")
    if bits < 1:
        raise ValueError("bits must be positive")
    if len(word) % bits != 0:
        raise ValueError(f"word length {len(word)} is not divisible by the pixel width {bits}")
    row = tuple(word[i : i + bits] for i in range(0, len(word), bits))
    return Picture(bits=bits, rows=(row,))


def picture_to_word(picture: Picture) -> str:
    """The bit string spelled out by a one-row picture (inverse of :func:`word_to_picture`)."""
    if picture.height != 1:
        raise ValueError(f"only one-row pictures encode words, got height {picture.height}")
    return "".join(picture.rows[0])


def is_word_picture(picture: Picture) -> bool:
    """Whether *picture* has exactly one row (and therefore encodes a word)."""
    return picture.height == 1


def word_to_path_graph(word: str) -> LabeledGraph:
    """The path graph with one node per character of *word*, labeled by that character.

    This is the graph-side counterpart of the string structures of Section 9.3:
    a word of length ``n`` becomes a path of ``n`` nodes of bounded structural
    degree, on which constant-radius algorithms see only a window of the word.
    """
    if not word:
        raise ValueError("the empty word has no path-graph representation")
    if not set(word) <= {"0", "1"}:
        raise ValueError(f"words must be bit strings, got {word!r}")
    nodes = list(range(len(word)))
    edges = [(i, i + 1) for i in range(len(word) - 1)]
    labels = {i: word[i] for i in nodes}
    return LabeledGraph(nodes, edges, labels)


def word_to_cycle_graph(word: str) -> LabeledGraph:
    """The cycle graph spelled out by *word* (requires length at least 3).

    Cycles are the workhorse of the pumping arguments in Sections 9.1 and 9.3:
    a constant-radius algorithm cannot distinguish a long cycle from a pumped
    copy of it.
    """
    if len(word) < 3:
        raise ValueError("cycle graphs need at least three nodes")
    if not set(word) <= {"0", "1"}:
        raise ValueError(f"words must be bit strings, got {word!r}")
    nodes = list(range(len(word)))
    edges = [(i, (i + 1) % len(word)) for i in nodes]
    labels = {i: word[i] for i in nodes}
    return LabeledGraph(nodes, edges, labels)


def path_graph_to_word(graph: LabeledGraph) -> str:
    """Read the word back off a path graph produced by :func:`word_to_path_graph`.

    The graph must be a path whose node labels are single bits; the word is
    read from one endpoint to the other (the endpoint with the smaller node
    identity comes first, so the round trip with :func:`word_to_path_graph`
    is exact).
    """
    endpoints = [u for u in graph.nodes if graph.degree(u) <= 1]
    if graph.cardinality() == 1:
        (only,) = graph.nodes
        return graph.label(only)
    if len(endpoints) != 2:
        raise ValueError("graph is not a path (it does not have exactly two endpoints)")
    degree_bound = max(graph.degree(u) for u in graph.nodes)
    if degree_bound > 2:
        raise ValueError("graph is not a path (some node has degree greater than two)")
    start = min(endpoints, key=str)
    order: List = [start]
    previous = None
    current = start
    while len(order) < graph.cardinality():
        candidates = [v for v in graph.neighbors(current) if v != previous]
        if len(candidates) != 1:
            raise ValueError("graph is not a path")
        previous, current = current, candidates[0]
        order.append(current)
    word = "".join(graph.label(u) for u in order)
    if not set(word) <= {"0", "1"} or any(len(graph.label(u)) != 1 for u in order):
        raise ValueError("path nodes must carry single-bit labels")
    return word


def rotations(word: str) -> List[str]:
    """All cyclic rotations of *word* (used when comparing cycle graphs up to isomorphism)."""
    return [word[i:] + word[:i] for i in range(len(word))]


def pump_word(word: str, start: int, length: int, repetitions: int) -> str:
    """Repeat the factor ``word[start : start + length]`` the given number of times.

    This is the pumping operation of the pumping lemma for regular languages:
    ``pump_word(xyz, len(x), len(y), i)`` is ``x y^i z``.  ``repetitions == 1``
    returns the word unchanged; ``repetitions == 0`` removes the factor.
    """
    if length <= 0:
        raise ValueError("the pumped factor must be nonempty")
    if repetitions < 0:
        raise ValueError("repetitions must be nonnegative")
    if start < 0 or start + length > len(word):
        raise ValueError("the pumped factor must lie inside the word")
    prefix = word[:start]
    factor = word[start : start + length]
    suffix = word[start + length :]
    return prefix + factor * repetitions + suffix
