"""Example picture languages and recognizing tiling systems.

These languages exercise the tiling-system machinery that the infiniteness
proof relies on (Theorem 32: tiling systems = existential monadic second-order
logic on pictures).  Each language comes in two forms: a direct (centralized)
membership test and a tiling system recognizing it, so the tests can confirm
that the automaton model behaves as the theory predicts.

The systems are built by enumerating every possible 2x2 window over the cell
alphabet (entries x states, plus the boundary symbol ``#``) and keeping the
windows allowed by a local predicate; the predicates encode the classical
constructions (diagonal marking for squares, a one-way word automaton threaded
along the top row, and so on).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.pictures.picture import Picture
from repro.pictures.tiling import BORDER, CellContent, Tile, TilingSystem

WindowPredicate = Callable[[CellContent, CellContent, CellContent, CellContent], bool]


def _state(cell: CellContent) -> Optional[str]:
    return None if cell == BORDER else cell[1]


def _entry(cell: CellContent) -> Optional[str]:
    return None if cell == BORDER else cell[0]


def system_from_predicate(
    bits: int, states: Sequence[str], entries: Sequence[str], predicate: WindowPredicate
) -> TilingSystem:
    """Build a tiling system whose tiles are the windows allowed by *predicate*."""
    pool: List[CellContent] = [BORDER]
    pool.extend((entry, state) for entry in entries for state in states)
    tiles = [
        window for window in itertools.product(pool, repeat=4) if predicate(*window)
    ]
    return TilingSystem.build(bits, states, tiles)


# ----------------------------------------------------------------------
# all-ones pictures (1-bit): every entry is "1"
# ----------------------------------------------------------------------
def is_all_ones_picture(picture: Picture) -> bool:
    """Whether every entry of the (1-bit) picture is ``1``."""
    return all(picture.entry(i, j) == "1" for i, j in picture.pixels())


def all_ones_system() -> TilingSystem:
    """A single-state tiling system recognizing the all-ones pictures."""

    def predicate(tl: CellContent, tr: CellContent, bl: CellContent, br: CellContent) -> bool:
        return all(cell == BORDER or cell[0] == "1" for cell in (tl, tr, bl, br))

    return system_from_predicate(1, ["q"], ["0", "1"], predicate)


# ----------------------------------------------------------------------
# square pictures (1-bit, contents irrelevant): height == width
# ----------------------------------------------------------------------
def is_square_picture(picture: Picture) -> bool:
    """Whether the picture has as many rows as columns."""
    return picture.height == picture.width


def square_pictures_system() -> TilingSystem:
    """The classical diagonal-marking tiling system for square pictures.

    State ``d`` marks the main diagonal, ``a`` the cells above it, ``b`` the
    cells below it.  The window predicate forces the diagonal to start at the
    top-left corner, advance one step right and down per row, never touch the
    right or bottom frame except at the bottom-right corner, and end there --
    which is possible exactly when the picture is square.
    """
    horizontal_pairs = {("d", "a"), ("a", "a"), ("b", "b"), ("b", "d")}
    vertical_pairs = {("d", "b"), ("a", "a"), ("b", "b"), ("a", "d")}
    full_windows = {
        ("d", "a", "b", "d"),
        ("a", "a", "d", "a"),
        ("b", "d", "b", "b"),
        ("a", "a", "a", "a"),
        ("b", "b", "b", "b"),
    }

    def predicate(tl: CellContent, tr: CellContent, bl: CellContent, br: CellContent) -> bool:
        states = tuple(_state(cell) for cell in (tl, tr, bl, br))
        s_tl, s_tr, s_bl, s_br = states
        borders = tuple(cell == BORDER for cell in (tl, tr, bl, br))
        b_tl, b_tr, b_bl, b_br = borders

        # Full interior windows must match one of the five canonical patterns.
        if not any(borders):
            return states in full_windows

        # Pairwise constraints wherever both cells of a pair are pixels.
        if not b_tl and not b_tr and (s_tl, s_tr) not in horizontal_pairs:
            return False
        if not b_bl and not b_br and (s_bl, s_br) not in horizontal_pairs:
            return False
        if not b_tl and not b_bl and (s_tl, s_bl) not in vertical_pairs:
            return False
        if not b_tr and not b_br and (s_tr, s_br) not in vertical_pairs:
            return False

        # Corner and edge conditions.
        if b_tl and b_tr and b_bl and not b_br:
            # top-left corner of the picture: the first pixel lies on the diagonal
            if s_br != "d":
                return False
        if b_tl and b_tr and b_br and not b_bl:
            # top-right corner: allowed to be 'a' (or 'd' for a 1x1 picture)
            if s_bl == "b":
                return False
        if b_bl and b_br and b_tl and not b_tr:
            # bottom-left corner: allowed to be 'b' (or 'd' for a 1x1 picture)
            if s_tr == "a":
                return False
        if b_tr and b_bl and b_br and not b_tl:
            # bottom-right corner of the picture: the diagonal must end here
            if s_tl != "d":
                return False
        if b_tl and b_tr and not b_bl and not b_br:
            # top edge: only 'd' (at the corner) followed by 'a's
            if (s_bl, s_br) not in {("d", "a"), ("a", "a")}:
                return False
        if b_bl and b_br and not b_tl and not b_tr:
            # bottom edge: 'b's, then 'd' exactly at the last column
            if (s_tl, s_tr) not in {("b", "b"), ("b", "d")}:
                return False
        if b_tl and b_bl and not b_tr and not b_br:
            # left edge: 'd' at the top, then 'b's
            if (s_tr, s_br) not in {("d", "b"), ("b", "b")}:
                return False
        if b_tr and b_br and not b_tl and not b_bl:
            # right edge: 'a's, then 'd' exactly at the last row
            if (s_tl, s_bl) not in {("a", "a"), ("a", "d")}:
                return False
        return True

    return system_from_predicate(1, ["d", "a", "b"], ["0", "1"], predicate)


# ----------------------------------------------------------------------
# pictures whose top row contains a 1 (1-bit)
# ----------------------------------------------------------------------
def has_one_in_top_row(picture: Picture) -> bool:
    """Whether some entry of the first row is ``1``."""
    return any(picture.entry(0, j) == "1" for j in range(picture.width))


def top_row_has_one_system() -> TilingSystem:
    """A tiling system threading a word automaton along the top row.

    Top-row pixels carry state ``l`` ("no 1 seen so far, including here") or
    ``m`` ("a 1 has been seen at or before this cell"); all other pixels carry
    the free state ``f``.  The transition ``l -> m`` is only allowed on an
    entry ``1``, the leftmost top-row pixel must not start in ``m`` unless its
    own entry is ``1``, and the rightmost top-row pixel must end in ``m``.
    """

    def predicate(tl: CellContent, tr: CellContent, bl: CellContent, br: CellContent) -> bool:
        b_tl, b_tr, b_bl, b_br = (cell == BORDER for cell in (tl, tr, bl, br))

        # Row membership is detected through the cell directly above: a pixel
        # in the bottom half of the window lies in the picture's top row iff
        # the cell above it is the border.
        def expects_top_state(above_is_border: bool, cell: CellContent) -> bool:
            if cell == BORDER:
                return True
            state = _state(cell)
            if above_is_border:
                return state in ("l", "m")
            return state == "f"

        if not expects_top_state(b_tl, bl) or not expects_top_state(b_tr, br):
            return False

        # Horizontal transition along the top row (both bottom cells are top-row pixels).
        if b_tl and b_tr and not b_bl and not b_br:
            left_state, right_state = _state(bl), _state(br)
            right_entry = _entry(br)
            transition_ok = (
                (left_state == "l" and right_state == "l")
                or (left_state == "m" and right_state == "m")
                or (left_state == "l" and right_state == "m" and right_entry == "1")
            )
            if not transition_ok:
                return False

        # Start condition: the top-left pixel may be 'm' only if its entry is '1'.
        if b_tl and b_tr and b_bl and not b_br:
            if _state(br) == "m" and _entry(br) != "1":
                return False
        # Acceptance condition: the top-right pixel must be in state 'm'.
        if b_tl and b_tr and b_br and not b_bl:
            if _state(bl) != "m":
                return False
        return True

    return system_from_predicate(1, ["l", "m", "f"], ["0", "1"], predicate)
