"""Closure properties of tiling-system languages (Section 9.2.1).

The class of picture languages recognized by tiling systems is closed under
union, intersection, alphabet projection and transposition.  These closure
operations are the automata-side counterpart of closing existential monadic
second-order logic under disjunction, conjunction, existential projection and
swapping the two successor relations; the paper's induction over quantifier
alternation levels (Theorem 34) implicitly relies on them.

Each function returns a new :class:`~repro.pictures.tiling.TilingSystem`
whose recognized language is the corresponding combination of the inputs'
languages, and the test suite verifies this on exhaustive samples of small
pictures.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.pictures.picture import Picture
from repro.pictures.tiling import BORDER, CellContent, Tile, TilingSystem

__all__ = [
    "union_system",
    "intersection_system",
    "projection_system",
    "transpose_system",
    "transpose_picture",
    "project_picture",
    "systems_agree_on",
]


def _tag_state(tag: str, state: str) -> str:
    return f"{tag}:{state}"


def _tag_cell(tag: str, cell: CellContent) -> CellContent:
    if cell == BORDER:
        return BORDER
    entry, state = cell
    return (entry, _tag_state(tag, state))


def union_system(first: TilingSystem, second: TilingSystem) -> TilingSystem:
    """A tiling system recognizing the union of the two languages.

    The state sets are kept disjoint by tagging, so any accepting assignment
    uses states of only one of the two systems: a window mixing states from
    both systems matches no tile, and every window of a picture of size at
    least ``1 x 2`` or ``2 x 1`` connects two pixels.
    """
    if first.bits != second.bits:
        raise ValueError("union requires tiling systems over the same number of bits")
    states = [_tag_state("L", s) for s in first.states] + [
        _tag_state("R", s) for s in second.states
    ]
    tiles: Set[Tile] = set()
    for tile in first.tiles:
        tiles.add(tuple(_tag_cell("L", cell) for cell in tile))
    for tile in second.tiles:
        tiles.add(tuple(_tag_cell("R", cell) for cell in tile))
    return TilingSystem.build(bits=first.bits, states=states, tiles=tiles)


def _pair_state(a: str, b: str) -> str:
    return f"({a}&{b})"


def _pair_cell(a: CellContent, b: CellContent) -> CellContent:
    if a == BORDER and b == BORDER:
        return BORDER
    if a == BORDER or b == BORDER:
        raise ValueError("cannot pair a border cell with a pixel cell")
    entry_a, state_a = a
    entry_b, state_b = b
    if entry_a != entry_b:
        raise ValueError("paired cells must carry the same entry")
    return (entry_a, _pair_state(state_a, state_b))


def intersection_system(first: TilingSystem, second: TilingSystem) -> TilingSystem:
    """The product tiling system recognizing the intersection of the two languages.

    Its states are pairs of states, and a product tile exists for every pair
    of tiles (one from each system) that agree on their entry bits and on
    where the frame lies.
    """
    if first.bits != second.bits:
        raise ValueError("intersection requires tiling systems over the same number of bits")
    states = [_pair_state(a, b) for a in first.states for b in second.states]
    tiles: Set[Tile] = set()
    for tile_a in first.tiles:
        for tile_b in second.tiles:
            compatible = True
            combined: List[CellContent] = []
            for cell_a, cell_b in zip(tile_a, tile_b):
                if (cell_a == BORDER) != (cell_b == BORDER):
                    compatible = False
                    break
                if cell_a == BORDER:
                    combined.append(BORDER)
                    continue
                if cell_a[0] != cell_b[0]:
                    compatible = False
                    break
                combined.append(_pair_cell(cell_a, cell_b))
            if compatible:
                tiles.add(tuple(combined))
    return TilingSystem.build(bits=first.bits, states=states, tiles=tiles)


def projection_system(
    system: TilingSystem, mapping: Callable[[str], str], target_bits: int
) -> TilingSystem:
    """The image of the language under a letter-to-letter projection of the entries.

    ``mapping`` sends each ``system.bits``-bit entry to a ``target_bits``-bit
    entry; a projected picture is accepted precisely if it is the image of
    some accepted picture.  As in the classical construction, the projected
    system remembers the original entry inside its states, which is exactly
    how existential quantification over set variables is eliminated in the
    proof of Theorem 32.
    """
    if target_bits < 1:
        raise ValueError("target_bits must be positive")
    original_entries = ["".join(bits) for bits in itertools.product("01", repeat=system.bits)]
    for entry in original_entries:
        image = mapping(entry)
        if len(image) != target_bits or not set(image) <= {"0", "1"}:
            raise ValueError(
                f"projection of {entry!r} must be a bit string of length {target_bits}, got {image!r}"
            )

    def project_state(entry: str, state: str) -> str:
        return f"{state}[{entry}]"

    states = [project_state(entry, state) for entry in original_entries for state in system.states]
    tiles: Set[Tile] = set()
    for tile in system.tiles:
        projected: List[CellContent] = []
        for cell in tile:
            if cell == BORDER:
                projected.append(BORDER)
                continue
            entry, state = cell
            projected.append((mapping(entry), project_state(entry, state)))
        tiles.add(tuple(projected))
    return TilingSystem.build(bits=target_bits, states=states, tiles=tiles)


def transpose_system(system: TilingSystem) -> TilingSystem:
    """The tiling system recognizing the transposed pictures.

    Transposition swaps the roles of the vertical and horizontal successor
    relations; on tiles it swaps the top-right and bottom-left entries.
    """
    tiles: Set[Tile] = set()
    for top_left, top_right, bottom_left, bottom_right in system.tiles:
        tiles.add((top_left, bottom_left, top_right, bottom_right))
    return TilingSystem.build(bits=system.bits, states=system.states, tiles=tiles)


def transpose_picture(picture: Picture) -> Picture:
    """The transposed picture (rows become columns)."""
    rows = tuple(
        tuple(picture.entry(i, j) for i in range(picture.height)) for j in range(picture.width)
    )
    return Picture(bits=picture.bits, rows=rows)


def project_picture(picture: Picture, mapping: Callable[[str], str], target_bits: int) -> Picture:
    """Apply a letter-to-letter projection to every entry of *picture*."""
    rows = tuple(
        tuple(mapping(picture.entry(i, j)) for j in range(picture.width))
        for i in range(picture.height)
    )
    return Picture(bits=target_bits, rows=rows)


def systems_agree_on(
    first: TilingSystem, second: TilingSystem, pictures: Iterable[Picture]
) -> Tuple[bool, List[Picture]]:
    """Check that two tiling systems accept exactly the same of the given pictures."""
    disagreements = [
        picture for picture in pictures if first.accepts(picture) != second.accepts(picture)
    ]
    return (not disagreements, disagreements)
