"""t-bit pictures and their structural representations (Section 9.2.1, Figure 14).

A t-bit picture of size ``(m, n)`` is an ``m x n`` matrix whose entries are
bit strings of length ``t``.  Its structural representation has one element
per pixel, ``t`` unary relations giving the bit values, and two binary
successor relations (vertical and horizontal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.graphs.structures import Structure

Pixel = Tuple[int, int]


@dataclass(frozen=True)
class Picture:
    """An immutable t-bit picture."""

    bits: int
    rows: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.rows or not self.rows[0]:
            raise ValueError("pictures must have at least one row and one column")
        width = len(self.rows[0])
        for row in self.rows:
            if len(row) != width:
                raise ValueError("all rows of a picture must have the same length")
            for entry in row:
                if len(entry) != self.bits or not set(entry) <= {"0", "1"}:
                    raise ValueError(
                        f"every entry must be a bit string of length {self.bits}, got {entry!r}"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[str]], bits: int | None = None) -> "Picture":
        """Build a picture from nested sequences of equal-length bit strings."""
        row_tuples = tuple(tuple(row) for row in rows)
        if bits is None:
            bits = len(row_tuples[0][0]) if row_tuples and row_tuples[0] else 0
        return cls(bits=bits, rows=row_tuples)

    @classmethod
    def constant(cls, height: int, width: int, entry: str) -> "Picture":
        """The picture all of whose entries equal *entry*."""
        return cls(bits=len(entry), rows=tuple(tuple(entry for _ in range(width)) for _ in range(height)))

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of rows ``m``."""
        return len(self.rows)

    @property
    def width(self) -> int:
        """Number of columns ``n``."""
        return len(self.rows[0])

    def size(self) -> Tuple[int, int]:
        """The pair ``(m, n)``."""
        return (self.height, self.width)

    def entry(self, row: int, column: int) -> str:
        """The bit string at pixel ``(row, column)`` (0-based)."""
        return self.rows[row][column]

    def pixels(self) -> Iterable[Pixel]:
        """All pixel coordinates in row-major order."""
        for i in range(self.height):
            for j in range(self.width):
                yield (i, j)

    def bit(self, row: int, column: int, index: int) -> bool:
        """The value of the ``index``-th bit (1-based, as in the paper) of a pixel."""
        return self.entry(row, column)[index - 1] == "1"

    def __str__(self) -> str:
        return "\n".join(" ".join(row) for row in self.rows)


def picture_structure(picture: Picture) -> Structure:
    """The structural representation ``$P`` of a picture (Figure 14).

    Signature ``(t, 2)``: unary relation ``k`` holds at the pixels whose
    ``k``-th bit is 1, binary relation 1 is the vertical successor
    (``(i, j) -> (i+1, j)``), binary relation 2 the horizontal successor
    (``(i, j) -> (i, j+1)``).
    """
    domain: List[Pixel] = list(picture.pixels())
    unary: List[Set[Pixel]] = []
    for index in range(1, picture.bits + 1):
        unary.append({p for p in domain if picture.bit(p[0], p[1], index)})
    vertical = {
        ((i, j), (i + 1, j)) for i in range(picture.height - 1) for j in range(picture.width)
    }
    horizontal = {
        ((i, j), (i, j + 1)) for i in range(picture.height) for j in range(picture.width - 1)
    }
    return Structure(domain, unary=unary, binary=[vertical, horizontal])
