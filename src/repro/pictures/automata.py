"""Finite automata on words (Section 9.3).

Section 9.3 of the paper uses two classical results about finite automata to
place natural graph properties *outside* the locally polynomial hierarchy:

* the **Buechi-Elgot-Trakhtenbrot theorem**, which identifies the word
  languages definable in monadic second-order logic with the regular
  languages, and
* the **pumping lemma** for regular languages.

This module implements deterministic and nondeterministic finite automata
over alphabets of fixed-length bit strings, together with the standard
constructions the paper's arguments rely on: the subset construction,
product automata (intersection), complementation of DFAs, and an executable
pumping lemma (both the decomposition it guarantees and the pumped words it
produces).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "NFA",
    "DFA",
    "dfa_from_nfa",
    "product_dfa",
    "complement_dfa",
    "parity_dfa",
    "divisibility_dfa",
    "contains_factor_nfa",
    "all_ones_dfa",
    "pumping_decomposition",
    "pumped_words",
    "enumerate_words",
]

Symbol = str
State = str


def _check_symbol(symbol: Symbol, width: int) -> None:
    if len(symbol) != width or not set(symbol) <= {"0", "1"}:
        raise ValueError(f"symbols must be bit strings of length {width}, got {symbol!r}")


def _split_word(word: str, width: int) -> List[Symbol]:
    if len(word) % width != 0:
        raise ValueError(f"word length {len(word)} is not divisible by symbol width {width}")
    return [word[i : i + width] for i in range(0, len(word), width)]


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton over length-``width`` bit-string symbols.

    Attributes
    ----------
    width:
        Length of each alphabet symbol (1 for plain bit strings).
    states:
        The state set.
    initial:
        The set of initial states.
    accepting:
        The set of accepting states.
    transitions:
        Mapping from ``(state, symbol)`` to the set of successor states.
        Missing entries mean "no transition".
    """

    width: int
    states: FrozenSet[State]
    initial: FrozenSet[State]
    accepting: FrozenSet[State]
    transitions: Mapping[Tuple[State, Symbol], FrozenSet[State]]

    @classmethod
    def build(
        cls,
        width: int,
        states: Iterable[State],
        initial: Iterable[State],
        accepting: Iterable[State],
        transitions: Mapping[Tuple[State, Symbol], Iterable[State]],
    ) -> "NFA":
        """Validating constructor."""
        state_set = frozenset(states)
        initial_set = frozenset(initial)
        accepting_set = frozenset(accepting)
        if not initial_set <= state_set or not accepting_set <= state_set:
            raise ValueError("initial and accepting states must be drawn from the state set")
        table: Dict[Tuple[State, Symbol], FrozenSet[State]] = {}
        for (state, symbol), targets in transitions.items():
            if state not in state_set:
                raise ValueError(f"transition from unknown state {state!r}")
            _check_symbol(symbol, width)
            target_set = frozenset(targets)
            if not target_set <= state_set:
                raise ValueError(f"transition to unknown state from {state!r} on {symbol!r}")
            table[(state, symbol)] = target_set
        return cls(
            width=width,
            states=state_set,
            initial=initial_set,
            accepting=accepting_set,
            transitions=dict(table),
        )

    # ------------------------------------------------------------------
    def step(self, current: FrozenSet[State], symbol: Symbol) -> FrozenSet[State]:
        """The set of states reachable from *current* by reading *symbol*."""
        _check_symbol(symbol, self.width)
        successors: Set[State] = set()
        for state in current:
            successors |= self.transitions.get((state, symbol), frozenset())
        return frozenset(successors)

    def run(self, word: str) -> FrozenSet[State]:
        """The set of states reachable after reading *word* from the initial states."""
        current = self.initial
        for symbol in _split_word(word, self.width):
            current = self.step(current, symbol)
        return current

    def accepts(self, word: str) -> bool:
        """Whether *word* is in the recognized language."""
        return bool(self.run(word) & self.accepting)

    def alphabet(self) -> List[Symbol]:
        """All length-``width`` bit strings."""
        return ["".join(bits) for bits in itertools.product("01", repeat=self.width)]


@dataclass(frozen=True)
class DFA:
    """A (complete) deterministic finite automaton over bit-string symbols."""

    width: int
    states: FrozenSet[State]
    initial: State
    accepting: FrozenSet[State]
    transitions: Mapping[Tuple[State, Symbol], State]

    @classmethod
    def build(
        cls,
        width: int,
        states: Iterable[State],
        initial: State,
        accepting: Iterable[State],
        transitions: Mapping[Tuple[State, Symbol], State],
    ) -> "DFA":
        """Validating constructor; the transition table must be complete."""
        state_set = frozenset(states)
        accepting_set = frozenset(accepting)
        if initial not in state_set or not accepting_set <= state_set:
            raise ValueError("initial and accepting states must be drawn from the state set")
        alphabet = ["".join(bits) for bits in itertools.product("01", repeat=width)]
        for state in state_set:
            for symbol in alphabet:
                if (state, symbol) not in transitions:
                    raise ValueError(f"missing transition from {state!r} on {symbol!r}")
        for (state, symbol), target in transitions.items():
            if state not in state_set or target not in state_set:
                raise ValueError("transition refers to unknown state")
            _check_symbol(symbol, width)
        return cls(
            width=width,
            states=state_set,
            initial=initial,
            accepting=accepting_set,
            transitions=dict(transitions),
        )

    # ------------------------------------------------------------------
    def step(self, state: State, symbol: Symbol) -> State:
        """The unique successor state."""
        _check_symbol(symbol, self.width)
        return self.transitions[(state, symbol)]

    def trace(self, word: str) -> List[State]:
        """The full state sequence visited while reading *word* (length ``|word|/width + 1``)."""
        states = [self.initial]
        for symbol in _split_word(word, self.width):
            states.append(self.step(states[-1], symbol))
        return states

    def run(self, word: str) -> State:
        """The state reached after reading *word*."""
        return self.trace(word)[-1]

    def accepts(self, word: str) -> bool:
        """Whether *word* is in the recognized language."""
        return self.run(word) in self.accepting

    def alphabet(self) -> List[Symbol]:
        """All length-``width`` bit strings."""
        return ["".join(bits) for bits in itertools.product("01", repeat=self.width)]

    def to_nfa(self) -> NFA:
        """View the DFA as an NFA (every DFA is one)."""
        return NFA.build(
            width=self.width,
            states=self.states,
            initial=[self.initial],
            accepting=self.accepting,
            transitions={key: [target] for key, target in self.transitions.items()},
        )


# ----------------------------------------------------------------------
# Standard constructions
# ----------------------------------------------------------------------
def dfa_from_nfa(nfa: NFA) -> DFA:
    """The subset construction: an equivalent DFA whose states are sets of NFA states."""

    def name_of(subset: FrozenSet[State]) -> State:
        return "{" + ",".join(sorted(subset)) + "}"

    alphabet = nfa.alphabet()
    start = nfa.initial
    seen: Dict[FrozenSet[State], State] = {start: name_of(start)}
    worklist: List[FrozenSet[State]] = [start]
    transitions: Dict[Tuple[State, Symbol], State] = {}
    accepting: Set[State] = set()

    while worklist:
        subset = worklist.pop()
        if subset & nfa.accepting:
            accepting.add(name_of(subset))
        for symbol in alphabet:
            successor = nfa.step(subset, symbol)
            if successor not in seen:
                seen[successor] = name_of(successor)
                worklist.append(successor)
            transitions[(name_of(subset), symbol)] = name_of(successor)

    return DFA.build(
        width=nfa.width,
        states=seen.values(),
        initial=name_of(start),
        accepting=accepting,
        transitions=transitions,
    )


def product_dfa(first: DFA, second: DFA, mode: str = "intersection") -> DFA:
    """The product automaton recognizing the intersection or union of two DFA languages."""
    if first.width != second.width:
        raise ValueError("product requires automata over the same alphabet")
    if mode not in ("intersection", "union"):
        raise ValueError("mode must be 'intersection' or 'union'")

    def name_of(a: State, b: State) -> State:
        return f"({a}|{b})"

    states = [name_of(a, b) for a in first.states for b in second.states]
    transitions: Dict[Tuple[State, Symbol], State] = {}
    for a in first.states:
        for b in second.states:
            for symbol in first.alphabet():
                transitions[(name_of(a, b), symbol)] = name_of(
                    first.transitions[(a, symbol)], second.transitions[(b, symbol)]
                )
    if mode == "intersection":
        accepting = [
            name_of(a, b) for a in first.accepting for b in second.accepting
        ]
    else:
        accepting = [
            name_of(a, b)
            for a in first.states
            for b in second.states
            if a in first.accepting or b in second.accepting
        ]
    return DFA.build(
        width=first.width,
        states=states,
        initial=name_of(first.initial, second.initial),
        accepting=accepting,
        transitions=transitions,
    )


def complement_dfa(dfa: DFA) -> DFA:
    """The DFA recognizing the complement language (swap accepting and rejecting states)."""
    return DFA.build(
        width=dfa.width,
        states=dfa.states,
        initial=dfa.initial,
        accepting=dfa.states - dfa.accepting,
        transitions=dfa.transitions,
    )


# ----------------------------------------------------------------------
# Concrete automata used by the Section 9.3 arguments
# ----------------------------------------------------------------------
def parity_dfa(bit: str = "1", parity: int = 1) -> DFA:
    """Words containing an odd (``parity=1``) or even (``parity=0``) number of *bit*."""
    if bit not in ("0", "1"):
        raise ValueError("bit must be '0' or '1'")
    if parity not in (0, 1):
        raise ValueError("parity must be 0 or 1")
    transitions = {}
    for state in ("even", "odd"):
        for symbol in ("0", "1"):
            if symbol == bit:
                transitions[(state, symbol)] = "odd" if state == "even" else "even"
            else:
                transitions[(state, symbol)] = state
    return DFA.build(
        width=1,
        states=["even", "odd"],
        initial="even",
        accepting=["odd" if parity == 1 else "even"],
        transitions=transitions,
    )


def divisibility_dfa(modulus: int, remainder: int = 0, bit: str = "1") -> DFA:
    """Words in which the number of occurrences of *bit* is ``remainder`` modulo *modulus*."""
    if modulus < 1:
        raise ValueError("modulus must be positive")
    if not 0 <= remainder < modulus:
        raise ValueError("remainder must lie in [0, modulus)")
    states = [f"r{i}" for i in range(modulus)]
    transitions = {}
    for i in range(modulus):
        for symbol in ("0", "1"):
            if symbol == bit:
                transitions[(f"r{i}", symbol)] = f"r{(i + 1) % modulus}"
            else:
                transitions[(f"r{i}", symbol)] = f"r{i}"
    return DFA.build(
        width=1,
        states=states,
        initial="r0",
        accepting=[f"r{remainder}"],
        transitions=transitions,
    )


def contains_factor_nfa(factor: str) -> NFA:
    """Words containing *factor* as a (contiguous) factor."""
    if not factor or not set(factor) <= {"0", "1"}:
        raise ValueError("factor must be a nonempty bit string")
    states = [f"q{i}" for i in range(len(factor) + 1)]
    transitions: Dict[Tuple[State, Symbol], List[State]] = {}
    for symbol in ("0", "1"):
        transitions[("q0", symbol)] = ["q0"]
        transitions[(states[-1], symbol)] = [states[-1]]
    for i, expected in enumerate(factor):
        key = (f"q{i}", expected)
        transitions.setdefault(key, [])
        transitions[key] = list(transitions[key]) + [f"q{i + 1}"]
    return NFA.build(
        width=1,
        states=states,
        initial=["q0"],
        accepting=[states[-1]],
        transitions=transitions,
    )


def all_ones_dfa() -> DFA:
    """Words consisting only of ``1`` characters (the word version of all-selected)."""
    transitions = {
        ("good", "1"): "good",
        ("good", "0"): "bad",
        ("bad", "0"): "bad",
        ("bad", "1"): "bad",
    }
    return DFA.build(
        width=1, states=["good", "bad"], initial="good", accepting=["good"], transitions=transitions
    )


# ----------------------------------------------------------------------
# The pumping lemma, executably
# ----------------------------------------------------------------------
def pumping_decomposition(dfa: DFA, word: str) -> Optional[Tuple[str, str, str]]:
    """A decomposition ``word = x y z`` with ``|xy| <= #states``, ``y`` nonempty, and
    ``x y^i z`` accepted for all ``i`` whenever *word* is accepted and long enough.

    Returns ``None`` if the word is shorter than the number of states (the
    pumping lemma then gives no guarantee).  The decomposition is obtained the
    standard way: the state trace of a long word must repeat a state within
    the first ``#states`` steps, and the factor read between the two visits
    can be pumped.
    """
    symbols = _split_word(word, dfa.width)
    bound = len(dfa.states)
    if len(symbols) < bound:
        return None
    trace = dfa.trace(word)
    seen: Dict[State, int] = {}
    for position in range(bound + 1):
        state = trace[position]
        if state in seen:
            start, end = seen[state], position
            x = "".join(symbols[:start])
            y = "".join(symbols[start:end])
            z = "".join(symbols[end:])
            return (x, y, z)
        seen[state] = position
    raise AssertionError("pigeonhole violated: a trace of length > #states must repeat a state")


def pumped_words(decomposition: Tuple[str, str, str], repetitions: Sequence[int]) -> List[str]:
    """The words ``x y^i z`` for the given exponents ``i``."""
    x, y, z = decomposition
    if not y:
        raise ValueError("the pumped factor y must be nonempty")
    return [x + y * i + z for i in repetitions]


def enumerate_words(length: int, width: int = 1) -> Iterator[str]:
    """All words of exactly *length* symbols over the length-*width* bit-string alphabet."""
    symbols = ["".join(bits) for bits in itertools.product("01", repeat=width)]
    for choice in itertools.product(symbols, repeat=length):
        yield "".join(choice)
