"""The Figure 7 comparison: alternation level vs certificate size.

For each of the example properties of Figure 7 the table records

* the level of the locally bounded hierarchy the paper places it at, together
  with the level our Section 5.2 formula actually achieves (where we have
  one), and
* the LCP certificate-size class the paper places it at, together with the
  certificate sizes measured from the proof-labeling schemes of
  :mod:`repro.locality.proof_labeling` on a family of sample graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.graphs import generators
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.locality.alternation import alternation_levels, locality_band
from repro.locality.proof_labeling import ProofLabelingScheme, all_schemes
from repro.properties.base import property_registry


@dataclass
class Figure7Row:
    """One row of the Figure 7 comparison table."""

    property_name: str
    paper_alternation_class: str
    formula_alternation_class: Optional[str]
    paper_lcp_class: str
    measured_certificate_lengths: Optional[Dict[int, int]]
    #: Whether the scheme's honest certificates were accepted on every
    #: sample graph (checked through the engine's memoizing evaluator;
    #: ``None`` when the property has no executable scheme).
    scheme_verified: Optional[bool] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "property": self.property_name,
            "paper alternation": self.paper_alternation_class,
            "our formula": self.formula_alternation_class or "-",
            "paper LCP": self.paper_lcp_class,
            "measured |certificate| by n": self.measured_certificate_lengths or {},
            "scheme verified": self.scheme_verified,
        }


#: The properties shown in Figure 7, in the paper's bottom-to-top order.
FIGURE7_PROPERTIES = [
    "eulerian",
    "3-colorable",
    "odd",
    "acyclic",
    "hamiltonian",
    "non-2-colorable",
    "non-3-colorable",
    "automorphic",
    "prime",
]


def _sample_graphs_for(scheme: ProofLabelingScheme) -> Dict[int, object]:
    """Yes-instances of growing size for measuring certificate lengths."""
    samples = {}
    for size in (5, 9, 15, 21):
        if scheme.property_name == "eulerian":
            graph = generators.cycle_graph(size)
        elif scheme.property_name == "3-colorable":
            graph = generators.cycle_graph(size if size % 2 == 0 else size + 1)
        elif scheme.property_name == "odd":
            graph = generators.path_graph(size if size % 2 == 1 else size + 1)
        elif scheme.property_name == "acyclic":
            graph = generators.random_tree(size, seed=size)
        elif scheme.property_name == "non-2-colorable":
            graph = generators.cycle_graph(size if size % 2 == 1 else size + 1)
        elif scheme.property_name == "automorphic":
            graph = generators.cycle_graph(size)
        else:
            continue
        samples[graph.cardinality()] = graph
    return samples


def _figure7_plan() -> "Tuple[List[Figure7Row], list, List[int]]":
    """The table rows plus the verification games backing their ``verified`` column.

    Returns ``(rows, instances, instance_rows)`` where ``instance_rows[i]``
    is the index of the row that instance ``i``'s verdict belongs to.
    Deterministic (the provers are), which lets the instance list double as
    a registered scenario for parallel workers and the persistent store.
    """
    from repro.engine.batch import GameInstance
    from repro.hierarchy.game import Quantifier
    from repro.sweep import fixed_certificate_space

    formula_levels = {name: str(cls) for name, cls in alternation_levels().items()}
    schemes = {scheme.property_name: scheme for scheme in all_schemes()}
    rows: List[Figure7Row] = []
    instances: List[GameInstance] = []
    #: parallel to *instances*: the row index whose verification it belongs to.
    instance_rows: List[int] = []
    for name in FIGURE7_PROPERTIES:
        registered = property_registry.get(name)
        paper_alt = registered.paper_alternation_class if registered else "?"
        paper_lcp = registered.paper_lcp_class if registered else "?"
        measured: Optional[Dict[int, int]] = None
        verified: Optional[bool] = None
        if name in schemes:
            scheme = schemes[name]
            measured = {}
            verified = True
            for size, graph in _sample_graphs_for(scheme).items():
                ids = sequential_identifier_assignment(graph)
                certificates = scheme.prover(graph, ids)
                if certificates is None:
                    measured[size] = 0
                    verified = False
                    continue
                measured[size] = max(len(value) for value in certificates.values())
                instances.append(
                    GameInstance(
                        machine=scheme.verifier,
                        graph=graph,
                        ids=ids,
                        spaces=[
                            fixed_certificate_space(certificates, name=f"honest[{scheme.name}]")
                        ],
                        prefix=[Quantifier.EXISTS],
                        name=f"pls-{name}|n{size}",
                    )
                )
                instance_rows.append(len(rows))
        rows.append(
            Figure7Row(
                property_name=name,
                paper_alternation_class=paper_alt or "?",
                formula_alternation_class=formula_levels.get(name),
                paper_lcp_class=paper_lcp or "?",
                measured_certificate_lengths=measured,
                scheme_verified=verified,
            )
        )
    return rows, instances, instance_rows


def figure7_verification_instances() -> list:
    """The verification games backing the table, for the scenario registry.

    Registered as the built-in ``figure7-verification`` scenario in
    :mod:`repro.sweep.scenarios`; ``figure7_rows`` runs exactly this list,
    which is what lets it shard across worker processes by name.
    """
    return _figure7_plan()[1]


def figure7_rows(jobs: int = 0, store: Union[str, object, None] = None) -> List[Figure7Row]:
    """Compute the Figure 7 table rows.

    The honest-certificate verification games of every scheme x sample pair
    are collected into one batch and run through the sweep executor as the
    registered ``figure7-verification`` scenario: engines are shared across
    pairs, *jobs* > 1 shards the batch over worker processes, and *store*
    makes re-tabulations incremental across sessions.
    """
    from repro.sweep import run_instances

    rows, instances, instance_rows = _figure7_plan()
    sweep = run_instances(
        instances, jobs=jobs, store=store, scenario="figure7-verification"
    )
    for row_index, result in zip(instance_rows, sweep.results):
        if not result.verdict:
            rows[row_index].scheme_verified = False
    return rows


def figure7_table() -> str:
    """A human-readable rendering of the Figure 7 comparison."""
    rows = figure7_rows()
    header = (
        f"{'property':<18} {'paper-alt':<28} {'our formula':<16} {'paper-LCP':<16} "
        f"{'verified':<9} measured certificate bits"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        measured = (
            ", ".join(f"n={size}: {length}" for size, length in sorted(row.measured_certificate_lengths.items()))
            if row.measured_certificate_lengths
            else "-"
        )
        verified = "-" if row.scheme_verified is None else ("yes" if row.scheme_verified else "NO")
        lines.append(
            f"{row.property_name:<18} {row.paper_alternation_class:<28} "
            f"{(row.formula_alternation_class or '-'):<16} {row.paper_lcp_class:<16} "
            f"{verified:<9} {measured}"
        )
    return "\n".join(lines)
