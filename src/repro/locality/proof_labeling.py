"""Concrete proof-labeling schemes (the LCP side of Figure 7).

A proof-labeling scheme for a property consists of a *prover* that, on every
yes-instance, produces a certificate assignment, and a constant-round
*verifier* that accepts the prover's certificates on yes-instances
(completeness) and rejects every certificate assignment on no-instances
(soundness).  The asymptotic certificate length is the LCP measure of
locality used by Göös-Suomela and, as Figure 7 of the paper shows, it aligns
with the alternation measure of the locally bounded hierarchy.

Schemes implemented here (with their certificate-size class):

=======================  =================  =====================================
Property                 Certificate size   Construction
=======================  =================  =====================================
eulerian                 0                  no certificate, degree parity check
3-colorable              O(1)               the color of the node
acyclic                  O(log n)           distance to a root
odd                      O(log n)           spanning tree + subtree parities
non-2-colorable          O(log n)           spanning tree + odd cycle with parities
automorphic              O(n^2)             full adjacency list + the automorphism
=======================  =================  =====================================

Certificates are bit strings; structured contents are packed as ASCII text
via :func:`repro.boolsat.encoding.encode_text` (an 8x constant factor that
does not affect the asymptotic class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.boolsat.encoding import decode_text, encode_text
from repro.graphs.identifiers import sequential_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.builtin import eulerian_decider, star_predicate_verifier, three_colorability_verifier
from repro.machines.interface import NodeMachine
from repro.machines.rules import StarView
from repro.machines.simulator import execute
from repro.properties import coloring, cycles, misc

Prover = Callable[[LabeledGraph, Mapping[Node, str]], Optional[Dict[Node, str]]]


@dataclass
class ProofLabelingScheme:
    """A locally checkable proof: prover, verifier and metadata."""

    name: str
    property_name: str
    decide: Callable[[LabeledGraph], bool]
    prover: Prover
    verifier: NodeMachine
    size_class: str

    def prove_and_verify(self, graph: LabeledGraph, ids: Optional[Mapping[Node, str]] = None) -> bool:
        """Run the prover and then the verifier (completeness check on yes-instances)."""
        if ids is None:
            ids = sequential_identifier_assignment(graph)
        certificates = self.prover(graph, ids)
        if certificates is None:
            return False
        return self.verify(graph, certificates, ids)

    def verify(self, graph: LabeledGraph, certificates: Mapping[Node, str],
               ids: Optional[Mapping[Node, str]] = None) -> bool:
        """Run only the verifier on the given certificates.

        Routed through the engine's shared
        :class:`~repro.engine.evaluator.LeafEvaluator`, so sweeps that try
        many certificate assignments on one graph (e.g. the soundness tests)
        reuse each node's cached verdicts instead of re-simulating.
        """
        from repro.engine import shared_evaluator

        if ids is None:
            ids = sequential_identifier_assignment(graph)
        return shared_evaluator(self.verifier, graph, ids).accepts([dict(certificates)])

    def max_certificate_length(self, graph: LabeledGraph, ids: Optional[Mapping[Node, str]] = None) -> int:
        """The longest certificate the prover assigns on *graph* (0 if it cannot prove)."""
        if ids is None:
            ids = sequential_identifier_assignment(graph)
        certificates = self.prover(graph, ids)
        if certificates is None:
            return 0
        return max(len(value) for value in certificates.values())


# ----------------------------------------------------------------------
# Helpers: packing structured certificates and reading them back
# ----------------------------------------------------------------------
def _pack(fields: Mapping[str, str]) -> str:
    return encode_text("|".join(f"{key}={value}" for key, value in sorted(fields.items())))


def _unpack(bits: str) -> Optional[Dict[str, str]]:
    try:
        text = decode_text(bits)
    except ValueError:
        return None
    result: Dict[str, str] = {}
    if not text:
        return result
    for part in text.split("|"):
        key, _, value = part.partition("=")
        result[key] = value
    return result


def spanning_tree_certificates(
    graph: LabeledGraph, ids: Mapping[Node, str], root: Optional[Node] = None
) -> Dict[Node, Dict[str, str]]:
    """Per-node spanning-tree fields: root id, parent id, distance (as decimal text)."""
    if root is None:
        root = graph.nodes[0]
    distances = graph.distances_from(root)
    parents: Dict[Node, Node] = {root: root}
    for u in graph.nodes:
        if u == root:
            continue
        parents[u] = min(
            (v for v in graph.neighbors(u) if distances[v] == distances[u] - 1), key=lambda v: ids[v]
        )
    return {
        u: {
            "root": ids[root],
            "parent": ids[parents[u]],
            "dist": str(distances[u]),
        }
        for u in graph.nodes
    }


def _center_fields(star: StarView) -> Optional[Dict[str, str]]:
    """The unpacked certificate fields of the star's center (``None`` if unreadable)."""
    return _unpack(star.certificate) if star.certificate else None


def _fields_by_id(star: StarView) -> Dict[str, Optional[Dict[str, str]]]:
    """Unpacked certificate fields of every neighbor, keyed by identifier."""
    return {
        identifier: (_unpack(certificate) if certificate else None)
        for identifier, _, certificate in star.neighbors
    }


def _tree_fields_valid(star: StarView, fields: Dict[str, str]) -> bool:
    """Local validity of the spanning-tree fields at the star's center."""
    center = star.identifier
    if not {"root", "parent", "dist"} <= set(fields):
        return False
    try:
        distance = int(fields["dist"])
    except ValueError:
        return False
    neighbor_fields_by_id = _fields_by_id(star)
    # All neighbors must agree on the root identifier.
    for neighbor_fields in neighbor_fields_by_id.values():
        if not neighbor_fields or neighbor_fields.get("root") != fields["root"]:
            return False
    if distance == 0:
        # The root must be the node whose identifier equals the claimed root id.
        return fields["root"] == center and fields["parent"] == center
    parent = fields["parent"]
    if parent not in neighbor_fields_by_id:
        return False
    parent_fields = neighbor_fields_by_id[parent]
    if not parent_fields:
        return False
    try:
        parent_distance = int(parent_fields.get("dist", ""))
    except ValueError:
        return False
    return parent_distance == distance - 1


def _children(star: StarView, fields_by_id: Dict[str, Optional[Dict[str, str]]]) -> List[str]:
    """The neighbors that claim the center as their parent."""
    result = []
    for identifier, _, _ in star.neighbors:
        neighbor_fields = fields_by_id[identifier]
        if neighbor_fields and neighbor_fields.get("parent") == star.identifier:
            result.append(identifier)
    return result


# ----------------------------------------------------------------------
# The schemes
# ----------------------------------------------------------------------
def eulerian_scheme() -> ProofLabelingScheme:
    """Eulerianness needs no certificates at all: LCP(0)."""

    def prover(graph: LabeledGraph, ids: Mapping[Node, str]) -> Optional[Dict[Node, str]]:
        if not cycles.eulerian(graph):
            return None
        return {u: "" for u in graph.nodes}

    return ProofLabelingScheme(
        name="eulerian/LCP(0)",
        property_name="eulerian",
        decide=cycles.eulerian,
        prover=prover,
        verifier=eulerian_decider(),
        size_class="0",
    )


def three_colorability_scheme() -> ProofLabelingScheme:
    """3-colorability with constant-size certificates: the node's color."""

    def prover(graph: LabeledGraph, ids: Mapping[Node, str]) -> Optional[Dict[Node, str]]:
        assignment = coloring.find_proper_coloring(graph, 3)
        if assignment is None:
            return None
        return {u: format(color, "b").zfill(2) for u, color in assignment.items()}

    return ProofLabelingScheme(
        name="3-colorable/LCP(O(1))",
        property_name="3-colorable",
        decide=coloring.three_colorable,
        prover=prover,
        verifier=three_colorability_verifier(),
        size_class="O(1)",
    )


def acyclicity_scheme() -> ProofLabelingScheme:
    """Acyclicity with O(log n) certificates: the distance to a root.

    Verification: the (unique) node at distance 0 sees only distance-1
    neighbors; every other node has exactly one neighbor at distance one less
    and all other neighbors at distance one more.  Any cycle makes the
    maximal-distance node on it see two closer neighbors, so the scheme is
    sound.
    """

    def prover(graph: LabeledGraph, ids: Mapping[Node, str]) -> Optional[Dict[Node, str]]:
        if not cycles.acyclic(graph):
            return None
        distances = graph.distances_from(graph.nodes[0])
        return {u: _pack({"dist": str(distances[u])}) for u in graph.nodes}

    def predicate(star: StarView) -> bool:
        fields = _center_fields(star)
        if not fields or "dist" not in fields:
            return False
        try:
            distance = int(fields["dist"])
        except ValueError:
            return False
        neighbor_distances = []
        for neighbor_fields in _fields_by_id(star).values():
            if not neighbor_fields or "dist" not in neighbor_fields:
                return False
            try:
                neighbor_distances.append(int(neighbor_fields["dist"]))
            except ValueError:
                return False
        if distance == 0:
            return all(d == 1 for d in neighbor_distances)
        closer = sum(1 for d in neighbor_distances if d == distance - 1)
        farther = sum(1 for d in neighbor_distances if d == distance + 1)
        return closer == 1 and closer + farther == len(neighbor_distances)

    return ProofLabelingScheme(
        name="acyclic/LCP(O(log n))",
        property_name="acyclic",
        decide=cycles.acyclic,
        prover=prover,
        verifier=star_predicate_verifier(1, predicate, name="acyclic-pls"),
        size_class="O(log n)",
    )


def odd_scheme() -> ProofLabelingScheme:
    """Odd node count with O(log n) certificates: spanning tree plus subtree parities."""

    def prover(graph: LabeledGraph, ids: Mapping[Node, str]) -> Optional[Dict[Node, str]]:
        if not cycles.odd(graph):
            return None
        root = graph.nodes[0]
        tree = spanning_tree_certificates(graph, ids, root)
        # Subtree parities bottom-up.
        distances = graph.distances_from(root)
        order = sorted(graph.nodes, key=lambda u: -distances[u])
        parity: Dict[Node, int] = {}
        children: Dict[Node, List[Node]] = {u: [] for u in graph.nodes}
        for u in graph.nodes:
            if u != root:
                parent_id = tree[u]["parent"]
                parent = next(v for v in graph.neighbors(u) if ids[v] == parent_id)
                children[parent].append(u)
        for u in order:
            parity[u] = (1 + sum(parity[c] for c in children[u])) % 2
        certificates = {}
        for u in graph.nodes:
            fields = dict(tree[u])
            fields["parity"] = str(parity[u])
            certificates[u] = _pack(fields)
        return certificates

    def predicate(star: StarView) -> bool:
        fields = _center_fields(star)
        if not fields or not _tree_fields_valid(star, fields):
            return False
        fields_by_id = _fields_by_id(star)
        try:
            own_parity = int(fields.get("parity", ""))
            child_sum = sum(
                int((fields_by_id[child] or {}).get("parity", "x"))
                for child in _children(star, fields_by_id)
            )
        except ValueError:
            return False
        if own_parity != (1 + child_sum) % 2:
            return False
        if fields["dist"] == "0" and own_parity != 1:
            return False
        return True

    return ProofLabelingScheme(
        name="odd/LCP(O(log n))",
        property_name="odd",
        decide=cycles.odd,
        prover=prover,
        verifier=star_predicate_verifier(1, predicate, name="odd-pls"),
        size_class="O(log n)",
    )


def non_two_colorability_scheme() -> ProofLabelingScheme:
    """Non-2-colorability with O(log n) certificates: spanning tree plus an odd cycle.

    The prover marks an odd cycle, orients it with successor pointers, and
    colors it alternately; the root of the spanning tree lies on the cycle and
    checks that its predecessor carries the *same* parity bit, which forces
    the cycle length to be odd.
    """

    def find_odd_cycle(graph: LabeledGraph) -> Optional[List[Node]]:
        # Deterministic search only: nodes in graph order, neighbors in a
        # sorted order.  (``nx.cycle_basis`` and raw frozenset iteration
        # depend on the process hash seed; certificate contents -- and with
        # them the sweep store's content-addressed keys -- must not.)
        for start in graph.nodes:
            colors = {start: 0}
            stack = [start]
            parent = {start: None}
            while stack:
                u = stack.pop()
                for v in sorted(graph.neighbors(u), key=repr):
                    if v not in colors:
                        colors[v] = 1 - colors[u]
                        parent[v] = u
                        stack.append(v)
                    elif colors[v] == colors[u]:
                        # Reconstruct the odd cycle through u and v.
                        path_u, path_v = [u], [v]
                        seen_u = {u}
                        node = u
                        while parent[node] is not None:
                            node = parent[node]
                            path_u.append(node)
                            seen_u.add(node)
                        node = v
                        while node not in seen_u:
                            node = parent[node]
                            path_v.append(node)
                        meet = path_v[-1]
                        cycle = path_u[: path_u.index(meet) + 1] + list(reversed(path_v[:-1]))
                        if len(cycle) % 2 == 1:
                            return cycle
        return None

    def prover(graph: LabeledGraph, ids: Mapping[Node, str]) -> Optional[Dict[Node, str]]:
        if coloring.two_colorable(graph):
            return None
        odd_cycle = find_odd_cycle(graph)
        if odd_cycle is None:
            return None
        root = odd_cycle[0]
        tree = spanning_tree_certificates(graph, ids, root)
        on_cycle = set(odd_cycle)
        successor: Dict[Node, Node] = {}
        for index, node in enumerate(odd_cycle):
            successor[node] = odd_cycle[(index + 1) % len(odd_cycle)]
        parity = {node: index % 2 for index, node in enumerate(odd_cycle)}
        certificates = {}
        for u in graph.nodes:
            fields = dict(tree[u])
            if u in on_cycle:
                fields["cyc"] = "1"
                fields["succ"] = ids[successor[u]]
                fields["par"] = str(parity[u])
            else:
                fields["cyc"] = "0"
            certificates[u] = _pack(fields)
        return certificates

    def predicate(star: StarView) -> bool:
        fields = _center_fields(star)
        if not fields or not _tree_fields_valid(star, fields):
            return False
        fields_by_id = _fields_by_id(star)
        is_root = fields.get("dist") == "0"
        on_cycle = fields.get("cyc") == "1"
        if is_root and not on_cycle:
            return False
        if not on_cycle:
            return True
        # The successor must be an on-cycle neighbor; exactly one on-cycle
        # neighbor must claim the center as its successor (the predecessor).
        successor = fields.get("succ")
        if successor not in fields_by_id:
            return False
        successor_fields = fields_by_id[successor]
        if not successor_fields or successor_fields.get("cyc") != "1":
            return False
        predecessors = [
            identifier
            for identifier, _, _ in star.neighbors
            if (fields_by_id[identifier] or {}).get("cyc") == "1"
            and (fields_by_id[identifier] or {}).get("succ") == star.identifier
        ]
        if len(predecessors) != 1:
            return False
        predecessor_fields = fields_by_id[predecessors[0]] or {}
        if is_root:
            return predecessor_fields.get("par") == fields.get("par")
        return predecessor_fields.get("par") != fields.get("par")

    return ProofLabelingScheme(
        name="non-2-colorable/LCP(O(log n))",
        property_name="non-2-colorable",
        decide=coloring.non_two_colorable,
        prover=prover,
        verifier=star_predicate_verifier(1, predicate, name="non2col-pls"),
        size_class="O(log n)",
    )


def automorphism_scheme() -> ProofLabelingScheme:
    """Nontrivial automorphism with quadratic certificates: map plus adjacency list.

    Every node receives the full edge list (by identifiers) and the claimed
    automorphism; it checks that its own incident edges match the list, that
    its neighbors carry the same certificate, that the permutation preserves
    the listed edges and labels, and that it is not the identity.
    """

    def prover(graph: LabeledGraph, ids: Mapping[Node, str]) -> Optional[Dict[Node, str]]:
        nx_graph = graph.to_networkx()
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            nx_graph, nx_graph, node_match=lambda a, b: a.get("label", "") == b.get("label", "")
        )
        identity = {u: u for u in graph.nodes}
        automorphism = None
        for mapping in matcher.isomorphisms_iter():
            if mapping != identity:
                automorphism = mapping
                break
        if automorphism is None:
            return None
        edges_text = ",".join(
            sorted(f"{min(ids[u], ids[v])}-{max(ids[u], ids[v])}" for u, v in graph.edge_pairs())
        )
        mapping_text = ",".join(sorted(f"{ids[u]}>{ids[v]}" for u, v in automorphism.items()))
        labels_text = ",".join(sorted(f"{ids[u]}:{graph.label(u)}" for u in graph.nodes))
        certificate = _pack({"edges": edges_text, "map": mapping_text, "labels": labels_text})
        return {u: certificate for u in graph.nodes}

    def predicate(star: StarView) -> bool:
        own_certificate = star.certificate
        fields = _center_fields(star)
        if not fields or not {"edges", "map", "labels"} <= set(fields):
            return False
        # Certificates must agree with all neighbors.
        for _, _, neighbor_certificate in star.neighbors:
            if neighbor_certificate is None or neighbor_certificate != own_certificate:
                return False
        edges = set(filter(None, fields["edges"].split(",")))
        mapping = dict(item.split(">") for item in fields["map"].split(",") if item)
        labels = dict(item.split(":") if ":" in item else (item, "") for item in fields["labels"].split(",") if item)
        center = star.identifier
        # The center's incident edges must be exactly those listed for it.
        listed_incident = {e for e in edges if center in e.split("-")}
        actual_incident = {
            f"{min(center, nb)}-{max(center, nb)}" for nb, _, _ in star.neighbors
        }
        if listed_incident != actual_incident:
            return False
        # The center's label must match the list.
        if labels.get(center, "") != star.label:
            return False
        # The mapping must be a label-preserving automorphism of the listed graph.
        if set(mapping) != set(labels) or set(mapping.values()) != set(labels):
            return False
        if all(mapping[x] == x for x in mapping):
            return False
        for edge in edges:
            a, b = edge.split("-")
            image = f"{min(mapping[a], mapping[b])}-{max(mapping[a], mapping[b])}"
            if image not in edges:
                return False
        for x, y in mapping.items():
            if labels.get(x, "") != labels.get(y, ""):
                return False
        return True

    return ProofLabelingScheme(
        name="automorphic/LCP(poly(n))",
        property_name="automorphic",
        decide=misc.automorphic,
        prover=prover,
        verifier=star_predicate_verifier(1, predicate, name="automorphic-pls"),
        size_class="O(n^2)",
    )


def all_schemes() -> List[ProofLabelingScheme]:
    """Every proof-labeling scheme implemented in this module."""
    return [
        eulerian_scheme(),
        three_colorability_scheme(),
        acyclicity_scheme(),
        odd_scheme(),
        non_two_colorability_scheme(),
        automorphism_scheme(),
    ]
