"""Locality measures: quantifier alternation vs certificate size (Section 2.5, Figure 7).

Two measures of how "global" a graph property is are compared in Figure 7 of
the paper:

* the **alternation level**: the lowest level of the locally bounded (here:
  locally polynomial / local second-order) hierarchy containing the property,
  computed in this repository from the syntactic class of the Section 5.2
  formulas (:mod:`repro.locality.alternation`);
* the **certificate size** in the locally-checkable-proofs model of Göös and
  Suomela: the asymptotic length of the certificates a prover needs,
  witnessed here by concrete proof-labeling schemes
  (:mod:`repro.locality.proof_labeling`).

:mod:`repro.locality.comparison` assembles both into the Figure 7 table.
"""

from repro.locality.alternation import alternation_class_of_formula, alternation_levels
from repro.locality.proof_labeling import (
    ProofLabelingScheme,
    spanning_tree_certificates,
    acyclicity_scheme,
    odd_scheme,
    three_colorability_scheme,
    eulerian_scheme,
    non_two_colorability_scheme,
    automorphism_scheme,
    all_schemes,
)
from repro.locality.comparison import figure7_rows, figure7_table

__all__ = [
    "alternation_class_of_formula",
    "alternation_levels",
    "ProofLabelingScheme",
    "spanning_tree_certificates",
    "acyclicity_scheme",
    "odd_scheme",
    "three_colorability_scheme",
    "eulerian_scheme",
    "non_two_colorability_scheme",
    "automorphism_scheme",
    "all_schemes",
    "figure7_rows",
    "figure7_table",
]
