"""The alternation-based locality measure (Section 2.5).

The number of quantifier alternations needed to define a property in the
local second-order hierarchy -- equivalently, by the generalized Fagin theorem,
its level in the locally polynomial / locally bounded hierarchy -- serves as a
measure of locality: purely local properties need no alternation, almost local
ones a single existential block, and so on.  Here the measure is computed
syntactically from the example formulas of Section 5.2.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.logic.examples import all_example_formulas
from repro.logic.fragments import LogicClass, classify_local_second_order
from repro.logic.syntax import Formula


def alternation_class_of_formula(formula: Formula) -> Optional[LogicClass]:
    """The hierarchy class of a formula (``None`` if it falls outside the local hierarchy)."""
    return classify_local_second_order(formula)


def alternation_levels() -> Dict[str, LogicClass]:
    """The alternation class of every Section 5.2 example formula, keyed by property name."""
    levels: Dict[str, LogicClass] = {}
    for name, formula in all_example_formulas().items():
        logic_class = classify_local_second_order(formula)
        if logic_class is not None:
            levels[name] = logic_class
    return levels


def locality_band(logic_class: Optional[LogicClass]) -> str:
    """The coarse Figure 7 band a hierarchy class falls into.

    ``purely local`` (level 0), ``almost local`` (level 1), ``intermediate``
    (levels 2-3), ``high`` (level 4 and above) and ``inherently global``
    (outside the hierarchy).
    """
    if logic_class is None:
        return "inherently global"
    if logic_class.level == 0:
        return "purely local"
    if logic_class.level == 1:
        return "almost local"
    if logic_class.level <= 3:
        return "intermediate"
    return "high"
