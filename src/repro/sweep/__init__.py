"""Sweep orchestrator: sharded parallel game evaluation over a scenario registry.

Every result in the paper is answered by sweeping one question -- *who wins
the certificate game?* -- across families of graphs, identifier assignments
and arbiters.  This package turns such sweeps into first-class objects on
top of :mod:`repro.engine`:

* :mod:`repro.sweep.scenarios` -- a registry where a sweep is *declared* as
  a cross-product of graph families x identifier schemes x arbiter specs x
  quantifier prefixes, with the paper's workloads (separations, locality,
  fagin) registered out of the box alongside new graph families (random
  regular, grids, trees, gadgets);
* :mod:`repro.sweep.executor` -- a sharded executor that keeps instances
  sharing a leaf evaluator on one shard, runs shards across a
  ``multiprocessing`` pool (with a deterministic in-process fallback), and
  merges fresh verdicts back;
* :mod:`repro.sweep.store` -- persistent verdict stores (SQLite or
  append-only JSONL) keyed by the content-addressed fingerprints of
  :mod:`repro.sweep.fingerprint`, making re-runs across sessions
  incremental;
* :mod:`repro.sweep.cli` -- ``python -m repro sweep <scenario> [--jobs N]
  [--store PATH] [--json OUT]``.
"""

from repro.sweep.fingerprint import (
    game_instance_key,
    instance_key,
    machine_fingerprint,
    structural_fingerprint,
)
from repro.sweep.store import (
    JsonlVerdictStore,
    MemoryVerdictStore,
    SQLiteVerdictStore,
    VerdictStore,
    open_store,
)
from repro.sweep.scenarios import (
    IDENTIFIER_SCHEMES,
    Scenario,
    all_scenarios,
    build_instances,
    fixed_certificate_space,
    get_scenario,
    instances_for_spec,
    register_scenario,
    scenario_names,
)
from repro.sweep.executor import (
    InstanceResult,
    SweepResult,
    evaluate_timed,
    evaluator_sharing_key,
    run_instances,
    run_scenario,
    shard_indices,
)

__all__ = [
    "game_instance_key",
    "instance_key",
    "machine_fingerprint",
    "structural_fingerprint",
    "JsonlVerdictStore",
    "MemoryVerdictStore",
    "SQLiteVerdictStore",
    "VerdictStore",
    "open_store",
    "IDENTIFIER_SCHEMES",
    "Scenario",
    "all_scenarios",
    "build_instances",
    "fixed_certificate_space",
    "get_scenario",
    "instances_for_spec",
    "register_scenario",
    "scenario_names",
    "InstanceResult",
    "SweepResult",
    "evaluate_timed",
    "evaluator_sharing_key",
    "run_instances",
    "run_scenario",
    "shard_indices",
]
