"""Content-addressed fingerprints for game instances (the store's key scheme).

The persistent verdict store must answer "have I solved *this exact game*
before?" across process boundaries, so its keys cannot involve object
identities or memory addresses.  Everything that determines a game value is
folded into a SHA-256 digest instead:

* the **machine** is fingerprinted structurally: class name plus every
  attribute, with functions reduced to their bytecode, constants, names and
  (recursively) closure cells and defaults.  Two separately constructed
  machines with the same code and parameters therefore share a fingerprint,
  while any change to the compute function's body, a captured constant
  (e.g. the number of colors) or a numeric parameter such as the radius
  produces a fresh key -- a changed machine is a cache miss, never a stale
  hit.  Source locations (file names, line numbers) are deliberately
  excluded so that moving code around does not invalidate the store.
* the **graph** contributes its nodes, edges and labels; the **identifier
  assignment** contributes the identifiers in node order.
* each **certificate space** contributes its *materialized* per-node
  candidate lists on the instance's ``(graph, ids)`` -- the semantics of the
  space on this instance, independent of how the space object is
  implemented.  The materialization is the same cached
  :class:`~repro.hierarchy.certificate_spaces.MaterializedSpace` the
  compiled engine core interns into its integer alphabet, so fingerprinting
  a swept instance reuses the coded form instead of re-running the
  candidate functions.
* the **prefix** contributes its quantifier string (e.g. ``"EA"``).

Bytecode is version-specific, so stores are effectively partitioned by
Python version for code-defined machines; re-running a sweep under a new
interpreter recomputes rather than risking a false hit.
"""

from __future__ import annotations

import hashlib
import json
from types import CodeType, FunctionType, MethodType
from typing import Iterable, List, Mapping, Sequence

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace, materialize_space
from repro.hierarchy.game import Quantifier

#: Recursion bound for structural fingerprinting (closures of closures ...).
_MAX_DEPTH = 12

_PRIMITIVES = (str, bytes, int, float, bool, complex, type(None))


def _code_tokens(code: CodeType, out: List[str], seen: set, depth: int) -> None:
    out.append(f"code:{code.co_argcount}:{code.co_kwonlyargcount}")
    out.append(code.co_code.hex())
    out.append(f"names:{code.co_names!r}")
    for const in code.co_consts:
        _tokens(const, out, seen, depth + 1)


def _function_tokens(func: FunctionType, out: List[str], seen: set, depth: int) -> None:
    out.append(f"function:{func.__qualname__.rsplit('.<locals>.', 1)[-1]}")
    _code_tokens(func.__code__, out, seen, depth)
    for cell in func.__closure__ or ():
        try:
            contents = cell.cell_contents
        except ValueError:  # empty cell (still being initialized)
            out.append("cell:empty")
            continue
        _tokens(contents, out, seen, depth + 1)
    for default in func.__defaults__ or ():
        _tokens(default, out, seen, depth + 1)


def _tokens(obj: object, out: List[str], seen: set, depth: int = 0) -> None:
    """Append canonical tokens describing *obj* to *out* (recursive)."""
    if depth > _MAX_DEPTH:
        out.append("max-depth")
        return
    if isinstance(obj, _PRIMITIVES):
        out.append(repr(obj))
        return
    if id(obj) in seen:
        out.append("cycle")
        return
    seen = seen | {id(obj)}
    if isinstance(obj, (list, tuple, frozenset, set)):
        items = list(obj)
        if isinstance(obj, (frozenset, set)):
            items = sorted(items, key=repr)
        out.append(f"{type(obj).__name__}[{len(items)}]")
        for item in items:
            _tokens(item, out, seen, depth + 1)
        return
    if isinstance(obj, Mapping):
        out.append(f"mapping[{len(obj)}]")
        for key in sorted(obj, key=repr):
            out.append(repr(key))
            _tokens(obj[key], out, seen, depth + 1)
        return
    if isinstance(obj, MethodType):
        out.append("method")
        _tokens(obj.__self__, out, seen, depth + 1)
        _function_tokens(obj.__func__, out, seen, depth)
        return
    if isinstance(obj, FunctionType):
        _function_tokens(obj, out, seen, depth)
        return
    if isinstance(obj, CodeType):
        _code_tokens(obj, out, seen, depth)
        return
    if callable(obj) and not hasattr(obj, "__dict__") and not hasattr(obj, "__slots__"):
        out.append(f"callable:{getattr(obj, '__qualname__', type(obj).__name__)}")
        return
    # Generic object: class name plus structural state.
    cls = type(obj)
    out.append(f"object:{cls.__module__}.{cls.__qualname__}")
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(cls, "__slots__"):
        state = {
            slot: getattr(obj, slot)
            for slot in cls.__slots__
            if hasattr(obj, slot)
        }
    if state:
        for key in sorted(state, key=repr):
            out.append(repr(key))
            _tokens(state[key], out, seen, depth + 1)
    elif type(obj).__repr__ is not object.__repr__:
        out.append(repr(obj))
    else:
        # No structural state and only the default repr, whose memory
        # address would poison the key with per-process noise; the class
        # name appended above already identifies the object.
        out.append("stateless")


def structural_fingerprint(obj: object) -> str:
    """A stable SHA-256 fingerprint of an object's structure and code."""
    out: List[str] = []
    _tokens(obj, out, set())
    digest = hashlib.sha256()
    for token in out:
        digest.update(token.encode("utf-8", "backslashreplace"))
        digest.update(b"\x00")
    return digest.hexdigest()


def machine_fingerprint(machine: object) -> str:
    """The fingerprint of an arbiter machine (see module docstring)."""
    return structural_fingerprint(machine)


def _node_token(node: Node) -> str:
    return repr(node)


def graph_payload(graph: LabeledGraph) -> dict:
    """The JSON-ready description of a labeled graph."""
    return {
        "nodes": [_node_token(u) for u in graph.nodes],
        "edges": sorted(sorted(_node_token(v) for v in edge) for edge in graph.edges),
        "labels": [graph.label(u) for u in graph.nodes],
    }


def instance_key(
    machine: object,
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    spaces: Sequence[CertificateSpace],
    prefix: Iterable[Quantifier],
) -> str:
    """The content-addressed store key of one game instance.

    Equal keys mean "same machine code and parameters, same graph, same
    identifiers, same per-node candidate certificates at every level, same
    quantifier prefix" -- everything the game value depends on.
    """
    payload = {
        "v": 1,
        "machine": machine_fingerprint(machine),
        "graph": graph_payload(graph),
        "ids": [ids[u] for u in graph.nodes],
        "spaces": [
            [list(candidates) for candidates in materialize_space(space, graph, ids).per_node]
            for space in spaces
        ],
        "prefix": "".join(q.value for q in prefix),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def game_instance_key(instance) -> str:
    """:func:`instance_key` for a :class:`repro.engine.batch.GameInstance`."""
    return instance_key(
        instance.machine, instance.graph, instance.ids, instance.spaces, instance.prefix
    )
