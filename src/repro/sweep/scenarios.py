"""The scenario registry: sweeps declared as cross-products, built on demand.

A *scenario* is a named, deterministic recipe producing a list of
:class:`~repro.engine.batch.GameInstance` questions -- typically the
cross-product of graph-family generators, identifier schemes and arbiter
specifications.  Scenarios are registered by name so that

* the CLI (``python -m repro sweep <scenario>``) can run them,
* the sharded executor can rebuild exactly the same instance list inside a
  worker process from nothing but the scenario name (machines close over
  plain Python functions and are not picklable; names are), and
* re-runs hit the persistent verdict store, because the recipe is
  deterministic.

The paper's standing workloads are registered out of the box -- the
separation games behind Figure 2 (``separations``), the Figure 7
proof-labeling verification games (``locality``), the compiled Fagin
arbiters of Section 7 (``fagin``) -- alongside new graph families: cycles
swept over identifier schemes (``coloring-cycles``), random regular graphs
(``random-regular``), grids and random trees (``grids-trees``), and the
small gadget graphs of Figures 1/3 plus the fooling pairs (``gadgets``).
``smoke`` is a fast cross-section of all of the above for CI.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.engine.batch import GameInstance
from repro.graphs import generators
from repro.graphs.identifiers import (
    cyclic_identifier_assignment,
    random_identifier_assignment,
    sequential_identifier_assignment,
    small_identifier_assignment,
)
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.hierarchy.certificate_spaces import CertificateSpace
from repro.hierarchy.game import Quantifier

ScenarioBuilder = Callable[[], List[GameInstance]]


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic recipe for a list of game instances."""

    name: str
    description: str
    build: ScenarioBuilder
    tags: Tuple[str, ...] = ()

    def instances(self) -> List[GameInstance]:
        return self.build()

    def __repr__(self) -> str:
        return f"Scenario({self.name!r})"


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str = "", tags: Sequence[str] = ()
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator registering a scenario builder under *name*.

    Re-registering a name replaces the previous scenario (so tests can
    shadow built-ins); the builder must be deterministic, since workers and
    warm re-runs rebuild the instance list from scratch.
    """

    def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
        doc = (builder.__doc__ or "").strip()
        _REGISTRY[name] = Scenario(
            name=name,
            description=description or (doc.splitlines()[0] if doc else ""),
            build=builder,
            tags=tuple(tags),
        )
        return builder

    return decorate


def get_scenario(name: str) -> Scenario:
    """The registered scenario called *name* (KeyError with a listing otherwise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def build_instances(name: str) -> List[GameInstance]:
    """Build the instance list of the named scenario."""
    return get_scenario(name).instances()


# ----------------------------------------------------------------------
# Cross-product helpers
# ----------------------------------------------------------------------
#: name -> (graph, identifier_radius) -> identifier assignment
IdentifierScheme = Callable[[LabeledGraph, int], Mapping[Node, str]]

IDENTIFIER_SCHEMES: Dict[str, IdentifierScheme] = {
    "small": lambda graph, radius: small_identifier_assignment(graph, radius),
    "sequential": lambda graph, radius: sequential_identifier_assignment(graph),
    "random": lambda graph, radius: random_identifier_assignment(
        graph, radius, rng=random.Random(7)
    ),
}


def instances_for_spec(
    spec,
    graphs: Iterable[Tuple[str, LabeledGraph]],
    id_schemes: Sequence[str] = ("small",),
) -> List[GameInstance]:
    """The cross-product of one arbiter spec with graphs and identifier schemes.

    *graphs* yields ``(tag, graph)`` pairs; every instance is named
    ``"<spec>|<tag>|<scheme>"``.  *spec* is an
    :class:`~repro.hierarchy.arbiters.ArbiterSpec` or anything with
    ``machine``, ``spaces``, ``identifier_radius`` and ``prefix()``.
    """
    instances: List[GameInstance] = []
    for tag, graph in graphs:
        for scheme in id_schemes:
            ids = IDENTIFIER_SCHEMES[scheme](graph, spec.identifier_radius)
            instances.append(
                GameInstance(
                    machine=spec.machine,
                    graph=graph,
                    ids=ids,
                    spaces=list(spec.spaces),
                    prefix=spec.prefix(),
                    name=f"{getattr(spec, 'name', 'spec')}|{tag}|{scheme}",
                )
            )
    return instances


def fixed_certificate_space(
    certificates: Mapping[Node, str], name: str = "fixed"
) -> CertificateSpace:
    """The one-assignment space pinning every node to a given certificate.

    With prefix ``[EXISTS]`` the resulting game is exactly "does the
    arbiter accept these certificates?", which lets certificate
    *verification* workloads (e.g. the Figure 7 proof-labeling schemes) ride
    the same sweep machinery as full games.
    """
    pinned = dict(certificates)
    return CertificateSpace(
        candidates=lambda graph, ids, node: (pinned.get(node, ""),),
        name=name,
    )


# ----------------------------------------------------------------------
# Graph families
# ----------------------------------------------------------------------
def family_cycles(sizes: Sequence[int]) -> List[Tuple[str, LabeledGraph]]:
    return [(f"cycle{n}", generators.cycle_graph(n)) for n in sizes]


def family_paths(sizes: Sequence[int]) -> List[Tuple[str, LabeledGraph]]:
    return [(f"path{n}", generators.path_graph(n)) for n in sizes]


def family_grids(shapes: Sequence[Tuple[int, int]]) -> List[Tuple[str, LabeledGraph]]:
    return [(f"grid{r}x{c}", generators.grid_graph(r, c)) for r, c in shapes]


def family_trees(sizes: Sequence[int], seeds: Sequence[int] = (0,)) -> List[Tuple[str, LabeledGraph]]:
    return [
        (f"tree{n}s{seed}", generators.random_tree(n, seed=seed))
        for n in sizes
        for seed in seeds
    ]


def family_random_regular(
    degree: int, sizes: Sequence[int], seeds: Sequence[int] = (0,)
) -> List[Tuple[str, LabeledGraph]]:
    return [
        (f"reg{degree}n{n}s{seed}", generators.random_regular_graph(degree, n, seed=seed))
        for n in sizes
        for seed in seeds
    ]


def family_gadgets() -> List[Tuple[str, LabeledGraph]]:
    """The small hand-built gadget graphs of Figures 1 and 3."""
    return [
        ("fig1-no", generators.figure1_no_instance()),
        ("fig1-yes", generators.figure1_yes_instance()),
        ("fig3", generators.figure3_graph().with_uniform_label("")),
        ("k4", generators.complete_graph(4)),
    ]


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
@register_scenario(
    "smoke",
    "Fast cross-section of every workload (CI smoke sweep).",
    tags=("ci", "fast"),
)
def _smoke_scenario() -> List[GameInstance]:
    from repro.hierarchy.arbiters import (
        eulerian_spec,
        three_colorability_spec,
        two_colorability_spec,
    )

    instances = instances_for_spec(
        three_colorability_spec(),
        family_cycles((4, 5)) + family_gadgets(),
        id_schemes=("small", "sequential"),
    )
    instances += instances_for_spec(
        two_colorability_spec(), family_cycles((5, 6)) + family_paths((4,))
    )
    instances += instances_for_spec(
        eulerian_spec(), family_cycles((6,)) + family_paths((5,))
    )
    return instances


@register_scenario(
    "separations",
    "The membership games behind Figure 2: fooling pairs, gadgets, odd/even cycles.",
    tags=("paper", "figure2"),
)
def _separations_scenario() -> List[GameInstance]:
    from repro.hierarchy.arbiters import three_colorability_spec, two_colorability_spec
    from repro.separations.lp_vs_nlp import fooling_pair

    two_col = two_colorability_spec()
    three_col = three_colorability_spec()

    instances = instances_for_spec(
        three_col, family_gadgets() + family_cycles((3, 4, 7)), id_schemes=("small",)
    )
    instances += instances_for_spec(
        two_col, family_cycles((5, 6, 9, 10)), id_schemes=("small", "sequential")
    )
    # The fooling pair of Proposition 24, with its *glued* identifier
    # assignment: corresponding nodes of the odd and doubled cycle carry the
    # same identifiers, yet only the doubled cycle is 2-colorable.
    for radius in (1, 2):
        pair = fooling_pair(radius)
        for tag, graph, ids in (
            (f"fooling-odd-r{radius}", pair.odd_cycle, pair.odd_ids),
            (f"fooling-doubled-r{radius}", pair.doubled_cycle, pair.doubled_ids),
        ):
            instances.append(
                GameInstance(
                    machine=two_col.machine,
                    graph=graph,
                    ids=ids,
                    spaces=list(two_col.spaces),
                    prefix=two_col.prefix(),
                    name=f"{two_col.name}|{tag}|glued",
                )
            )
    return instances


@register_scenario(
    "locality",
    "Figure 7 proof-labeling verification: honest certificates as one-move games.",
    tags=("paper", "figure7"),
)
def _locality_scenario() -> List[GameInstance]:
    from repro.locality.proof_labeling import all_schemes

    samples: Dict[str, List[Tuple[str, LabeledGraph]]] = {
        "eulerian": family_cycles((6, 10)),
        "3-colorable": family_cycles((6, 10)),
        "acyclic": family_trees((8,), seeds=(2,)),
        "odd": family_paths((5, 9)),
        "non-2-colorable": family_cycles((5, 9)),
        "automorphic": family_cycles((8,)),
    }
    instances: List[GameInstance] = []
    for scheme in all_schemes():
        for tag, graph in samples.get(scheme.property_name, []):
            ids = sequential_identifier_assignment(graph)
            certificates = scheme.prover(graph, ids)
            if certificates is None:
                continue
            instances.append(
                GameInstance(
                    machine=scheme.verifier,
                    graph=graph,
                    ids=ids,
                    spaces=[fixed_certificate_space(certificates, name=f"honest[{scheme.name}]")],
                    prefix=[Quantifier.EXISTS],
                    name=f"pls-{scheme.property_name}|{tag}|sequential",
                )
            )
    return instances


@register_scenario(
    "figure7-verification",
    "The verification games backing the Figure 7 table (drives figure7_rows).",
    tags=("paper", "figure7"),
)
def _figure7_verification_scenario() -> List[GameInstance]:
    from repro.locality.comparison import figure7_verification_instances

    return figure7_verification_instances()


@register_scenario(
    "fagin",
    "Compiled Fagin arbiters (Section 7) played on small graphs.",
    tags=("paper", "section7"),
)
def _fagin_scenario() -> List[GameInstance]:
    from repro.fagin import compile_sentence
    from repro.logic import examples

    three_col = compile_sentence(examples.three_colorable_formula()).spec("fagin-3col")
    all_sel = compile_sentence(examples.all_selected_formula()).spec("fagin-allsel")

    instances = instances_for_spec(
        three_col, family_cycles((3, 4)) + family_paths((3,)), id_schemes=("small",)
    )
    selected_graphs = [
        ("ones-path3", generators.path_graph(3, labels=["1", "1", "1"])),
        ("zero-path3", generators.path_graph(3, labels=["1", "0", "1"])),
    ]
    instances += instances_for_spec(all_sel, selected_graphs, id_schemes=("small",))
    return instances


@register_scenario(
    "coloring-cycles",
    "3- and 2-colorability games on cycles, swept over identifier schemes.",
    tags=("family", "benchmark"),
)
def _coloring_cycles_scenario() -> List[GameInstance]:
    from repro.hierarchy.arbiters import three_colorability_spec, two_colorability_spec

    three_col = three_colorability_spec()
    two_col = two_colorability_spec()
    # ``small`` identifiers collide inside the gather horizon, pushing the
    # engine onto its (much slower) simulation path -- one such instance is
    # kept as a deliberately heavy slice, the larger cycles use globally
    # unique schemes and stay on the direct path.
    instances = instances_for_spec(
        three_col, family_cycles((9,)), id_schemes=("small",)
    )
    instances += instances_for_spec(
        three_col,
        family_cycles((9, 12, 15, 18, 21, 24)),
        id_schemes=("sequential", "random"),
    )
    instances += instances_for_spec(
        two_col,
        family_cycles((10, 14, 18, 22)),
        id_schemes=("sequential", "random"),
    )
    # Periodic identifiers (Proposition 26 style): locally unique for the
    # game, but colliding inside the gather horizon, which forces the
    # engine's full simulation path -- a deliberately heavy slice.
    for length in (12, 16):
        graph = generators.cycle_graph(length)
        ids = cyclic_identifier_assignment(graph, period=4)
        instances.append(
            GameInstance(
                machine=two_col.machine,
                graph=graph,
                ids=ids,
                spaces=list(two_col.spaces),
                prefix=two_col.prefix(),
                name=f"{two_col.name}|cycle{length}|cyclic4",
            )
        )
    return instances


@register_scenario(
    "random-regular",
    "3-colorability games on connected random regular graphs.",
    tags=("family",),
)
def _random_regular_scenario() -> List[GameInstance]:
    from repro.hierarchy.arbiters import three_colorability_spec

    spec = three_colorability_spec()
    # One small-identifier instance exercises the simulation path; the rest
    # run with globally unique identifiers on the engine's direct path.
    instances = instances_for_spec(
        spec, family_random_regular(3, (8,), seeds=(0,)), id_schemes=("small",)
    )
    instances += instances_for_spec(
        spec,
        family_random_regular(3, (8, 10, 12), seeds=(0, 1))
        + family_random_regular(4, (9, 11), seeds=(0,)),
        id_schemes=("sequential", "random"),
    )
    return instances


@register_scenario(
    "grids-trees",
    "Eulerian / colorability games on grids and random trees.",
    tags=("family",),
)
def _grids_trees_scenario() -> List[GameInstance]:
    from repro.hierarchy.arbiters import (
        eulerian_spec,
        three_colorability_spec,
        two_colorability_spec,
    )

    grids = family_grids(((2, 3), (3, 3), (2, 5)))
    trees = family_trees((7, 10, 13), seeds=(0, 3))
    instances = instances_for_spec(two_colorability_spec(), grids + trees)
    instances += instances_for_spec(three_colorability_spec(), grids, id_schemes=("sequential",))
    instances += instances_for_spec(eulerian_spec(), grids + trees)
    return instances


# ----------------------------------------------------------------------
# Dynamic scenarios: a base game plus a seeded mutation trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicTrace:
    """A dynamic workload: one base game and the deltas replayed over it."""

    base: GameInstance
    deltas: Tuple  # Tuple[repro.engine.dynamic.Delta, ...]

    def __repr__(self) -> str:
        return f"DynamicTrace({self.base.name!r}, steps={len(self.deltas)})"


DynamicBuilder = Callable[[], DynamicTrace]


@dataclass(frozen=True)
class DynamicScenario:
    """A named, deterministic recipe for a :class:`DynamicTrace`.

    Parallel to :class:`Scenario` but producing one evolving game instead
    of a static instance list; the ``dynamic`` CLI subcommand replays the
    trace through :class:`~repro.engine.dynamic.MutableInstance` and can
    differentially verify every step against a full recompute.
    """

    name: str
    description: str
    build: DynamicBuilder
    tags: Tuple[str, ...] = ()

    def trace(self) -> DynamicTrace:
        return self.build()

    def __repr__(self) -> str:
        return f"DynamicScenario({self.name!r})"


_DYNAMIC_REGISTRY: Dict[str, DynamicScenario] = {}


def register_dynamic_scenario(
    name: str, description: str = "", tags: Sequence[str] = ()
) -> Callable[[DynamicBuilder], DynamicBuilder]:
    """Decorator registering a dynamic scenario builder under *name*."""

    def decorate(builder: DynamicBuilder) -> DynamicBuilder:
        doc = (builder.__doc__ or "").strip()
        _DYNAMIC_REGISTRY[name] = DynamicScenario(
            name=name,
            description=description or (doc.splitlines()[0] if doc else ""),
            build=builder,
            tags=tuple(tags),
        )
        return builder

    return decorate


def get_dynamic_scenario(name: str) -> DynamicScenario:
    """The registered dynamic scenario called *name*."""
    try:
        return _DYNAMIC_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_DYNAMIC_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown dynamic scenario {name!r}; registered: {known}"
        ) from None


def dynamic_scenario_names() -> List[str]:
    """All registered dynamic scenario names, sorted."""
    return sorted(_DYNAMIC_REGISTRY)


@register_dynamic_scenario(
    "dynamic-smoke",
    "Short mixed trace on a 2-colorability cycle (CI differential smoke).",
    tags=("ci", "fast", "dynamic"),
)
def _dynamic_smoke() -> DynamicTrace:
    from repro.engine.dynamic import random_trace
    from repro.hierarchy.arbiters import two_colorability_spec

    spec = two_colorability_spec()
    graph = generators.cycle_graph(12)
    ids = sequential_identifier_assignment(graph)
    base = GameInstance(
        machine=spec.machine,
        graph=graph,
        ids=ids,
        spaces=list(spec.spaces),
        prefix=spec.prefix(),
        name=f"{spec.name}|cycle12|sequential",
    )
    deltas = random_trace(graph, seed=11, steps=8, kinds=("label", "edge"), ids=ids)
    return DynamicTrace(base=base, deltas=tuple(deltas))


@register_dynamic_scenario(
    "dynamic-cycles",
    "Mostly-stable label churn on a cyclic-identifier cycle (the repair showcase).",
    tags=("dynamic", "benchmark"),
)
def _dynamic_cycles() -> DynamicTrace:
    from repro.engine.dynamic import random_trace
    from repro.hierarchy.arbiters import two_colorability_spec

    spec = two_colorability_spec()
    graph = generators.cycle_graph(32)
    # Periodic identifiers collide inside the gather horizon, forcing the
    # memo-heavy simulation path -- exactly where repair beats recompute.
    ids = cyclic_identifier_assignment(graph, period=4)
    base = GameInstance(
        machine=spec.machine,
        graph=graph,
        ids=ids,
        spaces=list(spec.spaces),
        prefix=spec.prefix(),
        name=f"{spec.name}|cycle32|cyclic4",
    )
    hot = list(graph.nodes)[:3]
    deltas = random_trace(
        graph, seed=3, steps=10, kinds=("label",), ids=ids, hot_nodes=hot
    )
    return DynamicTrace(base=base, deltas=tuple(deltas))


@register_dynamic_scenario(
    "dynamic-trees",
    "Edge rewiring and label churn on a random tree (3-colorability).",
    tags=("dynamic",),
)
def _dynamic_trees() -> DynamicTrace:
    from repro.engine.dynamic import random_trace
    from repro.hierarchy.arbiters import three_colorability_spec

    spec = three_colorability_spec()
    graph = generators.random_tree(10, seed=5)
    ids = sequential_identifier_assignment(graph)
    base = GameInstance(
        machine=spec.machine,
        graph=graph,
        ids=ids,
        spaces=list(spec.spaces),
        prefix=spec.prefix(),
        name=f"{spec.name}|tree10|sequential",
    )
    deltas = random_trace(graph, seed=23, steps=10, kinds=("label", "edge"), ids=ids)
    return DynamicTrace(base=base, deltas=tuple(deltas))


@register_dynamic_scenario(
    "dynamic-id-churn",
    "Identifier reassignment on a grid (Eulerian decider) plus label flips.",
    tags=("dynamic",),
)
def _dynamic_id_churn() -> DynamicTrace:
    from repro.engine.dynamic import random_trace
    from repro.hierarchy.arbiters import eulerian_spec

    spec = eulerian_spec()
    graph = generators.grid_graph(2, 4)
    ids = sequential_identifier_assignment(graph)
    base = GameInstance(
        machine=spec.machine,
        graph=graph,
        ids=ids,
        spaces=list(spec.spaces),
        prefix=spec.prefix(),
        name=f"{spec.name}|grid2x4|sequential",
    )
    pool = [format(value, "b") for value in range(16, 32)]
    deltas = random_trace(
        graph,
        seed=17,
        steps=10,
        kinds=("label", "id"),
        ids=ids,
        id_pool=tuple(pool),
    )
    return DynamicTrace(base=base, deltas=tuple(deltas))
