"""Persistent verdict stores: re-running a sweep across sessions is incremental.

A verdict store maps content-addressed instance keys
(:func:`repro.sweep.fingerprint.instance_key`) to the boolean game value,
plus a little provenance (instance name, solve time).  Because the key
digests everything the game value depends on, a store entry can be trusted
unconditionally: a changed machine, graph, identifier assignment,
certificate space or prefix changes the key and therefore misses.

Three interchangeable backends:

* :class:`MemoryVerdictStore` -- a dictionary; the in-process default.
* :class:`SQLiteVerdictStore` -- one table, keyed by digest; the default
  on-disk backend (random access, safe concurrent readers).
* :class:`JsonlVerdictStore` -- append-only JSON lines; trivially
  inspectable and mergeable with ``cat``.

:func:`open_store` picks a backend from the path: ``.jsonl`` / ``.ndjson``
suffixes select the append-only file, anything else (including
``:memory:``) selects SQLite.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Dict, Iterable, Iterator, Optional, Tuple

#: A stored verdict: (verdict, instance name, cold solve seconds).
StoredVerdict = Tuple[bool, str, float]


class VerdictStore:
    """Interface shared by all backends (also usable as a context manager)."""

    def get(self, key: str) -> Optional[bool]:
        raise NotImplementedError

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        raise NotImplementedError

    def put_many(self, records: Iterable[Tuple[str, bool, str, float]]) -> None:
        for key, verdict, name, seconds in records:
            self.put(key, verdict, name, seconds)

    def __len__(self) -> int:
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryVerdictStore(VerdictStore):
    """A plain in-process dictionary (no persistence)."""

    def __init__(self) -> None:
        self._data: Dict[str, StoredVerdict] = {}

    def get(self, key: str) -> Optional[bool]:
        record = self._data.get(key)
        return None if record is None else record[0]

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        self._data[key] = (bool(verdict), name, seconds)

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        return iter(self._data.items())


class SQLiteVerdictStore(VerdictStore):
    """Verdicts in a single-table SQLite database."""

    def __init__(self, path: str) -> None:
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._connection = sqlite3.connect(path)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS verdicts ("
            "  key TEXT PRIMARY KEY,"
            "  verdict INTEGER NOT NULL,"
            "  name TEXT NOT NULL DEFAULT '',"
            "  seconds REAL NOT NULL DEFAULT 0,"
            "  created REAL NOT NULL"
            ")"
        )
        self._connection.commit()

    def get(self, key: str) -> Optional[bool]:
        row = self._connection.execute(
            "SELECT verdict FROM verdicts WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else bool(row[0])

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO verdicts (key, verdict, name, seconds, created)"
            " VALUES (?, ?, ?, ?, ?)",
            (key, int(bool(verdict)), name, seconds, time.time()),
        )
        self._connection.commit()

    def put_many(self, records: Iterable[Tuple[str, bool, str, float]]) -> None:
        now = time.time()
        self._connection.executemany(
            "INSERT OR REPLACE INTO verdicts (key, verdict, name, seconds, created)"
            " VALUES (?, ?, ?, ?, ?)",
            [
                (key, int(bool(verdict)), name, seconds, now)
                for key, verdict, name, seconds in records
            ],
        )
        self._connection.commit()

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM verdicts").fetchone()
        return int(count)

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        for key, verdict, name, seconds in self._connection.execute(
            "SELECT key, verdict, name, seconds FROM verdicts"
        ):
            yield key, (bool(verdict), name, seconds)

    def close(self) -> None:
        self._connection.close()


class JsonlVerdictStore(VerdictStore):
    """Append-only JSON-lines verdicts (one ``{"key": ..., "verdict": ...}`` per line).

    The whole file is read once at open; later lines win on duplicate keys,
    so two stores can be merged by concatenation.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._data: Dict[str, StoredVerdict] = {}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    self._data[record["key"]] = (
                        bool(record["verdict"]),
                        record.get("name", ""),
                        float(record.get("seconds", 0.0)),
                    )
        self._handle = open(path, "a", encoding="utf-8")

    def get(self, key: str) -> Optional[bool]:
        record = self._data.get(key)
        return None if record is None else record[0]

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        self._data[key] = (bool(verdict), name, seconds)
        self._handle.write(
            json.dumps(
                {"key": key, "verdict": bool(verdict), "name": name, "seconds": seconds},
                sort_keys=True,
            )
            + "\n"
        )
        self._handle.flush()

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        return iter(self._data.items())

    def close(self) -> None:
        self._handle.close()


def open_store(path: Optional[str]) -> VerdictStore:
    """Open (creating if necessary) the verdict store at *path*.

    ``None`` yields a fresh :class:`MemoryVerdictStore`; a path ending in
    ``.jsonl`` or ``.ndjson`` yields the append-only file backend; anything
    else (including ``:memory:``) yields SQLite.
    """
    if path is None:
        return MemoryVerdictStore()
    if path != ":memory:" and os.path.splitext(path)[1] in (".jsonl", ".ndjson"):
        return JsonlVerdictStore(path)
    return SQLiteVerdictStore(path)
