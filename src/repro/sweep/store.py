"""Persistent verdict stores: re-running a sweep across sessions is incremental.

A verdict store maps content-addressed instance keys
(:func:`repro.sweep.fingerprint.instance_key`) to the boolean game value,
plus a little provenance (instance name, solve time).  Because the key
digests everything the game value depends on, a store entry can be trusted
unconditionally: a changed machine, graph, identifier assignment,
certificate space or prefix changes the key and therefore misses.

Three interchangeable backends:

* :class:`MemoryVerdictStore` -- a dictionary; the in-process default.
* :class:`SQLiteVerdictStore` -- one table, keyed by digest; the default
  on-disk backend.  Opened in WAL mode with a busy timeout and an internal
  lock, so one store object can be shared between the threads of a serving
  daemon and concurrent processes can read while one writes.
* :class:`JsonlVerdictStore` -- append-only JSON lines; trivially
  inspectable and mergeable with ``cat``.

:func:`open_store` picks a backend from the path: an explicit scheme
prefix (``sqlite://``, ``jsonl://``, ``memory://``) always wins; without
one, ``.jsonl`` / ``.ndjson`` suffixes select the append-only file and
anything else (including ``:memory:``) selects SQLite.  Parent directories
of on-disk stores are created on open, so a daemon can be pointed at a
fresh state directory without a bootstrap step.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: A stored verdict: (verdict, instance name, cold solve seconds).
StoredVerdict = Tuple[bool, str, float]

#: One append-log record: ``(log_seq, kind, record)`` where *kind* is
#: ``"verdict"`` (record: key/verdict/name/seconds) or ``"journal"``
#: (record: session/seq/entry).  The sequence is monotonic per store.
LogEntry = Tuple[int, str, Dict]


class VerdictStore:
    """Interface shared by all backends (also usable as a context manager)."""

    def get(self, key: str) -> Optional[bool]:
        raise NotImplementedError

    def get_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        """Verdicts for every *known* key among *keys* (missing keys absent).

        The default implementation loops over :meth:`get`; backends with a
        cheaper bulk path (SQLite) override it.
        """
        found: Dict[str, bool] = {}
        for key in keys:
            verdict = self.get(key)
            if verdict is not None:
                found[key] = verdict
        return found

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        raise NotImplementedError

    def put_many(self, records: Iterable[Tuple[str, bool, str, float]]) -> None:
        for key, verdict, name, seconds in records:
            self.put(key, verdict, name, seconds)

    # ------------------------------------------------------------------
    # Node verdicts (the canonical ball cache's persistence tier)
    # ------------------------------------------------------------------
    def get_node(self, key: str) -> Optional[bool]:
        """A persisted canonical node verdict (``None`` when unknown).

        Node verdicts are keyed by the canonical ball signature
        (:mod:`repro.engine.canonical`): one entry answers the same local
        neighborhood wherever it reappears -- other nodes, other graphs,
        other sessions.  Backends without a node table may keep these
        defaults (non-persistent, always miss).
        """
        return None

    def get_node_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        found: Dict[str, bool] = {}
        for key in keys:
            verdict = self.get_node(key)
            if verdict is not None:
                found[key] = verdict
        return found

    def put_node(self, key: str, verdict: bool) -> None:
        self.put_node_many([(key, verdict)])

    def put_node_many(self, records: Iterable[Tuple[str, bool]]) -> None:
        """Persist canonical node verdicts (no-op without a node table)."""

    def node_count(self) -> int:
        """How many canonical node verdicts are persisted."""
        return 0

    # ------------------------------------------------------------------
    # Session journal (the dynamic sessions' write-ahead mutation log)
    # ------------------------------------------------------------------
    def journal_append(self, session: str, seq: int, entry: Dict) -> None:
        """Persist journal *entry* number *seq* of dynamic session *session*.

        Entry 0 records the session's opening address; entry ``n`` records
        the ``n``-th applied delta batch in wire form.  Replaying entries in
        sequence rebuilds the session's exact mutable state after a crash
        (:meth:`repro.service.server.VerdictService.recover_sessions`).
        Backends without journal support keep these no-op defaults --
        sessions on such stores simply do not survive restarts.
        """

    def journal_entries(self, session: str) -> List[Tuple[int, Dict]]:
        """All journaled ``(seq, entry)`` pairs of *session*, in order."""
        return []

    def journal_sessions(self) -> List[str]:
        """Names of every session with at least one journal entry."""
        return []

    def journal_clear(self, session: str) -> None:
        """Drop all journal entries of *session* (it was closed cleanly)."""

    # ------------------------------------------------------------------
    # Replicated append log (pool workers catch up by replaying it)
    # ------------------------------------------------------------------
    def last_seq(self) -> int:
        """The monotonic ``log_seq`` of the newest append (0 when empty).

        Every verdict ``put`` and every ``journal_append`` is also recorded
        in an append-only log with a store-wide monotonic sequence number.
        A serving replica remembers the last sequence it has seen; on
        (re)join it replays :meth:`entries_since` that sequence to warm its
        caches and state before accepting traffic -- the pod-style
        accountable-log catch-up from the paper's related work.  Backends
        created before the log existed start at 0: only appends made after
        migration are replayable.
        """
        return 0

    def entries_since(
        self, seq: int, limit: Optional[int] = None
    ) -> Iterator[LogEntry]:
        """Stream ``(log_seq, kind, record)`` appends newer than *seq*.

        Entries come back in sequence order; *limit* bounds how many are
        yielded.  ``kind`` is ``"verdict"`` (record keys: ``key``,
        ``verdict``, ``name``, ``seconds``) or ``"journal"`` (record keys:
        ``session``, ``seq``, ``entry``).
        """
        return iter(())

    def __len__(self) -> int:
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryVerdictStore(VerdictStore):
    """A plain in-process dictionary (no persistence)."""

    def __init__(self) -> None:
        self._data: Dict[str, StoredVerdict] = {}
        self._nodes: Dict[str, bool] = {}
        self._journal: Dict[str, Dict[int, Dict]] = {}
        self._log: List[LogEntry] = []
        self._seq = 0

    def _log_append(self, kind: str, record: Dict) -> None:
        self._seq += 1
        self._log.append((self._seq, kind, record))

    def get(self, key: str) -> Optional[bool]:
        record = self._data.get(key)
        return None if record is None else record[0]

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        self._data[key] = (bool(verdict), name, seconds)
        self._log_append(
            "verdict",
            {"key": key, "verdict": bool(verdict), "name": name, "seconds": seconds},
        )

    def get_node(self, key: str) -> Optional[bool]:
        return self._nodes.get(key)

    def put_node_many(self, records: Iterable[Tuple[str, bool]]) -> None:
        for key, verdict in records:
            self._nodes[key] = bool(verdict)

    def node_count(self) -> int:
        return len(self._nodes)

    def journal_append(self, session: str, seq: int, entry: Dict) -> None:
        self._journal.setdefault(session, {})[int(seq)] = dict(entry)
        self._log_append(
            "journal", {"session": session, "seq": int(seq), "entry": dict(entry)}
        )

    def journal_entries(self, session: str) -> List[Tuple[int, Dict]]:
        entries = self._journal.get(session, {})
        return [(seq, dict(entries[seq])) for seq in sorted(entries)]

    def journal_sessions(self) -> List[str]:
        return sorted(self._journal)

    def journal_clear(self, session: str) -> None:
        self._journal.pop(session, None)

    def last_seq(self) -> int:
        return self._seq

    def entries_since(
        self, seq: int, limit: Optional[int] = None
    ) -> Iterator[LogEntry]:
        newer = [entry for entry in self._log if entry[0] > seq]
        if limit is not None:
            newer = newer[:limit]
        return iter(newer)

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        return iter(self._data.items())


class SQLiteVerdictStore(VerdictStore):
    """Verdicts in a single-table SQLite database.

    File-backed databases run in WAL mode (readers never block the writer
    and vice versa) with ``busy_timeout`` so a briefly locked database is
    waited out instead of surfacing ``database is locked``.  Connections
    are opened with ``check_same_thread=False`` and every statement goes
    through an internal lock, so one store object is safe to share between
    the threads of an asyncio daemon (event loop + worker pool).

    File-backed stores keep *two* connections: writes go through one, the
    hot read paths (``get`` / ``get_many`` / ``last_seq`` /
    ``entries_since``) through another with its own lock.  WAL already
    guarantees readers never wait on the database's writer; the second
    connection extends that to this process -- a reader never waits out a
    *sibling process's* commit behind our own writer's busy-timeout spin,
    which matters when several pool workers share one store file.
    """

    #: How many keys one bulk ``SELECT ... IN (...)`` carries at most
    #: (SQLite's default variable limit is 999).
    GET_MANY_CHUNK = 500

    def __init__(self, path: str, busy_timeout_ms: int = 5000) -> None:
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        if path != ":memory:":
            # WAL persists in the database file; in-memory databases only
            # support the default journal and would ignore the pragma.
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS verdicts ("
            "  key TEXT PRIMARY KEY,"
            "  verdict INTEGER NOT NULL,"
            "  name TEXT NOT NULL DEFAULT '',"
            "  seconds REAL NOT NULL DEFAULT 0,"
            "  created REAL NOT NULL"
            ")"
        )
        # Canonical node verdicts (repro.engine.canonical): one row per
        # distinct (ball signature, certificate restriction).  Created
        # alongside the main table, so pre-existing stores migrate on open.
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS node_verdicts ("
            "  key TEXT PRIMARY KEY,"
            "  verdict INTEGER NOT NULL,"
            "  created REAL NOT NULL"
            ")"
        )
        # The dynamic sessions' write-ahead mutation journal: one row per
        # (session, batch) with the batch in wire-JSON form.  Replayed by
        # the daemon's recover_sessions() after a crash.
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS session_journal ("
            "  session TEXT NOT NULL,"
            "  seq INTEGER NOT NULL,"
            "  entry TEXT NOT NULL,"
            "  created REAL NOT NULL,"
            "  PRIMARY KEY (session, seq)"
            ")"
        )
        # The replicated append log: every verdict put and journal append
        # also lands here under an AUTOINCREMENT sequence, so the numbers
        # are monotonic and never reused even with several writer processes
        # on one database.  Pool workers catch up by replaying entries_since
        # their last-seen sequence (pre-existing stores migrate on open with
        # an empty log; only appends from then on are replayable).
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS verdict_log ("
            "  seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            "  kind TEXT NOT NULL,"
            "  record TEXT NOT NULL,"
            "  created REAL NOT NULL"
            ")"
        )
        self._connection.commit()
        # The read connection opens after the schema is committed, so it
        # always sees the migrated tables.  In-memory databases are private
        # per connection: there the "read connection" is the writer itself.
        if path != ":memory:":
            self._read_lock: threading.RLock = threading.RLock()
            self._read_connection = sqlite3.connect(path, check_same_thread=False)
            self._read_connection.execute(
                f"PRAGMA busy_timeout = {int(busy_timeout_ms)}"
            )
        else:
            self._read_lock = self._lock
            self._read_connection = self._connection

    def get(self, key: str) -> Optional[bool]:
        with self._read_lock:
            row = self._read_connection.execute(
                "SELECT verdict FROM verdicts WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else bool(row[0])

    def get_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        key_list = list(keys)
        found: Dict[str, bool] = {}
        with self._read_lock:
            for start in range(0, len(key_list), self.GET_MANY_CHUNK):
                chunk = key_list[start : start + self.GET_MANY_CHUNK]
                placeholders = ",".join("?" * len(chunk))
                for key, verdict in self._read_connection.execute(
                    f"SELECT key, verdict FROM verdicts WHERE key IN ({placeholders})",
                    chunk,
                ):
                    found[key] = bool(verdict)
        return found

    def _log_insert(self, kind: str, records: Sequence[Dict], now: float) -> None:
        # Caller holds the lock and commits; one log row per append keeps
        # the verdict/journal tables and the log in a single transaction.
        self._connection.executemany(
            "INSERT INTO verdict_log (kind, record, created) VALUES (?, ?, ?)",
            [(kind, json.dumps(record, sort_keys=True), now) for record in records],
        )

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        now = time.time()
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO verdicts (key, verdict, name, seconds, created)"
                " VALUES (?, ?, ?, ?, ?)",
                (key, int(bool(verdict)), name, seconds, now),
            )
            self._log_insert(
                "verdict",
                [{"key": key, "verdict": bool(verdict), "name": name, "seconds": seconds}],
                now,
            )
            self._connection.commit()

    def put_many(self, records: Iterable[Tuple[str, bool, str, float]]) -> None:
        now = time.time()
        rows = list(records)
        with self._lock:
            self._connection.executemany(
                "INSERT OR REPLACE INTO verdicts (key, verdict, name, seconds, created)"
                " VALUES (?, ?, ?, ?, ?)",
                [
                    (key, int(bool(verdict)), name, seconds, now)
                    for key, verdict, name, seconds in rows
                ],
            )
            self._log_insert(
                "verdict",
                [
                    {"key": key, "verdict": bool(verdict), "name": name, "seconds": seconds}
                    for key, verdict, name, seconds in rows
                ],
                now,
            )
            self._connection.commit()

    def get_node(self, key: str) -> Optional[bool]:
        with self._read_lock:
            row = self._read_connection.execute(
                "SELECT verdict FROM node_verdicts WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else bool(row[0])

    def get_node_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        key_list = list(keys)
        found: Dict[str, bool] = {}
        with self._read_lock:
            for start in range(0, len(key_list), self.GET_MANY_CHUNK):
                chunk = key_list[start : start + self.GET_MANY_CHUNK]
                placeholders = ",".join("?" * len(chunk))
                for key, verdict in self._read_connection.execute(
                    f"SELECT key, verdict FROM node_verdicts WHERE key IN ({placeholders})",
                    chunk,
                ):
                    found[key] = bool(verdict)
        return found

    def put_node_many(self, records: Iterable[Tuple[str, bool]]) -> None:
        now = time.time()
        rows = [(key, int(bool(verdict)), now) for key, verdict in records]
        if not rows:
            return
        with self._lock:
            self._connection.executemany(
                "INSERT OR REPLACE INTO node_verdicts (key, verdict, created)"
                " VALUES (?, ?, ?)",
                rows,
            )
            self._connection.commit()

    def node_count(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM node_verdicts"
            ).fetchone()
        return int(count)

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM verdicts"
            ).fetchone()
        return int(count)

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        with self._lock:
            rows: List[Tuple[str, int, str, float]] = self._connection.execute(
                "SELECT key, verdict, name, seconds FROM verdicts"
            ).fetchall()
        for key, verdict, name, seconds in rows:
            yield key, (bool(verdict), name, seconds)

    def journal_append(self, session: str, seq: int, entry: Dict) -> None:
        now = time.time()
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO session_journal (session, seq, entry, created)"
                " VALUES (?, ?, ?, ?)",
                (session, int(seq), json.dumps(entry, sort_keys=True), now),
            )
            self._log_insert(
                "journal",
                [{"session": session, "seq": int(seq), "entry": entry}],
                now,
            )
            self._connection.commit()

    def journal_entries(self, session: str) -> List[Tuple[int, Dict]]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT seq, entry FROM session_journal WHERE session = ? ORDER BY seq",
                (session,),
            ).fetchall()
        return [(int(seq), json.loads(entry)) for seq, entry in rows]

    def journal_sessions(self) -> List[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT DISTINCT session FROM session_journal ORDER BY session"
            ).fetchall()
        return [row[0] for row in rows]

    def journal_clear(self, session: str) -> None:
        with self._lock:
            self._connection.execute(
                "DELETE FROM session_journal WHERE session = ?", (session,)
            )
            self._connection.commit()

    def last_seq(self) -> int:
        with self._read_lock:
            (seq,) = self._read_connection.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM verdict_log"
            ).fetchone()
        return int(seq)

    def entries_since(
        self, seq: int, limit: Optional[int] = None
    ) -> Iterator[LogEntry]:
        # Chunked cursor reads: the lock is only held per chunk, so a long
        # catch-up replay never starves the writer, and WAL readers see a
        # consistent prefix of the log regardless of concurrent appends.
        cursor = int(seq)
        remaining = limit
        while remaining is None or remaining > 0:
            take = self.GET_MANY_CHUNK
            if remaining is not None:
                take = min(take, remaining)
            with self._read_lock:
                rows = self._read_connection.execute(
                    "SELECT seq, kind, record FROM verdict_log"
                    " WHERE seq > ? ORDER BY seq LIMIT ?",
                    (cursor, take),
                ).fetchall()
            if not rows:
                return
            for row_seq, kind, record in rows:
                yield int(row_seq), str(kind), json.loads(record)
            cursor = int(rows[-1][0])
            if remaining is not None:
                remaining -= len(rows)

    def journal_mode(self) -> str:
        """The active journal mode (``"wal"`` for file-backed stores)."""
        with self._lock:
            (mode,) = self._connection.execute("PRAGMA journal_mode").fetchone()
        return str(mode).lower()

    def close(self) -> None:
        if self._read_connection is not self._connection:
            with self._read_lock:
                self._read_connection.close()
        with self._lock:
            self._connection.close()


class JsonlVerdictStore(VerdictStore):
    """Append-only JSON-lines verdicts (one ``{"key": ..., "verdict": ...}`` per line).

    The whole file is read once at open; later lines win on duplicate keys,
    so two stores can be merged by concatenation.

    Crash safety: a process killed mid-append leaves a truncated final
    line.  Opening detects that (the last line fails to parse *and* has no
    trailing newline), keeps every complete record, and truncates the file
    back to the last good byte -- ``truncated_bytes`` reports how much was
    dropped.  A malformed line in the *middle* of the file is real
    corruption, not a crash artifact, and still raises.  ``close()``
    flushes and ``fsync``\\ s, so a cleanly closed store is durable.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._data: Dict[str, StoredVerdict] = {}
        self._nodes: Dict[str, bool] = {}
        self._journal: Dict[str, Dict[int, Dict]] = {}
        # The file itself is the append log; sequence numbers are rebuilt
        # from line order at open (torn tails are truncated first, so a
        # crashed writer never leaves a half-assigned sequence).
        self._log: List[LogEntry] = []
        self._seq = 0
        #: Bytes dropped from a truncated trailing line at open (0 = clean).
        self.truncated_bytes = 0
        if os.path.exists(path):
            self._load(path)
        self._handle = open(path, "a", encoding="utf-8")

    def _load(self, path: str) -> None:
        with open(path, "rb") as handle:
            raw = handle.read()
        position = 0
        good_end = 0
        while position < len(raw):
            newline = raw.find(b"\n", position)
            end = len(raw) if newline < 0 else newline + 1
            line = raw[position:end].strip()
            if line:
                try:
                    self._apply_line(json.loads(line.decode("utf-8")))
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    if newline < 0:
                        # An unterminated, unparsable final line: the
                        # signature of a crash mid-append.  Drop it.
                        break
                    raise
            position = end
            good_end = end
        self.truncated_bytes = len(raw) - good_end
        if self.truncated_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(good_end)

    def _apply_line(self, record: Dict) -> None:
        # Canonical node verdicts and session-journal entries ride in the
        # same file as kind-tagged lines; untagged lines (including every
        # pre-node-table store) are instance verdicts.
        kind = record.get("kind")
        if kind == "node":
            self._nodes[record["key"]] = bool(record["verdict"])
        elif kind == "journal":
            session_entries = self._journal.setdefault(record["session"], {})
            session_entries[int(record["seq"])] = dict(record["entry"])
            self._log_append(
                "journal",
                {
                    "session": record["session"],
                    "seq": int(record["seq"]),
                    "entry": dict(record["entry"]),
                },
            )
        elif kind == "journal-clear":
            self._journal.pop(record["session"], None)
        else:
            stored = (
                bool(record["verdict"]),
                record.get("name", ""),
                float(record.get("seconds", 0.0)),
            )
            self._data[record["key"]] = stored
            self._log_append(
                "verdict",
                {
                    "key": record["key"],
                    "verdict": stored[0],
                    "name": stored[1],
                    "seconds": stored[2],
                },
            )

    def _log_append(self, kind: str, record: Dict) -> None:
        self._seq += 1
        self._log.append((self._seq, kind, record))

    def get(self, key: str) -> Optional[bool]:
        with self._lock:
            record = self._data.get(key)
        return None if record is None else record[0]

    def put(self, key: str, verdict: bool, name: str = "", seconds: float = 0.0) -> None:
        with self._lock:
            self._data[key] = (bool(verdict), name, seconds)
            self._log_append(
                "verdict",
                {"key": key, "verdict": bool(verdict), "name": name, "seconds": seconds},
            )
            self._handle.write(
                json.dumps(
                    {"key": key, "verdict": bool(verdict), "name": name, "seconds": seconds},
                    sort_keys=True,
                )
                + "\n"
            )
            self._handle.flush()

    def get_node(self, key: str) -> Optional[bool]:
        with self._lock:
            return self._nodes.get(key)

    def put_node_many(self, records: Iterable[Tuple[str, bool]]) -> None:
        with self._lock:
            wrote = False
            for key, verdict in records:
                self._nodes[key] = bool(verdict)
                self._handle.write(
                    json.dumps(
                        {"kind": "node", "key": key, "verdict": bool(verdict)},
                        sort_keys=True,
                    )
                    + "\n"
                )
                wrote = True
            if wrote:
                self._handle.flush()

    def node_count(self) -> int:
        return len(self._nodes)

    def journal_append(self, session: str, seq: int, entry: Dict) -> None:
        with self._lock:
            self._journal.setdefault(session, {})[int(seq)] = dict(entry)
            self._log_append(
                "journal", {"session": session, "seq": int(seq), "entry": dict(entry)}
            )
            self._handle.write(
                json.dumps(
                    {"kind": "journal", "session": session, "seq": int(seq), "entry": entry},
                    sort_keys=True,
                )
                + "\n"
            )
            self._handle.flush()

    def journal_entries(self, session: str) -> List[Tuple[int, Dict]]:
        with self._lock:
            entries = self._journal.get(session, {})
            return [(seq, dict(entries[seq])) for seq in sorted(entries)]

    def journal_sessions(self) -> List[str]:
        with self._lock:
            return sorted(self._journal)

    def journal_clear(self, session: str) -> None:
        with self._lock:
            if self._journal.pop(session, None) is None:
                return
            # A tombstone line, honored on the next load (append-only file).
            self._handle.write(
                json.dumps({"kind": "journal-clear", "session": session}, sort_keys=True)
                + "\n"
            )
            self._handle.flush()

    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def entries_since(
        self, seq: int, limit: Optional[int] = None
    ) -> Iterator[LogEntry]:
        with self._lock:
            newer = [entry for entry in self._log if entry[0] > seq]
        if limit is not None:
            newer = newer[:limit]
        return iter(newer)

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[str, StoredVerdict]]:
        with self._lock:
            return iter(list(self._data.items()))

    def close(self) -> None:
        with self._lock:
            if self._handle.closed:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()


#: Scheme prefixes accepted by :func:`open_store`.
_SCHEMES: Tuple[str, ...] = ("sqlite", "jsonl", "memory")


def _split_scheme(path: str) -> Tuple[Optional[str], str]:
    """``"sqlite://x.db"`` -> ``("sqlite", "x.db")``; no scheme -> ``(None, path)``."""
    for scheme in _SCHEMES:
        prefix = scheme + "://"
        if path.startswith(prefix):
            return scheme, path[len(prefix) :]
    if "://" in path:
        scheme = path.split("://", 1)[0]
        raise ValueError(
            f"unknown store scheme {scheme!r}; expected one of "
            + ", ".join(f"{s}://" for s in _SCHEMES)
        )
    return None, path


def open_store(path: Optional[str]) -> VerdictStore:
    """Open (creating if necessary) the verdict store at *path*.

    ``None`` or ``memory://`` yields a fresh :class:`MemoryVerdictStore`.
    An explicit ``sqlite://PATH`` or ``jsonl://PATH`` scheme forces that
    backend regardless of suffix -- the form daemons should use, since it
    cannot be misrouted by an unusual file name.  Without a scheme, a path
    ending in ``.jsonl`` / ``.ndjson`` yields the append-only file backend
    and anything else (including ``:memory:``) yields SQLite.  Parent
    directories are created as needed.
    """
    if path is None:
        return MemoryVerdictStore()
    scheme, stripped = _split_scheme(path)
    if scheme == "memory":
        return MemoryVerdictStore()
    if scheme == "jsonl":
        return JsonlVerdictStore(stripped)
    if scheme == "sqlite":
        return SQLiteVerdictStore(stripped)
    if stripped != ":memory:" and os.path.splitext(stripped)[1] in (".jsonl", ".ndjson"):
        return JsonlVerdictStore(stripped)
    return SQLiteVerdictStore(stripped)
