"""Sharded execution of game-instance sweeps, with persistent-store reuse.

The executor answers a list of :class:`~repro.engine.batch.GameInstance`
questions in three steps:

1. **Store lookup.**  When a verdict store is attached, every instance's
   content-addressed key (:mod:`repro.sweep.fingerprint`) is checked first;
   hits skip evaluation entirely, so re-running a sweep across sessions is
   incremental.
2. **Sharding.**  The remaining instances are partitioned so that all
   instances sharing a ``(machine, graph, ids)`` leaf evaluator -- and hence
   its per-node verdict cache -- land on the same shard
   (:func:`shard_indices`).  Splitting such a group across processes would
   duplicate the cache cold-start in every process; keeping it together
   preserves the engine's within-group reuse.
3. **Execution.**  Shards run either in-process (the deterministic
   fallback, also used for ``--jobs <= 1``) or across a ``multiprocessing``
   pool.  Machines close over plain functions and are not picklable, so
   parallel workers receive only the *scenario name* and their shard's
   indices, rebuild the instance list from the registry (scenario builders
   are deterministic by contract), evaluate their shard, and ship the
   boolean verdicts back.  The parent merges every shard's fresh verdicts
   into the persistent store.

Both paths return identical verdicts in instance order; the equivalence is
asserted by randomized tests.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.batch import GameInstance, IdentityKey, engine_sharing_key
from repro.obs.log import get_logger
from repro.sweep.fingerprint import game_instance_key
from repro.sweep.scenarios import build_instances
from repro.sweep.store import VerdictStore, open_store

_log = get_logger("repro.sweep")


@dataclass
class InstanceResult:
    """The outcome of one instance of a sweep."""

    name: str
    verdict: bool
    cached: bool
    seconds: float = 0.0
    key: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
            "key": self.key,
        }


@dataclass
class SweepResult:
    """Everything a sweep produced, in instance order."""

    scenario: str
    jobs: int
    shard_count: int
    executed_parallel: bool
    results: List[InstanceResult] = field(default_factory=list)
    total_seconds: float = 0.0
    store_path: Optional[str] = None
    #: Canonical ball cache counters for the sweep (hits/misses/hit_rate;
    #: summed over shards on the parallel path).
    canonical: Optional[Dict[str, object]] = None

    @property
    def verdicts(self) -> List[bool]:
        return [result.verdict for result in self.results]

    @property
    def cached_count(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def cold_count(self) -> int:
        return len(self.results) - self.cached_count

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "jobs": self.jobs,
            "shards": self.shard_count,
            "executed_parallel": self.executed_parallel,
            "store": self.store_path,
            "summary": {
                "instances": len(self.results),
                "cold": self.cold_count,
                "cached": self.cached_count,
                "seconds": round(self.total_seconds, 6),
            },
            "canonical": self.canonical,
            "instances": [result.as_dict() for result in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def table(self) -> str:
        """A human-readable result table."""
        width = max([len(result.name) for result in self.results] + [8])
        lines = [f"{'instance':<{width}}  verdict  source", "-" * (width + 18)]
        for result in self.results:
            verdict = "eve" if result.verdict else "adam"
            source = "store" if result.cached else f"{result.seconds * 1000:7.1f}ms"
            lines.append(f"{result.name:<{width}}  {verdict:<7}  {source}")
        lines.append(
            f"{len(self.results)} instances: {self.cold_count} solved, "
            f"{self.cached_count} from store, {self.total_seconds:.3f}s total"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def evaluator_sharing_key(instance: GameInstance) -> Tuple[IdentityKey, object, Tuple[str, ...]]:
    """The key under which instances share one leaf evaluator.

    Coarser than :func:`~repro.engine.batch.engine_sharing_key`: the
    certificate spaces are *not* part of it, because the per-node verdict
    cache depends only on ``(machine, graph, ids)`` -- Sigma and Pi games,
    and sweeps of many certificate spaces over one instance, all reuse it.
    """
    return (
        IdentityKey(instance.machine),
        instance.graph,
        tuple(instance.ids[u] for u in instance.graph.nodes),
    )


def shard_indices(instances: Sequence[GameInstance], shard_count: int) -> List[List[int]]:
    """Partition instance indices into at most *shard_count* balanced shards.

    Instances sharing a leaf evaluator (same ``(machine, graph, ids)``, see
    :func:`evaluator_sharing_key`) form an atomic group: the whole group
    lands on one shard so the per-node verdict cache is built once instead
    of once per process.  Groups are assigned greedily, in first-appearance
    order, to the currently lightest shard -- fully deterministic for a
    deterministic instance list.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be positive")
    groups: Dict[object, List[int]] = {}
    order: List[object] = []
    for index, instance in enumerate(instances):
        key = evaluator_sharing_key(instance)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)

    shard_count = min(shard_count, len(order)) if order else 1
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for key in order:
        lightest = min(range(shard_count), key=lambda i: (len(shards[i]), i))
        shards[lightest].extend(groups[key])
    return [sorted(shard) for shard in shards if shard]


# ----------------------------------------------------------------------
# Shard evaluation
# ----------------------------------------------------------------------
def evaluate_timed(
    instances: Sequence[GameInstance],
    compiled_cache=None,
    engine_cache=None,
    canonical=None,
) -> Tuple[List[bool], List[float]]:
    """Like :func:`~repro.engine.batch.evaluate_batch`, with per-instance timing.

    One :class:`~repro.engine.compiled.CompiledInstance` is built per
    leaf-evaluator group (same ``(machine, graph, ids)``), so every engine
    of the group -- across certificate spaces and prefixes -- runs on the
    same interned certificate alphabet and shares the per-node verdict
    memo.  The per-call caches keep the group's compiled form pinned for
    the batch's lifetime regardless of global-registry eviction.

    *compiled_cache* and *engine_cache* accept any ``get(key, default)`` /
    ``put(key, value)`` mapping (e.g. :class:`repro.engine.caching.LRUCache`);
    a long-lived caller -- the online verdict service's compute tier -- passes
    persistent caches so engines and their memo/transposition state survive
    across batches, and fresh per-call unbounded caches are used otherwise.

    *canonical*, when given, is a
    :class:`~repro.engine.canonical.CanonicalVerdictCache` attached to every
    compiled instance of the batch: isomorphic dependency balls then share
    one verdict across nodes *and* across the batch's instances (and, when
    the cache is store-backed, across sessions).
    """
    from repro.engine.caching import LRUCache
    from repro.engine.compiled import CompiledGameEngine, compile_instance
    from repro.obs.trace import current_trace

    compiled_by_group = compiled_cache if compiled_cache is not None else LRUCache(None)
    engines = engine_cache if engine_cache is not None else LRUCache(None)
    trace = current_trace()
    verdicts: List[bool] = []
    seconds: List[float] = []
    for instance in instances:
        key = engine_sharing_key(instance)
        engine = engines.get(key)
        compiled_fresh = False
        if engine is None:
            group_key = evaluator_sharing_key(instance)
            compiled = compiled_by_group.get(group_key)
            if compiled is None:
                compile_start = time.perf_counter()
                compiled = compile_instance(instance.machine, instance.graph, instance.ids)
                compiled_by_group.put(group_key, compiled)
                compiled_fresh = True
                if trace is not None:
                    trace.add_span(
                        "compile",
                        time.perf_counter() - compile_start,
                        instance=instance.name,
                    )
            if canonical is not None:
                compiled.attach_canonical(canonical)
            engine = CompiledGameEngine(
                instance.machine,
                instance.graph,
                instance.ids,
                instance.spaces,
                instance=compiled,
            )
            engines.put(key, engine)
        start = time.perf_counter()
        verdicts.append(engine.eve_wins(instance.prefix))
        spent = time.perf_counter() - start
        seconds.append(spent)
        if trace is not None:
            trace.add_span(
                "engine", spent, instance=instance.name, compiled=compiled_fresh
            )
    return verdicts, seconds


def _evaluate_shard_by_name(
    task: Tuple[str, List[int], Optional[str]]
) -> Tuple[List[int], List[bool], List[float], List[str], List[Tuple[str, bool]], Dict[str, object]]:
    """Worker entry point: rebuild the scenario and evaluate one shard.

    Only the scenario name, the shard's indices and the store *path* cross
    the process boundary; the (unpicklable) machines are rebuilt from the
    registry, and the worker opens its own read connection to the store
    (WAL SQLite serves concurrent readers) so persisted canonical node
    verdicts warm parallel sweeps too -- all *writes* stay in the parent.
    The rebuilt instances' names are shipped back so the parent can detect
    a scenario whose builder no longer matches the instances it fingerprinted
    (shadowed registration, drifted builder) instead of silently storing
    wrong verdicts under the caller's keys.  The shard's fresh canonical
    node verdicts (plain ``(key, bool)`` pairs -- picklable) ride back too,
    so the parent can persist them and report the shard's hit rates.
    """
    from repro.engine.canonical import CanonicalVerdictCache

    scenario_name, indices, store_path = task
    instances = build_instances(scenario_name)
    if indices and max(indices) >= len(instances):
        raise RuntimeError(
            f"scenario {scenario_name!r} rebuilt with only {len(instances)} "
            f"instances in the worker, but index {max(indices)} was requested; "
            "the builder is not deterministic or was re-registered"
        )
    shard = [instances[i] for i in indices]
    read_store = open_store(store_path) if store_path else None
    canonical = CanonicalVerdictCache(store=read_store)
    try:
        verdicts, seconds = evaluate_timed(shard, canonical=canonical)
    finally:
        if read_store is not None:
            read_store.close()
    names = [instance.name for instance in shard]
    return indices, verdicts, seconds, names, canonical.drain_records(), canonical.info()


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start method, when the platform offers it.

    Forked workers inherit the parent's registry (including scenarios
    registered at runtime); under spawn-only platforms the executor falls
    back to deterministic in-process evaluation instead of requiring every
    scenario to be importable.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_instances(
    instances: Sequence[GameInstance],
    jobs: int = 0,
    store: Union[VerdictStore, str, None] = None,
    scenario: Optional[str] = None,
    scenario_name: str = "ad-hoc",
) -> SweepResult:
    """Run a sweep over explicit instances (see module docstring).

    Parameters
    ----------
    instances:
        The questions, in order; verdicts come back in the same order.
    jobs:
        ``<= 1`` evaluates in-process (deterministic fallback); ``N > 1``
        partitions the cold instances into up to ``N`` shards and runs them
        on a ``multiprocessing`` pool -- which requires *scenario* (workers
        rebuild instances by name) and the fork start method, and otherwise
        silently degrades to the in-process path with identical results.
    store:
        A :class:`~repro.sweep.store.VerdictStore`, a path for
        :func:`~repro.sweep.store.open_store`, or ``None`` for no
        persistence.  Hits skip evaluation; fresh verdicts are merged back.
    scenario:
        Name of the registered scenario that (deterministically) builds
        exactly *instances* -- the handle parallel workers rebuild from.
    scenario_name:
        Label for reporting when *scenario* is not given.
    """
    from repro.engine.canonical import CanonicalVerdictCache

    started = time.perf_counter()
    instances = list(instances)
    owns_store = isinstance(store, str)
    store_obj: Optional[VerdictStore] = open_store(store) if owns_store else store
    store_path = store if owns_store else getattr(store_obj, "path", None)

    keys: List[Optional[str]] = [None] * len(instances)
    cached: Dict[int, bool] = {}
    if store_obj is not None:
        for index, instance in enumerate(instances):
            keys[index] = game_instance_key(instance)
        # One bulk lookup instead of one round-trip per instance.
        found = store_obj.get_many([key for key in keys if key is not None])
        for index, key in enumerate(keys):
            if key in found:
                cached[index] = found[key]

    cold = [index for index in range(len(instances)) if index not in cached]
    shards = shard_indices([instances[i] for i in cold], max(1, jobs))
    # shard_indices returned positions into `cold`; map back to instance indices.
    shards = [[cold[position] for position in shard] for shard in shards]

    verdicts: Dict[int, bool] = dict(cached)
    seconds: Dict[int, float] = {}
    canonical_info: Dict[str, object] = {
        "entries": 0, "hits": 0, "store_hits": 0, "misses": 0, "puts": 0,
    }

    def _merge_canonical(info: Dict[str, object]) -> None:
        for field_name in ("entries", "hits", "store_hits", "misses", "puts"):
            value = info.get(field_name)
            if isinstance(value, int):
                canonical_info[field_name] += value

    _log.debug(
        "sweep-start",
        scenario=scenario or scenario_name,
        instances=len(instances),
        cached=len(cached),
        jobs=jobs,
        shards=len(shards),
    )
    parallel = jobs > 1 and scenario is not None and len(shards) > 1
    context = _fork_context() if parallel else None
    if jobs > 1 and not (parallel and context is not None):
        # The caller asked for worker processes but gets the in-process
        # path (identical verdicts, serial wall-clock).  This used to be a
        # silent degrade; say why.
        if scenario is None:
            reason = "no scenario name (workers rebuild instances by name)"
        elif len(shards) <= 1:
            reason = "only one shard after store hits and engine-sharing grouping"
        else:
            reason = "fork start method unavailable on this platform"
        _log.warning(
            "parallel-degraded", jobs=jobs, reason=reason,
            scenario=scenario or scenario_name,
        )
    if parallel and context is not None:
        worker_store_path = (
            store_path
            if isinstance(store_path, str) and ":memory:" not in store_path
            else None
        )
        tasks = [(scenario, shard, worker_store_path) for shard in shards]
        with context.Pool(processes=min(jobs, len(shards))) as pool:
            for (
                indices,
                shard_verdicts,
                shard_seconds,
                shard_names,
                shard_records,
                shard_canonical,
            ) in pool.map(_evaluate_shard_by_name, tasks):
                expected = [instances[index].name for index in indices]
                if shard_names != expected:
                    raise RuntimeError(
                        f"scenario {scenario!r} rebuilt differently in a worker "
                        f"process (expected instances {expected[:3]}..., got "
                        f"{shard_names[:3]}...); refusing to attribute its "
                        "verdicts -- is the builder deterministic and still "
                        "registered under this name?"
                    )
                for index, verdict, spent in zip(indices, shard_verdicts, shard_seconds):
                    verdicts[index] = verdict
                    seconds[index] = spent
                if store_obj is not None and shard_records:
                    store_obj.put_node_many(shard_records)
                _merge_canonical(shard_canonical)
        executed_parallel = True
    else:
        canonical = CanonicalVerdictCache(store=store_obj)
        for shard in shards:
            shard_verdicts, shard_seconds = evaluate_timed(
                [instances[i] for i in shard], canonical=canonical
            )
            for index, verdict, spent in zip(shard, shard_verdicts, shard_seconds):
                verdicts[index] = verdict
                seconds[index] = spent
        canonical.flush()
        _merge_canonical(canonical.info())
        executed_parallel = False

    answered = canonical_info["hits"] + canonical_info["store_hits"]
    total_lookups = answered + canonical_info["misses"]
    canonical_info["hit_rate"] = (
        round(answered / total_lookups, 4) if total_lookups else 0.0
    )

    if store_obj is not None and cold:
        store_obj.put_many(
            (keys[index], verdicts[index], instances[index].name, seconds.get(index, 0.0))
            for index in cold
        )
    if owns_store and store_obj is not None:
        store_obj.close()
    _log.debug(
        "sweep-end",
        scenario=scenario or scenario_name,
        instances=len(instances),
        solved=len(cold),
        cached=len(cached),
        parallel=executed_parallel,
        seconds=round(time.perf_counter() - started, 4),
    )

    results = [
        InstanceResult(
            name=instance.name or f"instance-{index}",
            verdict=verdicts[index],
            cached=index in cached,
            seconds=seconds.get(index, 0.0),
            key=keys[index],
        )
        for index, instance in enumerate(instances)
    ]
    return SweepResult(
        scenario=scenario or scenario_name,
        jobs=jobs,
        shard_count=len(shards),
        executed_parallel=executed_parallel,
        results=results,
        total_seconds=time.perf_counter() - started,
        store_path=store_path,
        canonical=canonical_info,
    )


def run_scenario(
    name: str,
    jobs: int = 0,
    store: Union[VerdictStore, str, None] = None,
    limit: Optional[int] = None,
) -> SweepResult:
    """Run a registered scenario end to end.

    *limit* keeps only the first ``limit`` instances (a prefix, so parallel
    workers -- which rebuild the full list -- index consistently).
    """
    instances = build_instances(name)
    if limit is not None:
        instances = instances[:limit]
    return run_instances(instances, jobs=jobs, store=store, scenario=name)
