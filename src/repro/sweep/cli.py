"""Command-line front end: sweeps, and the online verdict service.

Examples
--------
List what can be swept::

    python -m repro scenarios

Run the CI smoke scenario on two processes against a persistent store,
also dumping machine-readable results::

    python -m repro sweep smoke --jobs 2 --store verdicts.sqlite --json out.json

A second run against the same store answers everything from cache.

Serve single-verdict queries online from the same store (see
:mod:`repro.service.cli` for ``serve`` / ``query`` / ``loadgen``)::

    python -m repro serve --store sqlite://verdicts.sqlite
    python -m repro query --scenario separations --index 3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.service.cli import add_service_commands
from repro.sweep.executor import run_scenario
from repro.sweep.scenarios import all_scenarios, get_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sweep orchestrator and online verdict service "
        "for the certificate-game engine.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser("sweep", help="run a registered sweep scenario")
    sweep.add_argument("scenario", help="scenario name (see `python -m repro scenarios`)")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of parallel worker processes (<= 1: in-process)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent verdict store (SQLite by default, .jsonl for append-only lines)",
    )
    sweep.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the machine-readable sweep result to this file ('-' for stdout)",
    )
    sweep.add_argument(
        "--limit", type=int, default=None, help="run only the first N instances"
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress the result table (summary only)"
    )

    commands.add_parser("scenarios", help="list the registered sweep scenarios")

    dynamic = commands.add_parser(
        "dynamic",
        help="replay a dynamic scenario's mutation trace with verdict repair",
    )
    dynamic.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="dynamic scenario name (omit to list the dynamic-* family)",
    )
    dynamic.add_argument(
        "--verify",
        action="store_true",
        help="differentially check every repaired verdict against a full recompute",
    )
    dynamic.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the --verify recomputes (<= 1: inline)",
    )
    dynamic.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the machine-readable replay result to this file ('-' for stdout)",
    )
    dynamic.set_defaults(handler=_command_dynamic)

    profile = commands.add_parser(
        "profile",
        help="run a scenario under cProfile, or read a live daemon's sampling profiler",
    )
    profile.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (see `python -m repro scenarios`); omit with --live",
    )
    profile.add_argument(
        "--live",
        default=None,
        metavar="ADDR",
        help="read the continuous sampling profiler of a running daemon's "
        "HTTP console (host:port; start sampling with `serve --profile-hz` "
        "or the profile-start admin action)",
    )
    profile.add_argument(
        "--top", type=int, default=25, help="how many call sites to print"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort order (--live maps tottime to self samples)",
    )
    profile.add_argument(
        "--limit", type=int, default=None, help="profile only the first N instances"
    )
    profile.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="run against a persistent verdict store (profiles the warm path)",
    )
    profile.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write the top call sites as structured JSON ('-' for stdout)",
    )
    profile.set_defaults(handler=_command_profile)

    bench = commands.add_parser(
        "bench",
        help="run benchmark suites, append to BENCH_history.jsonl, gate on regressions",
    )
    bench.add_argument(
        "suites",
        nargs="*",
        help="suites to run (fig02 fig07 canonical service dynamic; default: all)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list the runnable suites and exit"
    )
    bench.add_argument(
        "--collect",
        action="store_true",
        help="skip running: collect metrics from the existing BENCH_*.json snapshots",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="gate: fail if the newest history record breaks a floor or "
        "regressed past --threshold vs the baseline window",
    )
    bench.add_argument(
        "--no-append",
        action="store_true",
        help="do not append a record to the history file",
    )
    bench.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="history file (default: BENCH_history.jsonl next to the BENCH_*.json files)",
    )
    bench.add_argument(
        "--window",
        type=int,
        default=5,
        help="baseline window: compare against the median of this many prior records",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="regression factor that trips --check (1.5: 2x slowdowns trip, "
        "10%% noise passes)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the record + check result as JSON ('-' for stdout)",
    )
    bench.set_defaults(handler=_command_bench)

    add_service_commands(commands)
    return parser


def _command_scenarios() -> int:
    for scenario in all_scenarios():
        count = len(scenario.instances())
        tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
        print(f"{scenario.name:<18} {count:>3} instances{tags}  {scenario.description}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    try:
        get_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    result = run_scenario(
        args.scenario, jobs=args.jobs, store=args.store, limit=args.limit
    )
    if args.json == "-":
        print(result.to_json())
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    if not args.quiet and args.json != "-":
        print(result.table())
    elif not args.quiet:
        print(
            f"{len(result.results)} instances: {result.cold_count} solved, "
            f"{result.cached_count} from store, {result.total_seconds:.3f}s total",
            file=sys.stderr,
        )
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """``python -m repro profile <scenario>``: cProfile over one sweep.

    Used to validate engine optimizations: the printout shows where a cold
    (or warm, with ``--store``) scenario run actually spends its time, the
    top call sites first.  Profiling always runs in-process (``jobs=1``) --
    a fork pool would hide the workers from the profiler.
    """
    import cProfile
    import pstats

    if args.live is not None:
        return _command_profile_live(args)
    if args.scenario is None:
        print("profile needs a scenario name (or --live ADDR)", file=sys.stderr)
        return 2
    try:
        get_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(
        args.scenario, jobs=1, store=args.store, limit=args.limit
    )
    profiler.disable()
    summary = (
        f"profiled scenario {args.scenario!r}: {len(result.results)} instances, "
        f"{result.cold_count} solved, {result.cached_count} from store, "
        f"{result.total_seconds:.3f}s total"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort)
    if args.json is not None:
        payload = _profile_json(stats, args)
        payload["summary"] = {
            "scenario": args.scenario,
            "instances": len(result.results),
            "solved": result.cold_count,
            "cached": result.cached_count,
            "seconds": round(result.total_seconds, 6),
        }
        if args.json == "-":
            print(json.dumps(payload, indent=2))
            return 0
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    print(summary)
    stats.print_stats(args.top)
    return 0


def _command_profile_live(args: argparse.Namespace) -> int:
    """``repro profile --live HOST:PORT``: the daemon's sampling profiler.

    Reads ``/profile?format=json`` off the HTTP console and prints the
    hottest frames in the same table shape as the cProfile report --
    ``tottime`` maps to self samples (the frame was executing),
    ``cumtime`` to cumulative samples (it or a callee was), and sample
    counts divide by the sampling rate into estimated seconds.
    """
    import urllib.error
    import urllib.request

    from repro.obs.http import DEFAULT_HTTP_PORT

    address = args.live
    if "://" not in address:
        address = f"http://{address}"
    top = max(1, args.top)
    url = f"{address.rstrip('/')}/profile?format=json&top={min(top, 200)}"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            snapshot = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        print(f"cannot fetch {url}: {error}", file=sys.stderr)
        return 1
    sort = "self" if args.sort in ("tottime", "ncalls") else "cumulative"
    rows = snapshot.get("top_self" if sort == "self" else "top_cumulative") or []
    if args.json is not None:
        payload = {
            "sort": sort,
            "top": top,
            "rows": rows[:top],
            "profiler": {
                key: snapshot.get(key)
                for key in (
                    "running", "hz", "samples", "threads",
                    "duration_seconds", "stacks_dropped",
                )
            },
        }
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
            return 0
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    running = "running" if snapshot.get("running") else "stopped"
    print(
        f"sampling profiler {running}: {snapshot.get('samples', 0)} samples "
        f"at {snapshot.get('hz', 0):g}hz over {snapshot.get('threads', 0)} threads "
        f"({snapshot.get('duration_seconds', 0)}s)"
    )
    if not rows:
        print(
            "no samples yet -- start sampling with `repro serve --profile-hz N` "
            "or the profile-start admin action",
            file=sys.stderr,
        )
        return 0
    print(f"{'self':>8} {'self-s':>8} {'cum':>8} {'cum-s':>8}  function (file:line)")
    for row in rows[:top]:
        print(
            f"{row.get('self_samples', 0):>8} {row.get('self_seconds', 0.0):>8.3f} "
            f"{row.get('cum_samples', 0):>8} {row.get('cum_seconds', 0.0):>8.3f}  "
            f"{row.get('function')} ({row.get('file')}:{row.get('line')})"
        )
    return 0


def _profile_json(stats: "pstats.Stats", args: argparse.Namespace) -> Dict[str, Any]:
    """The hottest call sites as records (the ``--json`` half of profile).

    ``pstats.Stats.stats`` maps ``(file, line, function)`` to
    ``(primitive_calls, total_calls, tottime, cumtime, callers)``; the
    rows are re-sorted here with the same key the text printout used.
    """
    sort_index = {"cumulative": 3, "tottime": 2, "ncalls": 1}[args.sort]
    entries = [
        (func, values) for func, values in stats.stats.items()  # type: ignore[attr-defined]
    ]
    entries.sort(key=lambda item: item[1][sort_index], reverse=True)
    rows = [
        {
            "file": func[0],
            "line": func[1],
            "function": func[2],
            "primitive_calls": values[0],
            "ncalls": values[1],
            "tottime": round(values[2], 6),
            "cumtime": round(values[3], 6),
        }
        for func, values in entries[: args.top]
    ]
    return {"sort": args.sort, "top": args.top, "rows": rows}


def _command_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run suites, append history, gate regressions.

    Default flow: run the requested benchmark suites (all of them when
    none are named) via pytest, collect the tracked metrics out of the
    refreshed ``BENCH_*.json`` snapshots, append one record to the
    append-only ``BENCH_history.jsonl``, and -- with ``--check`` -- gate
    against floors and the baseline window.  ``--collect`` skips the run
    and reads whatever snapshots already exist (what CI does after its
    own pytest-benchmark step).
    """
    import os
    import subprocess
    from pathlib import Path

    from repro.obs import history as bench_history

    if args.list:
        for name, filename in sorted(bench_history.SUITES.items()):
            print(f"{name:<10} benchmarks/{filename}")
        return 0
    names = list(args.suites) or sorted(bench_history.SUITES)
    unknown = [name for name in names if name not in bench_history.SUITES]
    if unknown:
        print(
            f"unknown suite(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(bench_history.SUITES))})",
            file=sys.stderr,
        )
        return 2
    repo_dir = Path(__file__).resolve().parents[3]
    bench_dir = Path(os.environ.get("BENCH_OUTPUT_DIR", repo_dir))
    if not args.collect:
        files = [
            str(repo_dir / "benchmarks" / bench_history.SUITES[name])
            for name in names
        ]
        command = [
            sys.executable, "-m", "pytest", "-q",
            "--benchmark-disable-gc", "--benchmark-min-rounds=3", *files,
        ]
        print(f"running: {' '.join(command)}", file=sys.stderr)
        env = dict(os.environ)
        src = str(repo_dir / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        completed = subprocess.run(command, cwd=repo_dir, env=env)
        if completed.returncode != 0:
            print("benchmark run failed; no record appended", file=sys.stderr)
            return completed.returncode
    metrics = bench_history.collect_metrics(bench_dir)
    if not metrics:
        print(
            f"no tracked metrics found in {bench_dir}/BENCH_*.json "
            "(run the suites first, or check BENCH_OUTPUT_DIR)",
            file=sys.stderr,
        )
        return 1
    history_path = (
        Path(args.history)
        if args.history
        else bench_dir / bench_history.DEFAULT_HISTORY_FILENAME
    )
    record = bench_history.build_record(metrics, repo_dir=repo_dir)
    if args.no_append:
        records = bench_history.read_history(history_path) + [record]
    else:
        bench_history.append_record(history_path, record)
        records = bench_history.read_history(history_path)
        print(
            f"appended record {len(records)} ({record['git_sha'][:12]}, "
            f"{len(metrics)} metrics) to {history_path}",
            file=sys.stderr,
        )
    payload: Dict[str, Any] = {"record": record, "history": str(history_path)}
    exit_code = 0
    if args.check:
        result = bench_history.check(
            records, window=args.window, threshold=args.threshold
        )
        payload["check"] = result.as_dict()
        for row in result.rows:
            marker = "ok  " if row["ok"] else "FAIL"
            baseline = (
                f" (baseline {row['baseline']:g})"
                if row.get("baseline") is not None
                else ""
            )
            value = f"{row['value']:g}" if row.get("value") is not None else "-"
            print(f"  {marker} {row['metric']:<28} {value}{baseline}  {row['reason']}")
        if result.ok:
            print(f"bench check passed: {len(result.rows)} metrics within bounds")
        else:
            print(
                f"bench check FAILED: {len(result.failures)} of "
                f"{len(result.rows)} metrics out of bounds",
                file=sys.stderr,
            )
            exit_code = 1
    if args.json == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return exit_code


def _command_dynamic(args: argparse.Namespace) -> int:
    """``python -m repro dynamic <scenario>``: replay a mutation trace.

    Applies the scenario's seeded deltas through
    :class:`~repro.engine.dynamic.MutableInstance`, printing per-step dirty
    sets and verdicts.  With ``--verify``, every repaired verdict is
    differentially checked against a from-scratch recompute of the mutated
    state (recomputes run on ``--jobs`` worker threads); any mismatch is a
    hard failure, mirroring the test harness's repair == recompute claim.
    """
    import json as json_module
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.engine.dynamic import MutableInstance, recompute_verdict
    from repro.sweep.scenarios import dynamic_scenario_names, get_dynamic_scenario

    if args.scenario is None:
        for name in dynamic_scenario_names():
            scenario = get_dynamic_scenario(name)
            tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
            print(f"{name:<18}{tags}  {scenario.description}")
        return 0
    try:
        scenario = get_dynamic_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    trace = scenario.trace()
    mutable = MutableInstance.from_game_instance(trace.base)
    steps = []
    verify_futures = []
    pool = (
        ThreadPoolExecutor(max_workers=args.jobs)
        if args.verify and args.jobs > 1
        else None
    )
    try:
        start = time.perf_counter()
        for index, delta in enumerate(trace.deltas):
            report = mutable.apply(delta)
            step_start = time.perf_counter()
            verdict = mutable.verdict()
            repair_seconds = report.seconds + (time.perf_counter() - step_start)
            steps.append(
                {
                    "step": index,
                    "delta": delta.kind,
                    "dirty": len(report.dirty),
                    "verdict": verdict,
                    "repair_seconds": round(repair_seconds, 6),
                }
            )
            if args.verify:
                snapshot = mutable.as_game_instance()
                if pool is not None:
                    verify_futures.append(
                        (index, verdict, pool.submit(recompute_verdict, snapshot))
                    )
                else:
                    recomputed = recompute_verdict(snapshot)
                    if recomputed != verdict:
                        print(
                            f"MISMATCH at step {index}: repair={verdict} "
                            f"recompute={recomputed}",
                            file=sys.stderr,
                        )
                        return 1
        mismatches = 0
        for index, verdict, future in verify_futures:
            recomputed = future.result()
            if recomputed != verdict:
                mismatches += 1
                print(
                    f"MISMATCH at step {index}: repair={verdict} "
                    f"recompute={recomputed}",
                    file=sys.stderr,
                )
        if mismatches:
            return 1
        total_seconds = time.perf_counter() - start
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    payload = {
        "scenario": scenario.name,
        "base": trace.base.name,
        "steps": steps,
        "verified": bool(args.verify),
        "total_seconds": round(total_seconds, 6),
        "info": mutable.info(),
    }
    text = json_module.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if args.json != "-":
        dirty_total = sum(step["dirty"] for step in steps)
        verified = " (all steps verified against recompute)" if args.verify else ""
        print(
            f"{scenario.name}: {len(steps)} deltas over {trace.base.name}, "
            f"{dirty_total} dirty node repairs, {payload['total_seconds']:.3f}s"
            f"{verified}"
        )
        for step in steps:
            print(
                f"  step {step['step']:>2}  {step['delta']:<12} "
                f"dirty={step['dirty']:<3} verdict={'eve' if step['verdict'] else 'adam'} "
                f"{step['repair_seconds'] * 1e3:8.2f}ms"
            )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "scenarios":
            return _command_scenarios()
        handler = getattr(args, "handler", None)
        if handler is not None:  # service subcommands register their own
            return handler(args)
        return _command_sweep(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
