"""Command-line front end: sweeps, and the online verdict service.

Examples
--------
List what can be swept::

    python -m repro scenarios

Run the CI smoke scenario on two processes against a persistent store,
also dumping machine-readable results::

    python -m repro sweep smoke --jobs 2 --store verdicts.sqlite --json out.json

A second run against the same store answers everything from cache.

Serve single-verdict queries online from the same store (see
:mod:`repro.service.cli` for ``serve`` / ``query`` / ``loadgen``)::

    python -m repro serve --store sqlite://verdicts.sqlite
    python -m repro query --scenario separations --index 3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.service.cli import add_service_commands
from repro.sweep.executor import run_scenario
from repro.sweep.scenarios import all_scenarios, get_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sweep orchestrator and online verdict service "
        "for the certificate-game engine.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser("sweep", help="run a registered sweep scenario")
    sweep.add_argument("scenario", help="scenario name (see `python -m repro scenarios`)")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of parallel worker processes (<= 1: in-process)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent verdict store (SQLite by default, .jsonl for append-only lines)",
    )
    sweep.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the machine-readable sweep result to this file ('-' for stdout)",
    )
    sweep.add_argument(
        "--limit", type=int, default=None, help="run only the first N instances"
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress the result table (summary only)"
    )

    commands.add_parser("scenarios", help="list the registered sweep scenarios")

    dynamic = commands.add_parser(
        "dynamic",
        help="replay a dynamic scenario's mutation trace with verdict repair",
    )
    dynamic.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="dynamic scenario name (omit to list the dynamic-* family)",
    )
    dynamic.add_argument(
        "--verify",
        action="store_true",
        help="differentially check every repaired verdict against a full recompute",
    )
    dynamic.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the --verify recomputes (<= 1: inline)",
    )
    dynamic.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the machine-readable replay result to this file ('-' for stdout)",
    )
    dynamic.set_defaults(handler=_command_dynamic)

    profile = commands.add_parser(
        "profile",
        help="run a scenario under cProfile and print the hottest call sites",
    )
    profile.add_argument(
        "scenario", help="scenario name (see `python -m repro scenarios`)"
    )
    profile.add_argument(
        "--top", type=int, default=25, help="how many call sites to print"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort order",
    )
    profile.add_argument(
        "--limit", type=int, default=None, help="profile only the first N instances"
    )
    profile.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="run against a persistent verdict store (profiles the warm path)",
    )
    profile.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write the top call sites as structured JSON ('-' for stdout)",
    )
    profile.set_defaults(handler=_command_profile)

    add_service_commands(commands)
    return parser


def _command_scenarios() -> int:
    for scenario in all_scenarios():
        count = len(scenario.instances())
        tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
        print(f"{scenario.name:<18} {count:>3} instances{tags}  {scenario.description}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    try:
        get_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    result = run_scenario(
        args.scenario, jobs=args.jobs, store=args.store, limit=args.limit
    )
    if args.json == "-":
        print(result.to_json())
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    if not args.quiet and args.json != "-":
        print(result.table())
    elif not args.quiet:
        print(
            f"{len(result.results)} instances: {result.cold_count} solved, "
            f"{result.cached_count} from store, {result.total_seconds:.3f}s total",
            file=sys.stderr,
        )
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """``python -m repro profile <scenario>``: cProfile over one sweep.

    Used to validate engine optimizations: the printout shows where a cold
    (or warm, with ``--store``) scenario run actually spends its time, the
    top call sites first.  Profiling always runs in-process (``jobs=1``) --
    a fork pool would hide the workers from the profiler.
    """
    import cProfile
    import pstats

    try:
        get_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(
        args.scenario, jobs=1, store=args.store, limit=args.limit
    )
    profiler.disable()
    summary = (
        f"profiled scenario {args.scenario!r}: {len(result.results)} instances, "
        f"{result.cold_count} solved, {result.cached_count} from store, "
        f"{result.total_seconds:.3f}s total"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort)
    if args.json is not None:
        payload = _profile_json(stats, args)
        payload["summary"] = {
            "scenario": args.scenario,
            "instances": len(result.results),
            "solved": result.cold_count,
            "cached": result.cached_count,
            "seconds": round(result.total_seconds, 6),
        }
        if args.json == "-":
            print(json.dumps(payload, indent=2))
            return 0
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    print(summary)
    stats.print_stats(args.top)
    return 0


def _profile_json(stats: "pstats.Stats", args: argparse.Namespace) -> Dict[str, Any]:
    """The hottest call sites as records (the ``--json`` half of profile).

    ``pstats.Stats.stats`` maps ``(file, line, function)`` to
    ``(primitive_calls, total_calls, tottime, cumtime, callers)``; the
    rows are re-sorted here with the same key the text printout used.
    """
    sort_index = {"cumulative": 3, "tottime": 2, "ncalls": 1}[args.sort]
    entries = [
        (func, values) for func, values in stats.stats.items()  # type: ignore[attr-defined]
    ]
    entries.sort(key=lambda item: item[1][sort_index], reverse=True)
    rows = [
        {
            "file": func[0],
            "line": func[1],
            "function": func[2],
            "primitive_calls": values[0],
            "ncalls": values[1],
            "tottime": round(values[2], 6),
            "cumtime": round(values[3], 6),
        }
        for func, values in entries[: args.top]
    ]
    return {"sort": args.sort, "top": args.top, "rows": rows}


def _command_dynamic(args: argparse.Namespace) -> int:
    """``python -m repro dynamic <scenario>``: replay a mutation trace.

    Applies the scenario's seeded deltas through
    :class:`~repro.engine.dynamic.MutableInstance`, printing per-step dirty
    sets and verdicts.  With ``--verify``, every repaired verdict is
    differentially checked against a from-scratch recompute of the mutated
    state (recomputes run on ``--jobs`` worker threads); any mismatch is a
    hard failure, mirroring the test harness's repair == recompute claim.
    """
    import json as json_module
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.engine.dynamic import MutableInstance, recompute_verdict
    from repro.sweep.scenarios import dynamic_scenario_names, get_dynamic_scenario

    if args.scenario is None:
        for name in dynamic_scenario_names():
            scenario = get_dynamic_scenario(name)
            tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
            print(f"{name:<18}{tags}  {scenario.description}")
        return 0
    try:
        scenario = get_dynamic_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    trace = scenario.trace()
    mutable = MutableInstance.from_game_instance(trace.base)
    steps = []
    verify_futures = []
    pool = (
        ThreadPoolExecutor(max_workers=args.jobs)
        if args.verify and args.jobs > 1
        else None
    )
    try:
        start = time.perf_counter()
        for index, delta in enumerate(trace.deltas):
            report = mutable.apply(delta)
            step_start = time.perf_counter()
            verdict = mutable.verdict()
            repair_seconds = report.seconds + (time.perf_counter() - step_start)
            steps.append(
                {
                    "step": index,
                    "delta": delta.kind,
                    "dirty": len(report.dirty),
                    "verdict": verdict,
                    "repair_seconds": round(repair_seconds, 6),
                }
            )
            if args.verify:
                snapshot = mutable.as_game_instance()
                if pool is not None:
                    verify_futures.append(
                        (index, verdict, pool.submit(recompute_verdict, snapshot))
                    )
                else:
                    recomputed = recompute_verdict(snapshot)
                    if recomputed != verdict:
                        print(
                            f"MISMATCH at step {index}: repair={verdict} "
                            f"recompute={recomputed}",
                            file=sys.stderr,
                        )
                        return 1
        mismatches = 0
        for index, verdict, future in verify_futures:
            recomputed = future.result()
            if recomputed != verdict:
                mismatches += 1
                print(
                    f"MISMATCH at step {index}: repair={verdict} "
                    f"recompute={recomputed}",
                    file=sys.stderr,
                )
        if mismatches:
            return 1
        total_seconds = time.perf_counter() - start
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    payload = {
        "scenario": scenario.name,
        "base": trace.base.name,
        "steps": steps,
        "verified": bool(args.verify),
        "total_seconds": round(total_seconds, 6),
        "info": mutable.info(),
    }
    text = json_module.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if args.json != "-":
        dirty_total = sum(step["dirty"] for step in steps)
        verified = " (all steps verified against recompute)" if args.verify else ""
        print(
            f"{scenario.name}: {len(steps)} deltas over {trace.base.name}, "
            f"{dirty_total} dirty node repairs, {payload['total_seconds']:.3f}s"
            f"{verified}"
        )
        for step in steps:
            print(
                f"  step {step['step']:>2}  {step['delta']:<12} "
                f"dirty={step['dirty']:<3} verdict={'eve' if step['verdict'] else 'adam'} "
                f"{step['repair_seconds'] * 1e3:8.2f}ms"
            )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "scenarios":
            return _command_scenarios()
        handler = getattr(args, "handler", None)
        if handler is not None:  # service subcommands register their own
            return handler(args)
        return _command_sweep(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
