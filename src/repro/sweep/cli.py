"""Command-line front end: sweeps, and the online verdict service.

Examples
--------
List what can be swept::

    python -m repro scenarios

Run the CI smoke scenario on two processes against a persistent store,
also dumping machine-readable results::

    python -m repro sweep smoke --jobs 2 --store verdicts.sqlite --json out.json

A second run against the same store answers everything from cache.

Serve single-verdict queries online from the same store (see
:mod:`repro.service.cli` for ``serve`` / ``query`` / ``loadgen``)::

    python -m repro serve --store sqlite://verdicts.sqlite
    python -m repro query --scenario separations --index 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.service.cli import add_service_commands
from repro.sweep.executor import run_scenario
from repro.sweep.scenarios import all_scenarios, get_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sweep orchestrator and online verdict service "
        "for the certificate-game engine.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser("sweep", help="run a registered sweep scenario")
    sweep.add_argument("scenario", help="scenario name (see `python -m repro scenarios`)")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of parallel worker processes (<= 1: in-process)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent verdict store (SQLite by default, .jsonl for append-only lines)",
    )
    sweep.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="write the machine-readable sweep result to this file ('-' for stdout)",
    )
    sweep.add_argument(
        "--limit", type=int, default=None, help="run only the first N instances"
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress the result table (summary only)"
    )

    commands.add_parser("scenarios", help="list the registered sweep scenarios")

    profile = commands.add_parser(
        "profile",
        help="run a scenario under cProfile and print the hottest call sites",
    )
    profile.add_argument(
        "scenario", help="scenario name (see `python -m repro scenarios`)"
    )
    profile.add_argument(
        "--top", type=int, default=25, help="how many call sites to print"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort order",
    )
    profile.add_argument(
        "--limit", type=int, default=None, help="profile only the first N instances"
    )
    profile.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="run against a persistent verdict store (profiles the warm path)",
    )
    profile.set_defaults(handler=_command_profile)

    add_service_commands(commands)
    return parser


def _command_scenarios() -> int:
    for scenario in all_scenarios():
        count = len(scenario.instances())
        tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
        print(f"{scenario.name:<18} {count:>3} instances{tags}  {scenario.description}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    try:
        get_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    result = run_scenario(
        args.scenario, jobs=args.jobs, store=args.store, limit=args.limit
    )
    if args.json == "-":
        print(result.to_json())
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    if not args.quiet and args.json != "-":
        print(result.table())
    elif not args.quiet:
        print(
            f"{len(result.results)} instances: {result.cold_count} solved, "
            f"{result.cached_count} from store, {result.total_seconds:.3f}s total",
            file=sys.stderr,
        )
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """``python -m repro profile <scenario>``: cProfile over one sweep.

    Used to validate engine optimizations: the printout shows where a cold
    (or warm, with ``--store``) scenario run actually spends its time, the
    top call sites first.  Profiling always runs in-process (``jobs=1``) --
    a fork pool would hide the workers from the profiler.
    """
    import cProfile
    import pstats

    try:
        get_scenario(args.scenario)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(
        args.scenario, jobs=1, store=args.store, limit=args.limit
    )
    profiler.disable()
    print(
        f"profiled scenario {args.scenario!r}: {len(result.results)} instances, "
        f"{result.cold_count} solved, {result.cached_count} from store, "
        f"{result.total_seconds:.3f}s total"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "scenarios":
            return _command_scenarios()
        handler = getattr(args, "handler", None)
        if handler is not None:  # service subcommands register their own
            return handler(args)
        return _command_sweep(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
