"""Reduction from ``sat-graph`` to ``3-sat-graph`` (first step of Theorem 23).

Each node's formula is replaced by an equisatisfiable 3-CNF formula obtained
through the Tseytin transformation.  The freshly introduced auxiliary
variables are namespaced with the node's identifier, so adjacent nodes never
share an auxiliary variable and the consistency requirement of ``sat-graph``
only constrains the original variables -- exactly as in the paper's proof.
The reduction is topology-preserving.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Tuple

from repro.boolsat.cnf import to_cnf_tseytin
from repro.boolsat.encoding import decode_formula, encode_formula
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.reductions.base import ClusterReduction


def _identifier_namespace(identifier: str) -> str:
    """A variable-name-safe rendering of an identifier bit string."""
    return f"aux_id{identifier or 'e'}"


class SatGraphToThreeSatGraph(ClusterReduction):
    """Replace every node formula by an equisatisfiable, identifier-namespaced 3-CNF."""

    name = "sat-graph-to-3-sat-graph"
    radius = 0
    identifier_radius = 1

    def cluster(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Dict[Hashable, str]:
        formula = decode_formula(graph.label(node))
        cnf = to_cnf_tseytin(formula, prefix=_identifier_namespace(ids[node]))
        return {"core": encode_formula(cnf.to_formula())}

    def intra_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        return []

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        return [("core", "core")]
