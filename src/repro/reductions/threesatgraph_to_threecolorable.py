"""Reduction from ``3-sat-graph`` to ``3-colorable`` (Theorem 23, Figures 4/12).

Each node ``u`` labeled with a 3-CNF formula is represented by a *formula
gadget*: a palette triangle ``{true, false, ground}``, a literal pair
``{P, ¬P}`` per variable (both adjacent to ``ground`` and to each other), and
a standard two-stage OR gadget per clause whose output node is adjacent to
``false`` and ``ground`` (forcing it to take the ``true`` color).  The gadget
is 3-colorable iff the node's formula is satisfiable, with the literal colors
encoding the satisfying valuation.

For every input edge ``{u, v}`` the clusters are linked by *connector
gadgets* that force equal colors on ``false_u``/``false_v``,
``ground_u``/``ground_v`` and on the positive literal nodes of every variable
shared by the two formulas; hence any 3-coloring of the output graph induces
a globally consistent family of valuations, and vice versa.  The connector
gadget used here consists of two middle nodes (one per cluster) adjacent to
each other and to both endpoints.

The output graph is 3-colorable iff the input Boolean graph is satisfiable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence, Tuple

from repro.boolsat.cnf import CNF, formula_to_cnf_clauses
from repro.boolsat.encoding import decode_formula
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.reductions.base import ClusterReduction

Tag = Hashable

TRUE = ("palette", "true")
FALSE = ("palette", "false")
GROUND = ("palette", "ground")


def _node_cnf(graph: LabeledGraph, node: Node) -> CNF:
    """The node's 3-CNF formula as a :class:`CNF` (clauses of literals)."""
    formula = decode_formula(graph.label(node))
    return formula_to_cnf_clauses(formula)


def _literal_tag(name: str, polarity: bool) -> Tag:
    return ("literal", name, polarity)


def _padded_literals(clause: FrozenSet[Tuple[str, bool]]) -> List[Tuple[str, bool]]:
    """The clause's literals padded to exactly three by repetition."""
    literals = sorted(clause)
    if not literals:
        raise ValueError("empty clauses cannot be represented by the coloring gadget")
    while len(literals) < 3:
        literals.append(literals[-1])
    return literals[:3]


def _shared_variables(graph: LabeledGraph, node: Node, neighbor: Node) -> List[str]:
    """Variables occurring in both endpoints' formulas, sorted."""
    own = decode_formula(graph.label(node)).variables()
    other = decode_formula(graph.label(neighbor)).variables()
    return sorted(own & other)


def _connector_kinds(graph: LabeledGraph, node: Node, neighbor: Node) -> List[Tag]:
    """What gets forced equal across the edge: false, ground, and shared literals."""
    kinds: List[Tag] = [FALSE, GROUND]
    kinds.extend(_literal_tag(name, True) for name in _shared_variables(graph, node, neighbor))
    return kinds


class ThreeSatGraphToThreeColorable(ClusterReduction):
    """``G`` is a satisfiable Boolean graph  iff  ``G'`` is 3-colorable."""

    name = "3-sat-graph-to-3-colorable"
    radius = 1
    identifier_radius = 1

    # ------------------------------------------------------------------
    def cluster(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Dict[Tag, str]:
        cnf = _node_cnf(graph, node)
        tags: Dict[Tag, str] = {TRUE: "", FALSE: "", GROUND: ""}
        for name in sorted(cnf.variables()):
            tags[_literal_tag(name, True)] = ""
            tags[_literal_tag(name, False)] = ""
        for index, clause in enumerate(cnf.clauses):
            for position in range(6):
                tags[("clause", index, position)] = ""
        # Connector middle nodes: one per neighbor and per forced-equal kind.
        for neighbor in graph.neighbors(node):
            for kind in _connector_kinds(graph, node, neighbor):
                tags[("connector", ids[neighbor], kind)] = ""
        return tags

    def intra_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Iterable[Tuple[Tag, Tag]]:
        cnf = _node_cnf(graph, node)
        edges: List[Tuple[Tag, Tag]] = [(TRUE, FALSE), (FALSE, GROUND), (GROUND, TRUE)]
        for name in sorted(cnf.variables()):
            positive = _literal_tag(name, True)
            negative = _literal_tag(name, False)
            edges.append((positive, negative))
            edges.append((positive, GROUND))
            edges.append((negative, GROUND))
        for index, clause in enumerate(cnf.clauses):
            first, second, third = _padded_literals(clause)
            o1, o2, o3 = ("clause", index, 0), ("clause", index, 1), ("clause", index, 2)
            o4, o5, o6 = ("clause", index, 3), ("clause", index, 4), ("clause", index, 5)
            edges.extend(
                [
                    (_literal_tag(*first), o1),
                    (_literal_tag(*second), o2),
                    (o1, o2),
                    (o1, o3),
                    (o2, o3),
                    (o3, o4),
                    (_literal_tag(*third), o5),
                    (o4, o5),
                    (o4, o6),
                    (o5, o6),
                    (o6, FALSE),
                    (o6, GROUND),
                ]
            )
        # Each connector middle node is adjacent to the forced node of its own cluster.
        for neighbor in graph.neighbors(node):
            for kind in _connector_kinds(graph, node, neighbor):
                edges.append((("connector", ids[neighbor], kind), kind))
        return edges

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Tag, Tag]]:
        edges: List[Tuple[Tag, Tag]] = []
        for kind in _connector_kinds(graph, node, neighbor):
            own_middle = ("connector", ids[neighbor], kind)
            other_middle = ("connector", ids[node], kind)
            # middle(u) -- middle(v), middle(u) -- forced node of v's cluster,
            # forced node of u's cluster -- middle(v) is reported from v's side.
            edges.append((own_middle, other_middle))
            edges.append((own_middle, kind))
        return edges
