"""Reduction from ``all-selected`` to ``hamiltonian`` (Proposition 19, Figures 3/10).

Each input node ``u`` of degree ``d`` with neighbors ``v_1 < ... < v_d`` (in
identifier order) is represented by a cycle of length ``max(3, 2d)``
containing, for every neighbor ``v_i``, the two adjacent "ports"
``to(v_i)`` and ``from(v_i)``; dummy nodes pad the cycle when ``d <= 1``.
Every input edge ``{u, v}`` contributes the two inter-cluster edges
``{to_u(v), from_v(u)}`` and ``{from_u(v), to_v(u)}``, so a Hamiltonian cycle
of the output graph can traverse it twice (Euler-tour technique).  If the
label of ``u`` differs from ``1``, an extra degree-1 node ``bad`` is attached
to ``u``'s cycle, which destroys Hamiltonicity.

Hence the output graph is Hamiltonian iff every input node is labeled ``1``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.graphs.identifiers import identifier_key
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.reductions.base import ClusterReduction


def _sorted_neighbors(graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> List[Node]:
    return sorted(graph.neighbors(node), key=lambda v: identifier_key(ids[v]))


def _cycle_tags(graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> List[Hashable]:
    """The tags of the cluster cycle of *node*, in cyclic order."""
    neighbors = _sorted_neighbors(graph, ids, node)
    tags: List[Hashable] = []
    for v in neighbors:
        tags.append(("to", ids[v]))
        tags.append(("from", ids[v]))
    if len(neighbors) == 0:
        tags = [("dummy", 0), ("dummy", 1), ("dummy", 2)]
    elif len(neighbors) == 1:
        tags.append(("dummy", 0))
    return tags


class AllSelectedToHamiltonian(ClusterReduction):
    """``G`` has all labels ``1``  iff  ``G'`` is Hamiltonian."""

    name = "all-selected-to-hamiltonian"
    radius = 1

    def cluster(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Dict[Hashable, str]:
        tags = {tag: "" for tag in _cycle_tags(graph, ids, node)}
        if graph.label(node) != "1":
            tags[("bad",)] = ""
        return tags

    def intra_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        tags = _cycle_tags(graph, ids, node)
        edges = [(tags[i], tags[(i + 1) % len(tags)]) for i in range(len(tags))]
        if graph.label(node) != "1":
            edges.append((("bad",), tags[0]))
        return edges

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        return [
            (("to", ids[neighbor]), ("from", ids[node])),
            (("from", ids[neighbor]), ("to", ids[node])),
        ]
