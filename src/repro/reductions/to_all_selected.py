"""The trivial reduction from any LP property to ``all-selected`` (Remark 17).

Any graph property decided by a locally polynomial machine reduces to
``all-selected`` simply by executing the machine and relabeling every node
with its verdict.  The reduction is topology-preserving.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.interface import NodeMachine
from repro.machines.simulator import execute
from repro.reductions.base import ClusterReduction


class LPToAllSelectedReduction(ClusterReduction):
    """Run an LP decider and replace every label by the node's verdict."""

    name = "LP-to-all-selected"

    def __init__(self, decider: NodeMachine, identifier_radius: int = 1) -> None:
        self.decider = decider
        self.identifier_radius = identifier_radius
        self._cache: Dict[int, Dict[Node, str]] = {}

    def _verdicts(self, graph: LabeledGraph, ids: Mapping[Node, str]) -> Dict[Node, str]:
        key = id(graph)
        if key not in self._cache:
            result = execute(self.decider, graph, ids)
            self._cache[key] = {u: "1" if v else "0" for u, v in result.verdicts().items()}
        return self._cache[key]

    def cluster(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Dict[Hashable, str]:
        return {"core": self._verdicts(graph, ids)[node]}

    def intra_edges(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Iterable[Tuple[Hashable, Hashable]]:
        return []

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        return [("core", "core")]
