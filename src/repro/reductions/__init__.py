"""Locally polynomial reductions (Section 8).

A locally polynomial reduction transforms an input graph ``G`` into a new
graph ``G'`` such that ``G`` has property ``L`` iff ``G'`` has property
``L'``; the transformation is performed node by node, each node of ``G``
emitting a *cluster* of ``G'`` computed from its constant-radius
neighborhood, with edges allowed only inside clusters and between clusters of
adjacent nodes.

The concrete reductions implemented here are exactly those of Section 8:

============================================  ==========================
Reduction                                     Paper reference
============================================  ==========================
LP property  -> all-selected                  Remark 17
all-selected -> eulerian                      Proposition 18 / Figure 9
all-selected -> hamiltonian                   Proposition 19 / Figures 3, 10
not-all-selected -> hamiltonian               Proposition 20 / Figure 11
sat-graph -> 3-sat-graph                      Theorem 23 (first step)
3-sat-graph -> 3-colorable                    Theorem 23 / Figures 4, 12
============================================  ==========================
"""

from repro.reductions.base import (
    ClusterReduction,
    ReductionResult,
    verify_cluster_map,
    verify_reduction_equivalence,
    decide_through_reduction,
)
from repro.reductions.to_all_selected import LPToAllSelectedReduction
from repro.reductions.all_selected_to_eulerian import AllSelectedToEulerian
from repro.reductions.all_selected_to_hamiltonian import AllSelectedToHamiltonian
from repro.reductions.not_all_selected_to_hamiltonian import NotAllSelectedToHamiltonian
from repro.reductions.satgraph_to_threesatgraph import SatGraphToThreeSatGraph
from repro.reductions.threesatgraph_to_threecolorable import ThreeSatGraphToThreeColorable

__all__ = [
    "ClusterReduction",
    "ReductionResult",
    "verify_cluster_map",
    "verify_reduction_equivalence",
    "decide_through_reduction",
    "LPToAllSelectedReduction",
    "AllSelectedToEulerian",
    "AllSelectedToHamiltonian",
    "NotAllSelectedToHamiltonian",
    "SatGraphToThreeSatGraph",
    "ThreeSatGraphToThreeColorable",
]
