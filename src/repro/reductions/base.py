"""The cluster-based reduction framework (Section 8).

A :class:`ClusterReduction` describes, for every node ``u`` of the input
graph, the *cluster* of new nodes representing ``u`` in the output graph, the
edges inside that cluster, and the edges between the clusters of adjacent
nodes.  All three are computed from information available in a
constant-radius neighborhood of ``u`` (typically ``u`` itself, its label, its
identifier and its neighbors' identifiers), which is what makes the reduction
implementable by a locally polynomial machine.

New node identities are pairs ``(u, tag)`` where ``u`` is the owning input
node; the cluster map of the paper is therefore simply ``(u, tag) ↦ u``, and
:func:`verify_cluster_map` checks the two structural conditions: clusters do
not overlap, and edges only connect clusters of equal or adjacent input
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.identifiers import small_identifier_assignment
from repro.graphs.labeled_graph import LabeledGraph, Node

NewNode = Tuple[Node, Hashable]
Edge = Tuple[NewNode, NewNode]


@dataclass
class ReductionResult:
    """The output of applying a reduction to a graph."""

    input_graph: LabeledGraph
    output_graph: LabeledGraph
    cluster_of: Dict[NewNode, Node]

    def cluster_nodes(self, node: Node) -> List[NewNode]:
        """All output nodes belonging to the cluster of *node*."""
        return [w for w, owner in self.cluster_of.items() if owner == node]


class ClusterReduction:
    """Base class for locally polynomial reductions.

    Subclasses implement :meth:`cluster`, :meth:`intra_edges` and
    :meth:`inter_edges`; :meth:`apply` assembles the output graph.  The
    default identifier assignment used by :meth:`apply` is a small
    ``identifier_radius``-locally unique one; reductions whose output depends
    on identifiers (e.g. the Tseytin step of Theorem 23) receive it explicitly.
    """

    name: str = "cluster-reduction"
    #: Radius of the neighborhood a node needs to see to compute its cluster.
    radius: int = 1
    #: Identifier local-uniqueness radius required by the reduction.
    identifier_radius: int = 1

    # ------------------------------------------------------------------
    # The three locally computable pieces
    # ------------------------------------------------------------------
    def cluster(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Dict[Hashable, str]:
        """The cluster of *node*: a mapping ``tag -> label`` of new nodes."""
        raise NotImplementedError

    def intra_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        """Edges inside the cluster of *node*, as pairs of tags."""
        raise NotImplementedError

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        """Edges between the clusters of the adjacent nodes *node* and *neighbor*.

        Returned pairs are ``(tag_in_node_cluster, tag_in_neighbor_cluster)``.
        The assembler calls this once per ordered pair, so implementations may
        report each edge from either side (duplicates are merged).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def apply(
        self, graph: LabeledGraph, ids: Optional[Mapping[Node, str]] = None
    ) -> ReductionResult:
        """Assemble the output graph from the per-node clusters."""
        if ids is None:
            ids = small_identifier_assignment(graph, self.identifier_radius)

        nodes: List[NewNode] = []
        labels: Dict[NewNode, str] = {}
        cluster_of: Dict[NewNode, Node] = {}
        edges: List[Edge] = []

        for u in graph.nodes:
            cluster = self.cluster(graph, ids, u)
            for tag, label in cluster.items():
                new_node: NewNode = (u, tag)
                nodes.append(new_node)
                labels[new_node] = label
                cluster_of[new_node] = u
            for tag_a, tag_b in self.intra_edges(graph, ids, u):
                edges.append(((u, tag_a), (u, tag_b)))

        for u, v in graph.edge_pairs():
            for tag_u, tag_v in self.inter_edges(graph, ids, u, v):
                edges.append(((u, tag_u), (v, tag_v)))
            for tag_v, tag_u in self.inter_edges(graph, ids, v, u):
                edges.append(((v, tag_v), (u, tag_u)))

        output = LabeledGraph(nodes, edges, labels)
        return ReductionResult(input_graph=graph, output_graph=output, cluster_of=cluster_of)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Verification helpers
# ----------------------------------------------------------------------
def verify_cluster_map(result: ReductionResult) -> bool:
    """Check the structural conditions on cluster maps (Section 8).

    * every output node belongs to exactly one cluster (guaranteed by
      construction here, but re-checked), and
    * every output edge connects nodes of the same cluster or of clusters
      whose owning input nodes are adjacent.
    """
    graph = result.input_graph
    output = result.output_graph
    for w in output.nodes:
        if w not in result.cluster_of:
            return False
        if result.cluster_of[w] not in graph:
            return False
    for a, b in output.edge_pairs():
        owner_a = result.cluster_of[a]
        owner_b = result.cluster_of[b]
        if owner_a != owner_b and not graph.has_edge(owner_a, owner_b):
            return False
    return True


def verify_reduction_equivalence(
    reduction: ClusterReduction,
    source_property: Callable[[LabeledGraph], bool],
    target_property: Callable[[LabeledGraph], bool],
    graphs: Sequence[LabeledGraph],
    ids_for: Optional[Callable[[LabeledGraph], Mapping[Node, str]]] = None,
) -> List[Tuple[LabeledGraph, bool, bool]]:
    """Check ``G ∈ L  ⟺  G' ∈ L'`` on every test graph.

    Returns the list of counterexamples as triples
    ``(graph, source_value, target_value)``; an empty list means the
    equivalence held on all inputs.
    """
    failures: List[Tuple[LabeledGraph, bool, bool]] = []
    for graph in graphs:
        ids = ids_for(graph) if ids_for is not None else None
        result = reduction.apply(graph, ids)
        source_value = source_property(graph)
        target_value = target_property(result.output_graph)
        if source_value != target_value:
            failures.append((graph, source_value, target_value))
    return failures


def decide_through_reduction(
    reduction: ClusterReduction,
    target_property: Callable[[LabeledGraph], bool],
    graph: LabeledGraph,
    ids: Optional[Mapping[Node, str]] = None,
) -> bool:
    """Decide the source property by reducing and querying the target property.

    This is the operational content of "``L'`` is at least as hard as ``L``":
    a decider for the target immediately yields one for the source.
    """
    result = reduction.apply(graph, ids)
    return target_property(result.output_graph)
