"""Reduction from ``not-all-selected`` to ``hamiltonian`` (Proposition 20, Figure 11).

Each input node ``u`` of degree ``d`` is represented by *two* cycles (a "top"
and a "bottom" one), each of length ``2d + 3``: the port pairs of the
Proposition 19 construction plus three auxiliary nodes ``x1, x2, x3``.  The
two cycles are joined by the "vertical" edge ``{x2_top, x2_bot}`` at every
node, and additionally by ``{x1_top, x1_bot}`` exactly at the nodes whose
label differs from ``1``.  Inter-cluster edges connect the top cycles of
adjacent clusters and, separately, their bottom cycles.

The top cycles together admit a Hamiltonian cycle of their subgraph, and so do
the bottom cycles.  These two cycles can be merged into a Hamiltonian cycle of
the whole graph iff some cluster offers *two* vertical edges, i.e. iff some
input node is unselected.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.graphs.identifiers import identifier_key
from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.reductions.base import ClusterReduction

_LAYERS = ("top", "bot")


def _sorted_neighbors(graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> List[Node]:
    return sorted(graph.neighbors(node), key=lambda v: identifier_key(ids[v]))


def _layer_cycle_tags(
    graph: LabeledGraph, ids: Mapping[Node, str], node: Node, layer: str
) -> List[Hashable]:
    """The tags of one layer's cycle (length ``2d + 3``), in cyclic order."""
    tags: List[Hashable] = []
    for v in _sorted_neighbors(graph, ids, node):
        tags.append((layer, "to", ids[v]))
        tags.append((layer, "from", ids[v]))
    tags.extend([(layer, "x1"), (layer, "x2"), (layer, "x3")])
    return tags


class NotAllSelectedToHamiltonian(ClusterReduction):
    """``G`` has some label different from ``1``  iff  ``G'`` is Hamiltonian."""

    name = "not-all-selected-to-hamiltonian"
    radius = 1

    def cluster(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Dict[Hashable, str]:
        tags: Dict[Hashable, str] = {}
        for layer in _LAYERS:
            for tag in _layer_cycle_tags(graph, ids, node, layer):
                tags[tag] = ""
        return tags

    def intra_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        edges: List[Tuple[Hashable, Hashable]] = []
        for layer in _LAYERS:
            tags = _layer_cycle_tags(graph, ids, node, layer)
            edges.extend((tags[i], tags[(i + 1) % len(tags)]) for i in range(len(tags)))
        edges.append((("top", "x2"), ("bot", "x2")))
        if graph.label(node) != "1":
            edges.append((("top", "x1"), ("bot", "x1")))
        return edges

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        edges: List[Tuple[Hashable, Hashable]] = []
        for layer in _LAYERS:
            edges.append(((layer, "to", ids[neighbor]), (layer, "from", ids[node])))
            edges.append(((layer, "from", ids[neighbor]), (layer, "to", ids[node])))
        return edges
