"""Reduction from ``all-selected`` to ``eulerian`` (Proposition 18, Figure 9).

Each input node ``u`` is represented by two copies ``u0`` and ``u1``; each
input edge ``{u, v}`` becomes the four edges ``{u_i, v_j}``.  If the label of
``u`` is not ``1``, the extra "vertical" edge ``{u0, u1}`` is added, giving
both copies odd degree.  Hence all degrees of the output graph are even
(Eulerian) iff every input node is labeled ``1``.

Single-node graphs are treated as a special case (as allowed in the paper):
a selected single node maps to a single node (trivially Eulerian), an
unselected one maps to a two-node path (not Eulerian).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.reductions.base import ClusterReduction


class AllSelectedToEulerian(ClusterReduction):
    """``G`` has all labels ``1``  iff  ``G'`` is Eulerian."""

    name = "all-selected-to-eulerian"
    radius = 0

    def cluster(self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node) -> Dict[Hashable, str]:
        selected = graph.label(node) == "1"
        if graph.cardinality() == 1:
            return {"copy0": ""} if selected else {"copy0": "", "copy1": ""}
        return {"copy0": "", "copy1": ""}

    def intra_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        selected = graph.label(node) == "1"
        if graph.cardinality() == 1:
            return [] if selected else [("copy0", "copy1")]
        if selected:
            return []
        return [("copy0", "copy1")]

    def inter_edges(
        self, graph: LabeledGraph, ids: Mapping[Node, str], node: Node, neighbor: Node
    ) -> Iterable[Tuple[Hashable, Hashable]]:
        return [
            ("copy0", "copy0"),
            ("copy0", "copy1"),
            ("copy1", "copy0"),
            ("copy1", "copy1"),
        ]
