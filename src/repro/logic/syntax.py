"""The formula AST of the paper's logics (Table 1, Section 5.1).

Atomic formulas refer to the unary relations ``⊙_i`` and binary relations
``⇀_i`` of a structure, to equality, and to second-order (relation) variables.
Connectives are negation, disjunction, and the derived conjunction,
implication and equivalence.  First-order quantification comes in the
unbounded form ``∃x φ`` and the bounded form ``∃x −⇀↽− y φ`` ("there is an x
connected to y"); the radius-``r`` variant ``∃x ≤r−⇀↽− y φ`` of the paper's
syntactic sugar is provided as a primitive (:class:`LocalExists`).
Second-order quantification binds relation variables of a fixed arity.

Formulas are immutable dataclasses, so they can be hashed, compared and used
as dictionary keys (the evaluator exploits this for memoization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Sequence, Set, Tuple, Union


@dataclass(frozen=True)
class RelationVariable:
    """A second-order variable of a fixed arity (``Vso(k)`` in the paper)."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError("relation variables must have arity at least 1")

    def __str__(self) -> str:
        return self.name


class Formula:
    """Base class of all formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


# ----------------------------------------------------------------------
# Atomic formulas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TruthConstant(Formula):
    """The constants ``⊤`` and ``⊥``."""

    value: bool

    def __str__(self) -> str:
        return "⊤" if self.value else "⊥"


TOP = TruthConstant(True)
BOTTOM = TruthConstant(False)


@dataclass(frozen=True)
class UnaryAtom(Formula):
    """``⊙_i x`` -- the element named by *variable* lies in the i-th unary relation."""

    index: int
    variable: str

    def __str__(self) -> str:
        return f"⊙{self.index}({self.variable})"


@dataclass(frozen=True)
class BinaryAtom(Formula):
    """``x ⇀_i y`` -- the pair lies in the i-th binary relation."""

    index: int
    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} ⇀{self.index} {self.right}"


@dataclass(frozen=True)
class Equal(Formula):
    """``x = y``."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class RelationAtom(Formula):
    """``R(x_1, ..., x_k)`` for a second-order variable ``R`` of arity ``k``."""

    relation: RelationVariable
    arguments: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.arguments) != self.relation.arity:
            raise ValueError(
                f"relation {self.relation.name} has arity {self.relation.arity}, "
                f"got {len(self.arguments)} arguments"
            )

    def __str__(self) -> str:
        return f"{self.relation.name}({', '.join(self.arguments)})"


# ----------------------------------------------------------------------
# Connectives
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication (derived connective, kept as a node for readability)."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} → {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    """Equivalence (derived connective)."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ↔ {self.right})"


# ----------------------------------------------------------------------
# First-order quantifiers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Exists(Formula):
    """Unbounded first-order existential quantification ``∃x φ``."""

    variable: str
    body: Formula

    def __str__(self) -> str:
        return f"∃{self.variable} ({self.body})"


@dataclass(frozen=True)
class Forall(Formula):
    """Unbounded first-order universal quantification ``∀x φ``."""

    variable: str
    body: Formula

    def __str__(self) -> str:
        return f"∀{self.variable} ({self.body})"


@dataclass(frozen=True)
class BoundedExists(Formula):
    """Bounded existential quantification ``∃x −⇀↽− y φ`` (x ranges over elements connected to y)."""

    variable: str
    anchor: str
    body: Formula

    def __post_init__(self) -> None:
        if self.variable == self.anchor:
            raise ValueError("the bound variable must differ from the anchor variable")

    def __str__(self) -> str:
        return f"∃{self.variable}−⇀↽−{self.anchor} ({self.body})"


@dataclass(frozen=True)
class BoundedForall(Formula):
    """Bounded universal quantification ``∀x −⇀↽− y φ``."""

    variable: str
    anchor: str
    body: Formula

    def __post_init__(self) -> None:
        if self.variable == self.anchor:
            raise ValueError("the bound variable must differ from the anchor variable")

    def __str__(self) -> str:
        return f"∀{self.variable}−⇀↽−{self.anchor} ({self.body})"


@dataclass(frozen=True)
class LocalExists(Formula):
    """Radius-``r`` existential quantification ``∃x ≤r−⇀↽− y φ``.

    Semantically, x ranges over the elements at distance at most ``radius``
    from the anchor in the structure's connection graph -- the paper defines
    this as nested bounded quantification; we treat it as a primitive for
    efficiency.  The anchor itself (distance 0) is included.
    """

    variable: str
    anchor: str
    radius: int
    body: Formula

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be nonnegative")

    def __str__(self) -> str:
        return f"∃{self.variable} ≤{self.radius}−⇀↽− {self.anchor} ({self.body})"


@dataclass(frozen=True)
class LocalForall(Formula):
    """Radius-``r`` universal quantification ``∀x ≤r−⇀↽− y φ``."""

    variable: str
    anchor: str
    radius: int
    body: Formula

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be nonnegative")

    def __str__(self) -> str:
        return f"∀{self.variable} ≤{self.radius}−⇀↽− {self.anchor} ({self.body})"


# ----------------------------------------------------------------------
# Second-order quantifiers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SOExists(Formula):
    """Existential second-order quantification ``∃R φ``."""

    relation: RelationVariable
    body: Formula

    def __str__(self) -> str:
        return f"∃{self.relation.name} ({self.body})"


@dataclass(frozen=True)
class SOForall(Formula):
    """Universal second-order quantification ``∀R φ``."""

    relation: RelationVariable
    body: Formula

    def __str__(self) -> str:
        return f"∀{self.relation.name} ({self.body})"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def conjunction(formulas: Iterable[Formula]) -> Formula:
    """The conjunction of the given formulas (``⊤`` if empty)."""
    result: Formula | None = None
    for item in formulas:
        result = item if result is None else And(result, item)
    return result if result is not None else TOP


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """The disjunction of the given formulas (``⊥`` if empty)."""
    result: Formula | None = None
    for item in formulas:
        result = item if result is None else Or(result, item)
    return result if result is not None else BOTTOM


def so_exists_many(relations: Sequence[RelationVariable], body: Formula) -> Formula:
    """``∃R_1 ... ∃R_n body``."""
    result = body
    for relation in reversed(relations):
        result = SOExists(relation, result)
    return result


def so_forall_many(relations: Sequence[RelationVariable], body: Formula) -> Formula:
    """``∀R_1 ... ∀R_n body``."""
    result = body
    for relation in reversed(relations):
        result = SOForall(relation, result)
    return result


def free_variables(formula: Formula) -> Set[Union[str, RelationVariable]]:
    """All free variables (first- and second-order) of *formula*."""
    return free_first_order_variables(formula) | free_relation_variables(formula)


def free_first_order_variables(formula: Formula) -> Set[str]:
    """The free first-order variables of *formula* (Table 1's ``free`` column)."""
    if isinstance(formula, TruthConstant):
        return set()
    if isinstance(formula, UnaryAtom):
        return {formula.variable}
    if isinstance(formula, BinaryAtom):
        return {formula.left, formula.right}
    if isinstance(formula, Equal):
        return {formula.left, formula.right}
    if isinstance(formula, RelationAtom):
        return set(formula.arguments)
    if isinstance(formula, Not):
        return free_first_order_variables(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return free_first_order_variables(formula.left) | free_first_order_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_first_order_variables(formula.body) - {formula.variable}
    if isinstance(formula, (BoundedExists, BoundedForall, LocalExists, LocalForall)):
        return (free_first_order_variables(formula.body) - {formula.variable}) | {formula.anchor}
    if isinstance(formula, (SOExists, SOForall)):
        return free_first_order_variables(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")


def free_relation_variables(formula: Formula) -> Set[RelationVariable]:
    """The free second-order variables of *formula*."""
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal)):
        return set()
    if isinstance(formula, RelationAtom):
        return {formula.relation}
    if isinstance(formula, Not):
        return free_relation_variables(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return free_relation_variables(formula.left) | free_relation_variables(formula.right)
    if isinstance(formula, (Exists, Forall, BoundedExists, BoundedForall, LocalExists, LocalForall)):
        return free_relation_variables(formula.body)
    if isinstance(formula, (SOExists, SOForall)):
        return free_relation_variables(formula.body) - {formula.relation}
    raise TypeError(f"unknown formula node {formula!r}")


def is_sentence(formula: Formula) -> bool:
    """Whether the formula has no free variables at all."""
    return not free_variables(formula)


def substitute(formula: Formula, mapping: dict) -> Formula:
    """Capture-avoiding substitution of free first-order variables by other variable names.

    Only renaming substitutions (variable to variable) are supported, which is
    all the paper's constructions need (``φ[x ↦ y]``).
    """

    def rename(name: str) -> str:
        return mapping.get(name, name)

    if isinstance(formula, TruthConstant):
        return formula
    if isinstance(formula, UnaryAtom):
        return UnaryAtom(formula.index, rename(formula.variable))
    if isinstance(formula, BinaryAtom):
        return BinaryAtom(formula.index, rename(formula.left), rename(formula.right))
    if isinstance(formula, Equal):
        return Equal(rename(formula.left), rename(formula.right))
    if isinstance(formula, RelationAtom):
        return RelationAtom(formula.relation, tuple(rename(a) for a in formula.arguments))
    if isinstance(formula, Not):
        return Not(substitute(formula.operand, mapping))
    if isinstance(formula, (And, Or, Implies, Iff)):
        cls = type(formula)
        return cls(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, (Exists, Forall)):
        cls = type(formula)
        inner = {k: v for k, v in mapping.items() if k != formula.variable}
        return cls(formula.variable, substitute(formula.body, inner))
    if isinstance(formula, (BoundedExists, BoundedForall)):
        cls = type(formula)
        inner = {k: v for k, v in mapping.items() if k != formula.variable}
        return cls(formula.variable, rename(formula.anchor), substitute(formula.body, inner))
    if isinstance(formula, (LocalExists, LocalForall)):
        cls = type(formula)
        inner = {k: v for k, v in mapping.items() if k != formula.variable}
        return cls(formula.variable, rename(formula.anchor), formula.radius, substitute(formula.body, inner))
    if isinstance(formula, (SOExists, SOForall)):
        cls = type(formula)
        return cls(formula.relation, substitute(formula.body, mapping))
    raise TypeError(f"unknown formula node {formula!r}")
