"""Spanning-tree based example formulas and their strategies (Section 5.2).

After Example 9, the paper lists three further graph properties expressible
as ``Σ^lfo_3`` formulas through the spanning-tree construction of Example 8:

* ``acyclic`` -- Eve provides a spanning tree and every node checks that all
  its incident edges belong to it;
* ``odd`` -- Eve provides a spanning tree and aggregates a modulo-two counter
  from the leaves to the root;
* ``non-2-colorable`` -- Eve retraces an odd cycle, roots a spanning tree on
  it, and propagates a modulo-two counter around the cycle.

This module builds those formulas, and -- because exhaustively quantifying
over the binary spanning-tree relation is exponential -- it also implements
the *strategies* the paper describes in prose: Eve's canonical first move
(a spanning tree / odd cycle), her response to Adam's challenge (the charge
assignment of Example 6), and Adam's refutation of a cyclic "forest".  The
game evaluator :func:`eve_wins_with_strategy` plays these strategies against
an exhaustive Adam, turning "Eve has a winning strategy" into executable
checks that scale beyond brute-force second-order quantification.

The ``odd`` formula is parameterized by a degree bound: the paper implements
the modulo-two aggregation with a finite automaton reading the children in
some order chosen by Eve; on graphs of bounded degree the same computation
can be expressed directly with threshold counting in BF, which is the
substitution used here (the separation results of Section 9 are stated for
bounded structural degree anyway).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.graphs.structures import node_element, structural_representation
from repro.logic.examples import (
    CHALLENGE,
    CHARGE,
    PARENT,
    UNIQUE_FLAG,
    points_to_unique,
    root,
)
from repro.logic.semantics import evaluate
from repro.logic.shorthands import exists_node, forall_node, forall_nodes_sentence
from repro.logic.syntax import (
    TOP,
    And,
    Equal,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    conjunction,
    disjunction,
)

__all__ = [
    "CYCLE",
    "COUNTER",
    "SUBTREE_PARITY",
    "acyclic_formula",
    "odd_formula",
    "non_two_colorable_formula",
    "spanning_tree_parent_pairs",
    "charge_response",
    "unique_flag_response",
    "subtree_parity_set",
    "odd_cycle_witness",
    "adam_refutation_challenge",
    "eve_wins_with_strategy",
    "acyclic_strategy_verdict",
    "odd_strategy_verdict",
    "non_two_colorable_strategy_verdict",
]

CYCLE = RelationVariable("R", 2)
COUNTER = RelationVariable("C", 1)
SUBTREE_PARITY = RelationVariable("D", 1)


# ----------------------------------------------------------------------
# Formula building blocks
# ----------------------------------------------------------------------
def _edge_in_tree(variable: str, neighbor: str, parent: RelationVariable = PARENT) -> Formula:
    """The graph edge ``{variable, neighbor}`` is a tree edge (in either orientation)."""
    return Or(RelationAtom(parent, (variable, neighbor)), RelationAtom(parent, (neighbor, variable)))


def all_incident_edges_in_tree(variable: str, parent: RelationVariable = PARENT) -> Formula:
    """Every edge incident to the node is a tree edge (the ``acyclic`` local check)."""
    neighbor = f"_ae_{variable}"
    return forall_node(neighbor, variable, _edge_in_tree(variable, neighbor, parent))


def acyclic_formula() -> Formula:
    """The ``Σ^lfo_3`` formula for ``acyclic`` sketched after Example 9.

    Eve provides a spanning tree (validated by ``PointsToUnique[Root]``, so
    Adam can refute cycles and duplicate roots); every node additionally
    checks that all of its incident edges belong to the tree.  A graph all of
    whose edges form a spanning tree has no cycles, and conversely.
    """
    matrix = forall_nodes_sentence(
        "x", And(points_to_unique("x", root), all_incident_edges_in_tree("x"))
    )
    return SOExists(
        PARENT,
        SOForall(CHALLENGE, SOExists(CHARGE, SOExists(UNIQUE_FLAG, matrix))),
    )


def _distinct(variables: Sequence[str]) -> Formula:
    """All the listed variables denote pairwise distinct elements."""
    return conjunction(
        Not(Equal(a, b)) for index, a in enumerate(variables) for b in variables[index + 1 :]
    )


def _is_child_with(variable: str, child: str, condition: Optional[Formula],
                   parent: RelationVariable) -> Formula:
    """``child`` is a child of ``variable`` in the tree, optionally satisfying *condition*."""
    base = RelationAtom(parent, (child, variable))
    if condition is None:
        return base
    return And(base, condition)


def at_least_k_children(variable: str, k: int, condition_of, parent: RelationVariable = PARENT,
                        tag: str = "") -> Formula:
    """There are at least ``k`` distinct children of the node satisfying the condition.

    ``condition_of`` maps a fresh variable name to the condition formula (or
    returns ``None`` for "no extra condition").
    """
    if k == 0:
        return TOP
    names = [f"_c{tag}{k}_{i}_{variable}" for i in range(k)]
    body: Formula = _distinct(names)
    for name in names:
        body = And(body, _is_child_with(variable, name, condition_of(name), parent))
    result = body
    for name in reversed(names):
        result = exists_node(name, variable, result)
    return result


def exactly_k_children(variable: str, k: int, condition_of, parent: RelationVariable = PARENT,
                       tag: str = "") -> Formula:
    """Exactly ``k`` distinct children of the node satisfy the condition."""
    return And(
        at_least_k_children(variable, k, condition_of, parent, tag=f"{tag}a"),
        Not(at_least_k_children(variable, k + 1, condition_of, parent, tag=f"{tag}b")),
    )


def even_number_of_odd_children(variable: str, max_degree: int,
                                parity: RelationVariable = SUBTREE_PARITY,
                                parent: RelationVariable = PARENT) -> Formula:
    """The number of children with odd subtree cardinality is even (threshold counting)."""
    condition_of = lambda name: RelationAtom(parity, (name,))  # noqa: E731 -- tiny schema
    cases = [
        exactly_k_children(variable, k, condition_of, parent, tag=f"e{k}")
        for k in range(0, max_degree + 1, 2)
    ]
    return disjunction(cases)


def odd_formula(max_degree: int = 3) -> Formula:
    """The ``Σ^lfo_3`` formula for ``odd`` (odd number of nodes), for bounded degree.

    Eve provides a spanning tree together with the set ``D`` of nodes whose
    subtree has odd cardinality.  Every node checks the modulo-two recurrence
    ``D(x) <-> (the number of children in D is even)`` -- a subtree has odd
    cardinality exactly if an even number of its child subtrees do -- and the
    root checks ``D(root)``.  The child counting uses thresholds up to
    *max_degree*, the degree bound of the graphs under consideration.
    """
    parity_recurrence = Iff(
        RelationAtom(SUBTREE_PARITY, ("x",)),
        even_number_of_odd_children("x", max_degree),
    )
    root_is_odd = Implies(root("x"), RelationAtom(SUBTREE_PARITY, ("x",)))
    matrix = forall_nodes_sentence(
        "x",
        And(points_to_unique("x", root), And(parity_recurrence, root_is_odd)),
    )
    return SOExists(
        PARENT,
        SOForall(
            CHALLENGE,
            SOExists(CHARGE, SOExists(UNIQUE_FLAG, SOExists(SUBTREE_PARITY, matrix))),
        ),
    )


def on_cycle(variable: str, cycle: RelationVariable = CYCLE) -> Formula:
    """The node is touched by the retraced cycle relation ``R``."""
    neighbor = f"_oc_{variable}"
    return exists_node(
        neighbor,
        variable,
        Or(RelationAtom(cycle, (variable, neighbor)), RelationAtom(cycle, (neighbor, variable))),
    )


def unique_cycle_successor(variable: str, cycle: RelationVariable = CYCLE) -> Formula:
    """The node has exactly one ``R``-successor among its neighbors."""
    succ, other = f"_us_{variable}", f"_uso_{variable}"
    return exists_node(
        succ,
        variable,
        And(
            RelationAtom(cycle, (variable, succ)),
            forall_node(other, variable, Implies(RelationAtom(cycle, (variable, other)), Equal(other, succ))),
        ),
    )


def unique_cycle_predecessor(variable: str, cycle: RelationVariable = CYCLE) -> Formula:
    """The node has exactly one ``R``-predecessor among its neighbors."""
    pred, other = f"_up2_{variable}", f"_up2o_{variable}"
    return exists_node(
        pred,
        variable,
        And(
            RelationAtom(cycle, (pred, variable)),
            forall_node(other, variable, Implies(RelationAtom(cycle, (other, variable)), Equal(other, pred))),
        ),
    )


def counter_step(variable: str, cycle: RelationVariable = CYCLE,
                 counter: RelationVariable = COUNTER) -> Formula:
    """The modulo-two counter flips along the cycle, except at the root where it repeats."""
    pred = f"_cs_{variable}"
    same = Iff(RelationAtom(counter, (variable,)), RelationAtom(counter, (pred,)))
    flip = Iff(RelationAtom(counter, (variable,)), Not(RelationAtom(counter, (pred,))))
    return exists_node(
        pred,
        variable,
        And(
            RelationAtom(cycle, (pred, variable)),
            And(Implies(root(variable), same), Implies(Not(root(variable)), flip)),
        ),
    )


def non_two_colorable_formula() -> Formula:
    """The ``Σ^lfo_3`` formula for ``non-2-colorable`` sketched after Example 9.

    A graph is non-2-colorable iff it contains an odd cycle.  Eve retraces
    such a cycle with the binary relation ``R`` (consistently oriented),
    constructs a spanning tree rooted on the cycle, and propagates a
    modulo-two counter ``C`` around it.  The root checks that it carries the
    same counter value as its ``R``-predecessor while every other cycle node
    flips; since the root is unique, the cycle through it must be odd.
    """
    cycle_checks = Implies(
        on_cycle("x"),
        And(And(unique_cycle_successor("x"), unique_cycle_predecessor("x")), counter_step("x")),
    )
    root_on_cycle = Implies(root("x"), on_cycle("x"))
    matrix = forall_nodes_sentence(
        "x",
        And(points_to_unique("x", root), And(cycle_checks, root_on_cycle)),
    )
    return SOExists(
        CYCLE,
        SOExists(
            PARENT,
            SOExists(
                COUNTER,
                SOForall(CHALLENGE, SOExists(CHARGE, SOExists(UNIQUE_FLAG, matrix))),
            ),
        ),
    )


# ----------------------------------------------------------------------
# Eve's strategies (her concrete moves, as described in the paper's prose)
# ----------------------------------------------------------------------
def spanning_tree_parent_pairs(graph: LabeledGraph, tree_root: Optional[Node] = None) -> FrozenSet[Tuple[Node, Node]]:
    """A BFS spanning tree as a parent relation ``P`` with ``P(root, root)``."""
    start = tree_root if tree_root is not None else graph.nodes[0]
    parent: Dict[Node, Node] = {start: start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in parent:
                parent[v] = u
                queue.append(v)
    return frozenset((child, par) for child, par in parent.items())


def _roots_of(parent_pairs: Iterable[Tuple[Node, Node]]) -> List[Node]:
    return [child for child, par in parent_pairs if child == par]


def _children_map(parent_pairs: Iterable[Tuple[Node, Node]]) -> Dict[Node, List[Node]]:
    children: Dict[Node, List[Node]] = {}
    for child, par in parent_pairs:
        if child != par:
            children.setdefault(par, []).append(child)
    return children


def charge_response(
    graph: LabeledGraph,
    parent_pairs: FrozenSet[Tuple[Node, Node]],
    challenge: FrozenSet[Node],
) -> FrozenSet[Node]:
    """Eve's charge assignment ``Y`` (Example 6): positive at roots, flipped inside ``X``.

    Traverses each tree of the forest top-down, starting positively at the
    root and inverting the charge at every node belonging to the challenge
    set.  Nodes not reachable from any root (which only happens when Adam's
    claim of a cycle is correct) keep a default positive charge.
    """
    children = _children_map(parent_pairs)
    positive: Set[Node] = set()
    for tree_root in _roots_of(parent_pairs):
        charge_of: Dict[Node, bool] = {tree_root: True}
        stack = [tree_root]
        while stack:
            node = stack.pop()
            if charge_of[node]:
                positive.add(node)
            for child in children.get(node, []):
                charge_of[child] = (
                    not charge_of[node] if child in challenge else charge_of[node]
                )
                stack.append(child)
    return frozenset(positive)


def unique_flag_response(
    target_nodes: Iterable[Node], challenge: FrozenSet[Node], graph: LabeledGraph
) -> FrozenSet[Node]:
    """Eve's Boolean flag ``Z`` (Example 8): "the unique target node lies in ``X``".

    ``Z`` is an all-or-nothing set: every node carries the same bit, namely
    whether the (claimed unique) target node belongs to Adam's challenge set.
    """
    targets = list(target_nodes)
    if targets and targets[0] in challenge:
        return frozenset(graph.nodes)
    return frozenset()


def subtree_parity_set(parent_pairs: FrozenSet[Tuple[Node, Node]]) -> FrozenSet[Node]:
    """The set ``D`` of nodes whose subtree has odd cardinality."""
    children = _children_map(parent_pairs)
    sizes: Dict[Node, int] = {}

    def size_of(node: Node) -> int:
        if node not in sizes:
            sizes[node] = 1 + sum(size_of(child) for child in children.get(node, []))
        return sizes[node]

    nodes = {child for child, _ in parent_pairs} | {par for _, par in parent_pairs}
    return frozenset(node for node in nodes if size_of(node) % 2 == 1)


def odd_cycle_witness(graph: LabeledGraph) -> Optional[Tuple[FrozenSet[Tuple[Node, Node]], FrozenSet[Node], Node]]:
    """An oriented odd cycle ``R``, its alternating counter set ``C``, and a root on it.

    Returns ``None`` when the graph is bipartite (2-colorable).  The cycle is
    found through the standard BFS layering argument: an edge inside a BFS
    layer closes an odd cycle through the two endpoints' lowest common
    ancestor.
    """
    start = graph.nodes[0]
    parent: Dict[Node, Optional[Node]] = {start: None}
    depth: Dict[Node, int] = {start: 0}
    queue = deque([start])
    offending: Optional[Tuple[Node, Node]] = None
    while queue and offending is None:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in depth:
                depth[v] = depth[u] + 1
                parent[v] = u
                queue.append(v)
            elif depth[v] == depth[u] and v != parent.get(u):
                offending = (u, v)
                break
    if offending is None:
        return None

    u, v = offending
    # Walk both endpoints up to their lowest common ancestor.
    path_u: List[Node] = [u]
    path_v: List[Node] = [v]
    a, b = u, v
    while a != b:
        a = parent[a]  # type: ignore[assignment]
        b = parent[b]  # type: ignore[assignment]
        path_u.append(a)
        path_v.append(b)
    # Cycle: u -> ... -> lca -> ... -> v -> u (odd length because depths match).
    cycle_nodes = path_u + list(reversed(path_v[:-1]))
    oriented = frozenset(
        (cycle_nodes[i], cycle_nodes[(i + 1) % len(cycle_nodes)]) for i in range(len(cycle_nodes))
    )
    counter = frozenset(cycle_nodes[i] for i in range(len(cycle_nodes)) if i % 2 == 0)
    return oriented, counter, cycle_nodes[0]


def adam_refutation_challenge(
    graph: LabeledGraph, parent_pairs: FrozenSet[Tuple[Node, Node]]
) -> Optional[FrozenSet[Node]]:
    """Adam's refuting challenge set ``X`` when ``P`` is not a forest (Example 6).

    Follows parent pointers from every node; if some node never reaches a
    root, the walk must enter a directed cycle, and Adam challenges a single
    node of that cycle.  Returns ``None`` when ``P`` really is a forest.
    """
    parent_of = {child: par for child, par in parent_pairs}
    roots = set(_roots_of(parent_pairs))
    for start in graph.nodes:
        seen: List[Node] = []
        current = start
        visited: Set[Node] = set()
        while current in parent_of and current not in roots:
            if current in visited:
                cycle_start = seen.index(current)
                return frozenset({seen[cycle_start]})
            visited.add(current)
            seen.append(current)
            current = parent_of[current]
        if current not in parent_of and current not in roots:
            # A node without a parent pointer that is not a root: Eve's move is
            # malformed; challenging it exposes the defect.
            return frozenset({current})
    return None


# ----------------------------------------------------------------------
# Playing the game with explicit strategies
# ----------------------------------------------------------------------
def _interpretation_for(graph: LabeledGraph, nodes: Iterable[Node]) -> FrozenSet[Tuple[object, ...]]:
    return frozenset((node_element(u),) for u in nodes)


def _pair_interpretation(graph: LabeledGraph, pairs: Iterable[Tuple[Node, Node]]) -> FrozenSet[Tuple[object, ...]]:
    return frozenset((node_element(a), node_element(b)) for a, b in pairs)


def eve_wins_with_strategy(
    graph: LabeledGraph,
    matrix: Formula,
    first_move: Mapping[RelationVariable, FrozenSet[Tuple[object, ...]]],
    response,
) -> bool:
    """Play ``∃(first move) ∀X ∃(response) matrix`` with Eve's explicit strategy.

    *first_move* interprets the relations Eve fixes before Adam's challenge;
    *response* maps a challenge set of nodes to the interpretations Eve
    answers with (at least ``Y``, possibly also ``Z`` and further sets).  Adam
    is exhaustive: all subsets of nodes are tried as challenges, so a ``True``
    result certifies that the displayed strategy wins, and hence that the
    graph satisfies the corresponding ``Σ^lfo_3`` sentence.
    """
    structure = structural_representation(graph)
    for size in range(graph.cardinality() + 1):
        for subset in itertools.combinations(graph.nodes, size):
            challenge = frozenset(subset)
            assignment: Dict[object, object] = dict(first_move)
            assignment[CHALLENGE] = _interpretation_for(graph, challenge)
            assignment.update(response(challenge))
            if not evaluate(structure, matrix, assignment):
                return False
    return True


def acyclic_strategy_verdict(graph: LabeledGraph) -> bool:
    """Whether Eve's canonical strategy wins the ``acyclic`` game on *graph*.

    On acyclic graphs this returns ``True`` (certifying membership); on graphs
    with a cycle Eve's canonical spanning tree cannot cover all edges, so the
    verdict is ``False`` (her strategy loses; Proposition-style refutations of
    *every* strategy are exercised on tiny graphs in the test suite).
    """
    parent_pairs = spanning_tree_parent_pairs(graph)
    matrix = forall_nodes_sentence(
        "x", And(points_to_unique("x", root), all_incident_edges_in_tree("x"))
    )
    first_move = {PARENT: _pair_interpretation(graph, parent_pairs)}

    def response(challenge: FrozenSet[Node]):
        return {
            CHARGE: _interpretation_for(graph, charge_response(graph, parent_pairs, challenge)),
            UNIQUE_FLAG: _interpretation_for(
                graph, unique_flag_response(_roots_of(parent_pairs), challenge, graph)
            ),
        }

    return eve_wins_with_strategy(graph, matrix, first_move, response)


def odd_strategy_verdict(graph: LabeledGraph, max_degree: Optional[int] = None) -> bool:
    """Whether Eve's canonical strategy wins the ``odd`` game on *graph*."""
    bound = max_degree if max_degree is not None else graph.max_degree()
    parent_pairs = spanning_tree_parent_pairs(graph)
    parity = subtree_parity_set(parent_pairs)
    parity_recurrence = Iff(
        RelationAtom(SUBTREE_PARITY, ("x",)),
        even_number_of_odd_children("x", bound),
    )
    root_is_odd = Implies(root("x"), RelationAtom(SUBTREE_PARITY, ("x",)))
    matrix = forall_nodes_sentence(
        "x", And(points_to_unique("x", root), And(parity_recurrence, root_is_odd))
    )
    first_move = {PARENT: _pair_interpretation(graph, parent_pairs)}

    def response(challenge: FrozenSet[Node]):
        return {
            CHARGE: _interpretation_for(graph, charge_response(graph, parent_pairs, challenge)),
            UNIQUE_FLAG: _interpretation_for(
                graph, unique_flag_response(_roots_of(parent_pairs), challenge, graph)
            ),
            SUBTREE_PARITY: _interpretation_for(graph, parity),
        }

    return eve_wins_with_strategy(graph, matrix, first_move, response)


def non_two_colorable_strategy_verdict(graph: LabeledGraph) -> bool:
    """Whether Eve's canonical strategy wins the ``non-2-colorable`` game on *graph*."""
    witness = odd_cycle_witness(graph)
    if witness is None:
        return False
    oriented, counter, cycle_root = witness
    parent_pairs = spanning_tree_parent_pairs(graph, tree_root=cycle_root)

    cycle_checks = Implies(
        on_cycle("x"),
        And(And(unique_cycle_successor("x"), unique_cycle_predecessor("x")), counter_step("x")),
    )
    root_on_cycle = Implies(root("x"), on_cycle("x"))
    matrix = forall_nodes_sentence(
        "x", And(points_to_unique("x", root), And(cycle_checks, root_on_cycle))
    )
    first_move = {
        CYCLE: _pair_interpretation(graph, oriented),
        PARENT: _pair_interpretation(graph, parent_pairs),
        COUNTER: _interpretation_for(graph, counter),
    }

    def response(challenge: FrozenSet[Node]):
        return {
            CHARGE: _interpretation_for(graph, charge_response(graph, parent_pairs, challenge)),
            UNIQUE_FLAG: _interpretation_for(
                graph, unique_flag_response(_roots_of(parent_pairs), challenge, graph)
            ),
        }

    return eve_wins_with_strategy(graph, matrix, first_move, response)
