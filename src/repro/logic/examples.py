"""The example formulas of Section 5.2 of the paper.

Each function builds the formula exactly as presented in the paper (Examples
4-10) and returns it as an AST.  The formulas serve two purposes:

* their *syntactic class* in the local second-order hierarchy is the
  alternation-based locality measure of Figure 7, computed by
  :func:`repro.logic.fragments.classify_local_second_order`;
* the smaller ones are *model checked* against the ground-truth property
  checkers of :mod:`repro.properties` in the test suite (on small graphs, and
  with the node-only/locality restrictions of
  :class:`repro.logic.semantics.EvaluationOptions`, which do not affect their
  truth values -- see the module docstring of :mod:`repro.logic.semantics`).
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.logic.shorthands import (
    exists_node,
    exists_node_within,
    forall_node,
    forall_node_within,
    forall_nodes_sentence,
    is_selected,
)
from repro.logic.syntax import (
    And,
    Equal,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    conjunction,
    disjunction,
)

ThetaSchema = Callable[[str], Formula]
"""A formula schema instantiated at a first-order variable, like the paper's ``ϑ(x)``."""


# ----------------------------------------------------------------------
# Example 4: all-selected (LFO)
# ----------------------------------------------------------------------
def all_selected_formula() -> Formula:
    """``∀◦x IsSelected(x)`` -- every node is labeled with the string ``1``."""
    return forall_nodes_sentence("x", is_selected("x"))


# ----------------------------------------------------------------------
# Example 5: 3-colorable (Sigma^lfo_1, monadic)
# ----------------------------------------------------------------------
def color_relations(count: int = 3) -> Tuple[RelationVariable, ...]:
    """The unary color variables ``C_0, ..., C_{count-1}``."""
    return tuple(RelationVariable(f"C{i}", 1) for i in range(count))


def well_colored(variable: str, colors: Tuple[RelationVariable, ...]) -> Formula:
    """The paper's ``WellColored(x)``: exactly one color, different from all neighbors."""
    has_some_color = disjunction(RelationAtom(c, (variable,)) for c in colors)
    at_most_one = conjunction(
        Not(And(RelationAtom(colors[i], (variable,)), RelationAtom(colors[j], (variable,))))
        for i in range(len(colors))
        for j in range(len(colors))
        if i != j
    )
    neighbor = f"_nb{variable}"
    differs_from_neighbors = forall_node(
        neighbor,
        variable,
        conjunction(
            Not(And(RelationAtom(c, (variable,)), RelationAtom(c, (neighbor,)))) for c in colors
        ),
    )
    return And(And(has_some_color, at_most_one), differs_from_neighbors)


def k_colorable_formula(colors: int) -> Formula:
    """``∃C_0 ... C_{k-1} ∀◦x WellColored(x)`` (Example 5 generalized to k colors)."""
    relations = color_relations(colors)
    body = forall_nodes_sentence("x", well_colored("x", relations))
    result: Formula = body
    for relation in reversed(relations):
        result = SOExists(relation, result)
    return result


def three_colorable_formula() -> Formula:
    """The Sigma^lfo_1 formula for 3-colorability (Example 5)."""
    return k_colorable_formula(3)


def two_colorable_formula() -> Formula:
    """The Sigma^lfo_1 formula for 2-colorability (used around Proposition 24)."""
    return k_colorable_formula(2)


# ----------------------------------------------------------------------
# Example 6: the PointsTo spanning-forest schema and not-all-selected
# ----------------------------------------------------------------------
PARENT = RelationVariable("P", 2)
CHALLENGE = RelationVariable("X", 1)
CHARGE = RelationVariable("Y", 1)
UNIQUE_FLAG = RelationVariable("Z", 1)


def root(variable: str, parent: RelationVariable = PARENT) -> Formula:
    """``Root(x) = P(x, x)``."""
    return RelationAtom(parent, (variable, variable))


def unique_parent(variable: str, parent: RelationVariable = PARENT) -> Formula:
    """``UniqueParent(x)``: x has exactly one parent within distance 1 (possibly itself)."""
    y, z = f"_up_y{variable}", f"_up_z{variable}"
    return exists_node_within(
        y,
        variable,
        1,
        And(
            RelationAtom(parent, (variable, y)),
            forall_node_within(
                z, variable, 1, Implies(RelationAtom(parent, (variable, z)), Equal(z, y))
            ),
        ),
    )


def root_case(variable: str, theta: ThetaSchema, parent: RelationVariable = PARENT,
              charge: RelationVariable = CHARGE) -> Formula:
    """``RootCase[ϑ](x)``: a root satisfies ϑ and is positively charged."""
    return Implies(root(variable, parent), And(theta(variable), RelationAtom(charge, (variable,))))


def child_case(variable: str, parent: RelationVariable = PARENT,
               challenge: RelationVariable = CHALLENGE, charge: RelationVariable = CHARGE) -> Formula:
    """``ChildCase(x)``: a child's charge relates to its parent's charge via X."""
    y = f"_cc_y{variable}"
    return Implies(
        Not(root(variable, parent)),
        exists_node(
            y,
            variable,
            And(
                RelationAtom(parent, (variable, y)),
                Iff(
                    RelationAtom(charge, (variable,)),
                    Not(Iff(RelationAtom(charge, (y,)), RelationAtom(challenge, (variable,)))),
                ),
            ),
        ),
    )


def points_to(variable: str, theta: ThetaSchema, parent: RelationVariable = PARENT,
              challenge: RelationVariable = CHALLENGE, charge: RelationVariable = CHARGE) -> Formula:
    """The formula schema ``PointsTo[ϑ](x)`` of Example 6."""
    return And(
        And(unique_parent(variable, parent), root_case(variable, theta, parent, charge)),
        child_case(variable, parent, challenge, charge),
    )


def exists_unselected_node_formula() -> Formula:
    """``∃P ∀X ∃Y ∀◦x PointsTo[¬IsSelected](x)`` -- Example 6's Sigma^lfo_3 formula."""
    theta: ThetaSchema = lambda v: Not(is_selected(v))
    matrix = forall_nodes_sentence("x", points_to("x", theta))
    return SOExists(PARENT, SOForall(CHALLENGE, SOExists(CHARGE, matrix)))


def not_all_selected_formula() -> Formula:
    """Alias for :func:`exists_unselected_node_formula` (defines not-all-selected)."""
    return exists_unselected_node_formula()


# ----------------------------------------------------------------------
# Example 7: non-3-colorable (Pi^lfo_4)
# ----------------------------------------------------------------------
def non_three_colorable_formula() -> Formula:
    """``∀C_0 C_1 C_2 ∃P ∀X ∃Y ∀◦x PointsTo[¬WellColored](x)`` (Example 7)."""
    colors = color_relations(3)
    theta: ThetaSchema = lambda v: Not(well_colored(v, colors))
    matrix = forall_nodes_sentence("x", points_to("x", theta))
    result: Formula = SOExists(PARENT, SOForall(CHALLENGE, SOExists(CHARGE, matrix)))
    for relation in reversed(colors):
        result = SOForall(relation, result)
    return result


# ----------------------------------------------------------------------
# Example 8: one-selected (Sigma^lfo_3) via the spanning-tree refinement
# ----------------------------------------------------------------------
def believes_in_one(variable: str, theta: ThetaSchema,
                    challenge: RelationVariable = CHALLENGE,
                    unique_flag: RelationVariable = UNIQUE_FLAG) -> Formula:
    """``BelievesInOne[ϑ](x)``: x's information is consistent with a unique ϑ-node."""
    y = f"_bo_y{variable}"
    agree_on_z = forall_node(
        y, variable, Iff(RelationAtom(unique_flag, (variable,)), RelationAtom(unique_flag, (y,)))
    )
    flag_matches = Implies(
        theta(variable),
        Iff(RelationAtom(unique_flag, (variable,)), RelationAtom(challenge, (variable,))),
    )
    return And(agree_on_z, flag_matches)


def points_to_unique(variable: str, theta: ThetaSchema) -> Formula:
    """``PointsToUnique[ϑ](x) = PointsTo[ϑ](x) ∧ BelievesInOne[ϑ](x)`` (Example 8)."""
    return And(points_to(variable, theta), believes_in_one(variable, theta))


def one_selected_formula() -> Formula:
    """``∃P ∀X ∃Y,Z ∀◦x PointsToUnique[IsSelected](x)`` -- exactly one selected node."""
    theta: ThetaSchema = lambda v: is_selected(v)
    matrix = forall_nodes_sentence("x", points_to_unique("x", theta))
    return SOExists(PARENT, SOForall(CHALLENGE, SOExists(CHARGE, SOExists(UNIQUE_FLAG, matrix))))


# ----------------------------------------------------------------------
# Example 9: hamiltonian (Sigma^lfo_3)
# ----------------------------------------------------------------------
def max_one_child(variable: str, parent: RelationVariable = PARENT) -> Formula:
    """``MaxOneChild(x)``: at most one neighbor points to x."""
    y, z = f"_mc_y{variable}", f"_mc_z{variable}"
    return forall_node(
        y,
        variable,
        forall_node(
            z,
            variable,
            Implies(
                And(RelationAtom(parent, (y, variable)), RelationAtom(parent, (z, variable))),
                Equal(y, z),
            ),
        ),
    )


def sees_leaf_if_root(variable: str, parent: RelationVariable = PARENT) -> Formula:
    """``SeesLeafIfRoot(x)``: the root is adjacent to the unique leaf of the path."""
    y, z = f"_sl_y{variable}", f"_sl_z{variable}"
    leaf = And(
        Not(RelationAtom(parent, (y, variable))),
        forall_node(z, y, Not(RelationAtom(parent, (z, y)))),
    )
    return Implies(root(variable, parent), exists_node(y, variable, leaf))


def hamiltonian_formula() -> Formula:
    """``∃P ∀X ∃Y,Z ∀◦x (PointsToUnique[Root](x) ∧ MaxOneChild(x) ∧ SeesLeafIfRoot(x))``.

    Example 9: a Hamiltonian cycle is a Hamiltonian path (a spanning tree in
    which every node has at most one child) plus an edge from the root back to
    the unique leaf.
    """
    theta: ThetaSchema = lambda v: root(v)
    body = And(
        And(points_to_unique("x", theta), max_one_child("x")),
        sees_leaf_if_root("x"),
    )
    matrix = forall_nodes_sentence("x", body)
    return SOExists(PARENT, SOForall(CHALLENGE, SOExists(CHARGE, SOExists(UNIQUE_FLAG, matrix))))


# ----------------------------------------------------------------------
# Example 10: non-hamiltonian (Pi^lfo_4)
# ----------------------------------------------------------------------
def non_hamiltonian_formula() -> Formula:
    """The Pi^lfo_4 formula of Example 10 for the complement of Hamiltonicity.

    Adam proposes a 2-regular spanning subgraph H; Eve either exhibits a node
    violating 2-regularity or a nontrivial partition S that does not cut H,
    in both cases validated by the spanning-forest schema of Example 6.
    """
    subgraph = RelationVariable("H", 2)
    case_flag = RelationVariable("C", 1)
    side = RelationVariable("S", 1)

    def in_agreement_on(relation: RelationVariable, variable: str) -> Formula:
        y = f"_ag_y{variable}{relation.name}"
        return forall_node(
            y, variable, Iff(RelationAtom(relation, (variable,)), RelationAtom(relation, (y,)))
        )

    def degree_two(variable: str) -> Formula:
        y1, y2, z = f"_d2_a{variable}", f"_d2_b{variable}", f"_d2_c{variable}"
        both_neighbors = And(
            Not(Equal(y1, y2)),
            conjunction(
                And(RelationAtom(subgraph, (variable, y)), RelationAtom(subgraph, (y, variable)))
                for y in (y1, y2)
            ),
        )
        nothing_else = forall_node(
            z,
            variable,
            Implies(
                Or(RelationAtom(subgraph, (variable, z)), RelationAtom(subgraph, (z, variable))),
                Or(Equal(z, y1), Equal(z, y2)),
            ),
        )
        return exists_node(y1, variable, exists_node(y2, variable, And(both_neighbors, nothing_else)))

    def cut_at(variable: str) -> Formula:
        y = f"_cut_y{variable}"
        return exists_node(
            y,
            variable,
            And(
                RelationAtom(subgraph, (variable, y)),
                Iff(RelationAtom(side, (variable,)), Not(RelationAtom(side, (y,)))),
            ),
        )

    def separation_at(variable: str) -> Formula:
        return Not(in_agreement_on(side, variable))

    invalid_case = Implies(
        Not(RelationAtom(case_flag, ("x",))), points_to("x", lambda v: Not(degree_two(v)))
    )
    disjoint_case = Implies(
        RelationAtom(case_flag, ("x",)),
        And(Not(cut_at("x")), points_to("x", separation_at)),
    )
    body = And(And(in_agreement_on(case_flag, "x"), invalid_case), disjoint_case)
    matrix = forall_nodes_sentence("x", body)

    inner: Formula = SOForall(CHALLENGE, SOExists(CHARGE, matrix))
    inner = SOExists(case_flag, SOExists(side, SOExists(PARENT, inner)))
    return SOForall(subgraph, inner)


# ----------------------------------------------------------------------
# Convenience: every named example formula
# ----------------------------------------------------------------------
def all_example_formulas() -> dict:
    """All Section 5.2 formulas keyed by the paper's property names."""
    return {
        "all-selected": all_selected_formula(),
        "3-colorable": three_colorable_formula(),
        "2-colorable": two_colorable_formula(),
        "not-all-selected": not_all_selected_formula(),
        "non-3-colorable": non_three_colorable_formula(),
        "one-selected": one_selected_formula(),
        "hamiltonian": hamiltonian_formula(),
        "non-hamiltonian": non_hamiltonian_formula(),
    }
