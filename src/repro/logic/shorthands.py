"""Notational shorthands used throughout Section 5 of the paper.

On structural representations of labeled graphs (signature ``(1, 2)``):

* ``IsNode(x)``   -- x has no dotted (ownership) arrow pointing to it,
* ``IsBit0(x)``   -- x is a labeling bit of value 0,
* ``IsBit1(x)``   -- x is a labeling bit of value 1,
* ``IsSelected(x)`` -- the node x is labeled with exactly the string ``1``,
* node-restricted quantifiers ``∃◦`` / ``∀◦`` and their radius-``r`` variants.
"""

from __future__ import annotations

from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Forall,
    Formula,
    Implies,
    LocalExists,
    LocalForall,
    Not,
    Or,
    UnaryAtom,
)


def is_node(variable: str, helper: str = "_own") -> Formula:
    """``IsNode(x) = ¬∃y−⇀↽−x (y ⇀2 x)``: no ownership arrow points to x."""
    return Not(BoundedExists(helper, variable, BinaryAtom(2, helper, variable)))


def is_bit(variable: str, helper: str = "_own") -> Formula:
    """``¬IsNode(x)``: x is a labeling bit."""
    return BoundedExists(helper, variable, BinaryAtom(2, helper, variable))


def is_bit0(variable: str, helper: str = "_own") -> Formula:
    """``IsBit0(x)``: x is a labeling bit of value 0."""
    return And(is_bit(variable, helper), Not(UnaryAtom(1, variable)))


def is_bit1(variable: str, helper: str = "_own") -> Formula:
    """``IsBit1(x)``: x is a labeling bit of value 1."""
    return And(is_bit(variable, helper), UnaryAtom(1, variable))


def is_selected(variable: str, bit: str = "_b", succ: str = "_s") -> Formula:
    """``IsSelected(x)``: the node x is labeled with the string ``1`` (Example 4).

    There is a labeling bit of value 1 adjacent to x that has neither a
    successor nor a predecessor among the labeling bits (so the label has
    length exactly one).
    """
    no_successor_or_predecessor = Not(
        BoundedExists(succ, bit, Or(BinaryAtom(1, succ, bit), BinaryAtom(1, bit, succ)))
    )
    return BoundedExists(bit, variable, And(is_bit1(bit, succ + "o"), no_successor_or_predecessor))


def exists_node(variable: str, anchor: str, formula: Formula) -> Formula:
    """``∃◦x −⇀↽− y φ``: bounded existential quantification restricted to nodes."""
    return BoundedExists(variable, anchor, And(is_node(variable, f"_n{variable}"), formula))


def forall_node(variable: str, anchor: str, formula: Formula) -> Formula:
    """``∀◦x −⇀↽− y φ``: bounded universal quantification restricted to nodes."""
    return BoundedForall(variable, anchor, Implies(is_node(variable, f"_n{variable}"), formula))


def exists_node_within(variable: str, anchor: str, radius: int, formula: Formula) -> Formula:
    """``∃◦x ≤r−⇀↽− y φ``: radius-``r`` existential quantification restricted to nodes."""
    return LocalExists(variable, anchor, radius, And(is_node(variable, f"_n{variable}"), formula))


def forall_node_within(variable: str, anchor: str, radius: int, formula: Formula) -> Formula:
    """``∀◦x ≤r−⇀↽− y φ``: radius-``r`` universal quantification restricted to nodes."""
    return LocalForall(variable, anchor, radius, Implies(is_node(variable, f"_n{variable}"), formula))


def forall_nodes_sentence(variable: str, formula: Formula) -> Formula:
    """``∀◦x φ``: the unbounded universal node quantifier opening an LFO sentence."""
    return Forall(variable, Implies(is_node(variable, f"_n{variable}"), formula))
