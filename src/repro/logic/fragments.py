"""Syntactic classification of formulas into the paper's logics (Section 5.1).

* **BF** -- the bounded fragment of first-order logic: no unbounded
  first-order quantifiers, no second-order quantifiers.
* **LFO** -- local first-order logic: a single unbounded universal first-order
  quantifier in front of a BF formula.
* **Sigma^lfo_l / Pi^lfo_l** -- the local second-order hierarchy: alternating
  blocks of existential/universal second-order quantifiers in front of an LFO
  formula (level 0 is LFO itself).
* **mSigma^lfo_l / mPi^lfo_l** -- the monadic versions, in which all quantified
  relation variables have arity 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Equal,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    LocalExists,
    LocalForall,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    TruthConstant,
    UnaryAtom,
)


@dataclass(frozen=True)
class LogicClass:
    """A class of the (local) second-order hierarchy, e.g. ``Sigma^lfo_3``."""

    kind: str  # "Sigma" or "Pi"
    level: int
    local: bool = True
    monadic: bool = False

    def __str__(self) -> str:
        base = "lfo" if self.local else "fo"
        prefix = "m" if self.monadic else ""
        return f"{prefix}{self.kind}^{base}_{self.level}"


def is_bounded_fragment(formula: Formula) -> bool:
    """Whether *formula* belongs to BF (Section 5.1, grammar ``(BF)``).

    Second-order variables may occur free (as relation atoms) but must not be
    quantified, and all first-order quantification must be bounded.
    """
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return True
    if isinstance(formula, Not):
        return is_bounded_fragment(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return is_bounded_fragment(formula.left) and is_bounded_fragment(formula.right)
    if isinstance(formula, (BoundedExists, BoundedForall, LocalExists, LocalForall)):
        return is_bounded_fragment(formula.body)
    if isinstance(formula, (Exists, Forall, SOExists, SOForall)):
        return False
    raise TypeError(f"unknown formula node {formula!r}")


def is_first_order(formula: Formula) -> bool:
    """Whether the formula contains no second-order quantifiers (class FO)."""
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return True
    if isinstance(formula, Not):
        return is_first_order(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return is_first_order(formula.left) and is_first_order(formula.right)
    if isinstance(formula, (Exists, Forall, BoundedExists, BoundedForall, LocalExists, LocalForall)):
        return is_first_order(formula.body)
    if isinstance(formula, (SOExists, SOForall)):
        return False
    raise TypeError(f"unknown formula node {formula!r}")


def is_lfo_sentence(formula: Formula) -> bool:
    """Whether *formula* is of the form ``∀x ψ`` with ``ψ`` in BF (class LFO)."""
    return isinstance(formula, Forall) and is_bounded_fragment(formula.body)


def second_order_prefix(formula: Formula) -> Tuple[List[Tuple[str, RelationVariable]], Formula]:
    """Peel off the leading second-order quantifier prefix.

    Returns a list of ``("E" | "A", relation_variable)`` pairs and the
    remaining matrix formula.
    """
    prefix: List[Tuple[str, RelationVariable]] = []
    current = formula
    while isinstance(current, (SOExists, SOForall)):
        prefix.append(("E" if isinstance(current, SOExists) else "A", current.relation))
        current = current.body
    return prefix, current


def _prefix_blocks(prefix: List[Tuple[str, RelationVariable]]) -> List[str]:
    """Collapse a quantifier prefix into its blocks, e.g. ``EEAAE -> ['E','A','E']``."""
    blocks: List[str] = []
    for kind, _ in prefix:
        if not blocks or blocks[-1] != kind:
            blocks.append(kind)
    return blocks


def quantifier_alternation_level(formula: Formula) -> int:
    """The number of second-order quantifier blocks in the prefix."""
    prefix, _ = second_order_prefix(formula)
    return len(_prefix_blocks(prefix))


def is_monadic(formula: Formula) -> bool:
    """Whether all *quantified* second-order variables have arity 1."""
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return True
    if isinstance(formula, Not):
        return is_monadic(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return is_monadic(formula.left) and is_monadic(formula.right)
    if isinstance(formula, (Exists, Forall, BoundedExists, BoundedForall, LocalExists, LocalForall)):
        return is_monadic(formula.body)
    if isinstance(formula, (SOExists, SOForall)):
        return formula.relation.arity == 1 and is_monadic(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")


def classify_local_second_order(formula: Formula) -> Optional[LogicClass]:
    """The smallest class of the local second-order hierarchy containing *formula*.

    Returns ``None`` if the matrix after the second-order prefix is not an LFO
    sentence (e.g. because it uses unbounded first-order quantification), in
    which case the formula lies outside the local hierarchy.

    Level 0 formulas (no second-order prefix) are reported as ``Sigma^lfo_0``,
    which by definition equals ``Pi^lfo_0 = LFO``.
    """
    prefix, matrix = second_order_prefix(formula)
    if not is_lfo_sentence(matrix):
        return None
    blocks = _prefix_blocks(prefix)
    monadic = is_monadic(formula)
    if not blocks:
        return LogicClass("Sigma", 0, local=True, monadic=monadic)
    kind = "Sigma" if blocks[0] == "E" else "Pi"
    return LogicClass(kind, len(blocks), local=True, monadic=monadic)


def classify_second_order(formula: Formula) -> Optional[LogicClass]:
    """Like :func:`classify_local_second_order` but for the non-local hierarchy.

    The matrix may be an arbitrary first-order formula (class FO); bounded
    quantifiers are allowed as well since BF is a fragment of FO.
    """
    prefix, matrix = second_order_prefix(formula)
    if not is_first_order(matrix):
        return None
    blocks = _prefix_blocks(prefix)
    monadic = is_monadic(formula)
    if not blocks:
        return LogicClass("Sigma", 0, local=False, monadic=monadic)
    kind = "Sigma" if blocks[0] == "E" else "Pi"
    return LogicClass(kind, len(blocks), local=False, monadic=monadic)
