"""Logic with bounded quantifiers (Section 5) and the local second-order hierarchy.

* :mod:`repro.logic.syntax` -- the formula AST: atomic formulas over a
  structure's unary/binary relations, Boolean connectives, unbounded and
  bounded first-order quantifiers, and second-order quantifiers.
* :mod:`repro.logic.semantics` -- model checking of formulas on
  :class:`~repro.graphs.structures.Structure` objects, with optional locality
  restriction of second-order quantifier ranges (matching the restriction the
  paper imposes on certificates in Theorem 15).
* :mod:`repro.logic.fragments` -- syntactic classification into BF, LFO and
  the classes Sigma^lfo_l / Pi^lfo_l of the local second-order hierarchy, plus
  monadicity checks.
* :mod:`repro.logic.shorthands` -- the paper's notational conveniences
  (IsNode, IsBit0/1, node-restricted and radius-``r`` quantifiers).
* :mod:`repro.logic.examples` -- the example formulas of Section 5.2.
"""

from repro.logic.syntax import (
    Formula,
    TruthConstant,
    UnaryAtom,
    BinaryAtom,
    Equal,
    RelationAtom,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Exists,
    Forall,
    BoundedExists,
    BoundedForall,
    LocalExists,
    LocalForall,
    SOExists,
    SOForall,
    RelationVariable,
    conjunction,
    disjunction,
    free_variables,
    free_first_order_variables,
    free_relation_variables,
)
from repro.logic.semantics import EvaluationOptions, evaluate, defines_property, graph_satisfies
from repro.logic.fragments import (
    is_bounded_fragment,
    is_lfo_sentence,
    is_monadic,
    classify_local_second_order,
    quantifier_alternation_level,
    LogicClass,
)
from repro.logic import shorthands, examples

__all__ = [
    "Formula",
    "TruthConstant",
    "UnaryAtom",
    "BinaryAtom",
    "Equal",
    "RelationAtom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "BoundedExists",
    "BoundedForall",
    "LocalExists",
    "LocalForall",
    "SOExists",
    "SOForall",
    "RelationVariable",
    "conjunction",
    "disjunction",
    "free_variables",
    "free_first_order_variables",
    "free_relation_variables",
    "EvaluationOptions",
    "evaluate",
    "defines_property",
    "graph_satisfies",
    "is_bounded_fragment",
    "is_lfo_sentence",
    "is_monadic",
    "classify_local_second_order",
    "quantifier_alternation_level",
    "LogicClass",
    "shorthands",
    "examples",
]
