"""Model checking of formulas on relational structures.

The evaluator implements the semantics of Table 1 directly.  Second-order
quantification is exhaustive over all interpretations of the quantified
relation variable and is therefore exponential; two mitigations are provided
through :class:`EvaluationOptions`:

* ``second_order_locality`` restricts the interpretations of relation
  variables of arity >= 2 to tuples whose elements all lie within the given
  distance of the tuple's first element.  This mirrors the restriction the
  paper imposes on certificates in the backward direction of Theorem 15
  ("the certificate must encode a set of k-tuples whose ... remaining
  elements all represent nodes or labeling bits that lie in the
  2r-neighborhood"), and it does not change the truth value of formulas that
  only ever relate nearby elements -- which is the case for every example
  formula of Section 5.2.
* ``candidate_limit`` aborts with an error instead of silently attempting an
  astronomically large enumeration.

Both existential and universal quantifiers short-circuit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.structures import Structure, structural_representation
from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Equal,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    LocalExists,
    LocalForall,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    TruthConstant,
    UnaryAtom,
)

Element = object
Assignment = Dict[Union[str, RelationVariable], object]


@dataclass(frozen=True)
class EvaluationOptions:
    """Tuning knobs for the exhaustive evaluator.

    Attributes
    ----------
    second_order_locality:
        If set, relation variables of arity >= 2 range only over sets of
        tuples whose elements all lie within this distance of the tuple's
        first element.  ``None`` means unrestricted (full) quantification.
    second_order_node_only:
        If true, relation variables range only over tuples of *node* elements
        (elements with no incoming arrow of the second binary relation).  This
        is sound for formulas that only ever apply their relation variables to
        node-quantified variables -- which is the case for every example
        formula of Section 5.2 -- and drastically shrinks the search space on
        structural representations of labeled graphs.
    candidate_limit:
        Maximum number of candidate tuples per second-order quantifier before
        the evaluator refuses to enumerate (guards against runaway blowup).
    """

    second_order_locality: Optional[int] = None
    second_order_node_only: bool = False
    candidate_limit: int = 22

    def __post_init__(self) -> None:
        if self.candidate_limit < 0:
            raise ValueError("candidate_limit must be nonnegative")


DEFAULT_OPTIONS = EvaluationOptions()


class EvaluationBudgetExceeded(RuntimeError):
    """Raised when a second-order quantifier would enumerate too many interpretations."""


def _node_elements(structure: Structure) -> List[Element]:
    """Elements with no incoming arrow of the second binary relation.

    On structural representations of labeled graphs these are exactly the
    elements representing nodes (the ``IsNode`` predicate of Section 5.1).
    """
    if structure.signature[1] < 2:
        return list(structure.domain)
    targets = {b for (_, b) in structure.binary(2)}
    return [a for a in structure.domain if a not in targets]


def _candidate_tuples(
    structure: Structure, arity: int, options: EvaluationOptions
) -> List[Tuple[Element, ...]]:
    domain = _node_elements(structure) if options.second_order_node_only else list(structure.domain)
    allowed = set(domain)
    if arity == 1 or options.second_order_locality is None:
        candidates = list(itertools.product(domain, repeat=arity))
    else:
        radius = options.second_order_locality
        candidates = []
        for first in domain:
            ball = [a for a in structure.ball(first, radius) if a in allowed]
            for rest in itertools.product(sorted(ball, key=str), repeat=arity - 1):
                candidates.append((first, *rest))
    if len(candidates) > options.candidate_limit:
        raise EvaluationBudgetExceeded(
            f"second-order quantifier over arity-{arity} relation would need "
            f"{len(candidates)} candidate tuples (> limit {options.candidate_limit}); "
            "use a smaller structure, set second_order_locality, or raise candidate_limit"
        )
    return candidates


def _relation_interpretations(
    structure: Structure, relation: RelationVariable, options: EvaluationOptions
) -> Iterator[FrozenSet[Tuple[Element, ...]]]:
    """All interpretations of *relation* allowed by *options* (lazily)."""
    candidates = _candidate_tuples(structure, relation.arity, options)
    count = len(candidates)
    for mask in range(2**count):
        yield frozenset(candidates[i] for i in range(count) if (mask >> i) & 1)


def evaluate(
    structure: Structure,
    formula: Formula,
    assignment: Optional[Assignment] = None,
    options: EvaluationOptions = DEFAULT_OPTIONS,
) -> bool:
    """Whether ``structure, assignment |= formula``."""
    sigma: Assignment = dict(assignment or {})
    return _eval(structure, formula, sigma, options)


def _lookup_element(sigma: Assignment, name: str) -> Element:
    if name not in sigma:
        raise KeyError(f"first-order variable {name!r} is not assigned")
    return sigma[name]


def _lookup_relation(sigma: Assignment, relation: RelationVariable) -> FrozenSet[Tuple[Element, ...]]:
    if relation in sigma:
        return sigma[relation]  # type: ignore[return-value]
    # Allow lookup by name as a convenience for hand-written assignments.
    for key, value in sigma.items():
        if isinstance(key, RelationVariable) and key.name == relation.name:
            return value  # type: ignore[return-value]
    raise KeyError(f"second-order variable {relation.name!r} is not assigned")


def _eval(structure: Structure, formula: Formula, sigma: Assignment, options: EvaluationOptions) -> bool:
    if isinstance(formula, TruthConstant):
        return formula.value
    if isinstance(formula, UnaryAtom):
        return structure.in_unary(formula.index, _lookup_element(sigma, formula.variable))
    if isinstance(formula, BinaryAtom):
        return structure.in_binary(
            formula.index,
            _lookup_element(sigma, formula.left),
            _lookup_element(sigma, formula.right),
        )
    if isinstance(formula, Equal):
        return _lookup_element(sigma, formula.left) == _lookup_element(sigma, formula.right)
    if isinstance(formula, RelationAtom):
        interpretation = _lookup_relation(sigma, formula.relation)
        arguments = tuple(_lookup_element(sigma, name) for name in formula.arguments)
        return arguments in interpretation
    if isinstance(formula, Not):
        return not _eval(structure, formula.operand, sigma, options)
    if isinstance(formula, And):
        return _eval(structure, formula.left, sigma, options) and _eval(
            structure, formula.right, sigma, options
        )
    if isinstance(formula, Or):
        return _eval(structure, formula.left, sigma, options) or _eval(
            structure, formula.right, sigma, options
        )
    if isinstance(formula, Implies):
        return (not _eval(structure, formula.left, sigma, options)) or _eval(
            structure, formula.right, sigma, options
        )
    if isinstance(formula, Iff):
        return _eval(structure, formula.left, sigma, options) == _eval(
            structure, formula.right, sigma, options
        )
    if isinstance(formula, Exists):
        return any(
            _eval(structure, formula.body, {**sigma, formula.variable: element}, options)
            for element in structure.domain
        )
    if isinstance(formula, Forall):
        return all(
            _eval(structure, formula.body, {**sigma, formula.variable: element}, options)
            for element in structure.domain
        )
    if isinstance(formula, BoundedExists):
        anchor = _lookup_element(sigma, formula.anchor)
        return any(
            _eval(structure, formula.body, {**sigma, formula.variable: element}, options)
            for element in structure.connections(anchor)
        )
    if isinstance(formula, BoundedForall):
        anchor = _lookup_element(sigma, formula.anchor)
        return all(
            _eval(structure, formula.body, {**sigma, formula.variable: element}, options)
            for element in structure.connections(anchor)
        )
    if isinstance(formula, LocalExists):
        anchor = _lookup_element(sigma, formula.anchor)
        return any(
            _eval(structure, formula.body, {**sigma, formula.variable: element}, options)
            for element in structure.ball(anchor, formula.radius)
        )
    if isinstance(formula, LocalForall):
        anchor = _lookup_element(sigma, formula.anchor)
        return all(
            _eval(structure, formula.body, {**sigma, formula.variable: element}, options)
            for element in structure.ball(anchor, formula.radius)
        )
    if isinstance(formula, SOExists):
        return any(
            _eval(structure, formula.body, {**sigma, formula.relation: interpretation}, options)
            for interpretation in _relation_interpretations(structure, formula.relation, options)
        )
    if isinstance(formula, SOForall):
        return all(
            _eval(structure, formula.body, {**sigma, formula.relation: interpretation}, options)
            for interpretation in _relation_interpretations(structure, formula.relation, options)
        )
    raise TypeError(f"unknown formula node {formula!r}")


def graph_satisfies(
    graph: LabeledGraph,
    formula: Formula,
    assignment: Optional[Assignment] = None,
    options: EvaluationOptions = DEFAULT_OPTIONS,
) -> bool:
    """Whether the structural representation ``$G`` of *graph* satisfies *formula*."""
    return evaluate(structural_representation(graph), formula, assignment, options)


def defines_property(formula: Formula, options: EvaluationOptions = DEFAULT_OPTIONS):
    """The graph property defined by a sentence: a callable ``LabeledGraph -> bool``."""

    def decide(graph: LabeledGraph) -> bool:
        return graph_satisfies(graph, formula, options=options)

    return decide
