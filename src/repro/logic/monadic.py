"""From local second-order logic to its monadic fragment (Proposition 31).

Proposition 31 of the paper shows that on structures of bounded degree,
second-order quantification over relations of arbitrary arity can be replaced
by quantification over *sets*: each element receives a **name** that is unique
within distance ``2r`` (where ``r`` is the nesting depth of bounded
quantifiers), the names are represented by a family of unary variables
``X_0, ..., X_{m-1}``, and an arity-``k`` relation ``R`` is encoded by the
unary variables ``Y_{R(*, n_2, ..., n_k)}`` collecting the elements ``a_1``
such that ``(a_1, a_2, ..., a_k)`` lies in ``R`` for the elements ``a_i``
named ``n_i`` nearby.

This module implements the translation executably:

* :func:`local_names` constructs a concrete ``2r``-locally unique naming,
* :func:`monadic_matrix` is the syntactic translation ``τ_r`` of the proof,
* :func:`encode_relation` produces the interpretations of the ``Y`` variables
  corresponding to a given interpretation of ``R``, so that the translated
  matrix can be model checked against the original one, and
* :func:`to_monadic_sentence` assembles the full ``mΣ^lfo_ℓ`` / ``mΠ^lfo_ℓ``
  sentence, including the ``UniqueName`` relativization.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.structures import Structure
from repro.logic.fragments import second_order_prefix
from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Equal,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    LocalExists,
    LocalForall,
    Not,
    Or,
    RelationAtom,
    RelationVariable,
    SOExists,
    SOForall,
    TruthConstant,
    UnaryAtom,
    conjunction,
    disjunction,
)

__all__ = [
    "name_variable",
    "name_variables",
    "encoded_relation_variable",
    "required_name_count",
    "local_names",
    "name_interpretation",
    "unique_name_formula",
    "monadic_matrix",
    "encode_relation",
    "to_monadic_sentence",
]


# ----------------------------------------------------------------------
# Names
# ----------------------------------------------------------------------
def name_variable(index: int) -> RelationVariable:
    """The unary variable ``X_index`` holding the elements named *index*."""
    return RelationVariable(f"Name_{index}", 1)


def name_variables(count: int) -> List[RelationVariable]:
    """The name variables ``X_0, ..., X_{count-1}``."""
    return [name_variable(index) for index in range(count)]


def encoded_relation_variable(relation: RelationVariable, names: Sequence[int]) -> RelationVariable:
    """The unary variable ``Y_{R(*, n_2, ..., n_k)}`` encoding one "slice" of ``R``."""
    suffix = ",".join(str(n) for n in names)
    return RelationVariable(f"{relation.name}(*,{suffix})", 1)


def required_name_count(structure: Structure, radius: int) -> int:
    """The number of names needed for a ``2*radius``-locally unique naming of *structure*.

    The greedy naming of :func:`local_names` never needs more names than the
    largest ``2*radius``-ball, which is the bound ``m = Σ_i Δ^i`` of the
    paper's proof specialized to the structure at hand.
    """
    return max(len(structure.ball(element, 2 * radius)) for element in structure.domain)


def local_names(structure: Structure, radius: int, count: Optional[int] = None) -> Dict[object, int]:
    """A concrete naming of the elements that is unique within distance ``2*radius``.

    Elements are processed in domain order; each receives the smallest name
    not already used within its ``2*radius``-ball.  Raises ``ValueError`` if
    *count* names do not suffice.
    """
    available = count if count is not None else required_name_count(structure, radius)
    names: Dict[object, int] = {}
    for element in structure.domain:
        taken = {
            names[other]
            for other in structure.ball(element, 2 * radius)
            if other in names
        }
        for candidate in range(available):
            if candidate not in taken:
                names[element] = candidate
                break
        else:
            raise ValueError(
                f"{available} names are not enough for a {2 * radius}-locally unique naming"
            )
    return names


def name_interpretation(
    structure: Structure, names: Mapping[object, int], count: int
) -> Dict[RelationVariable, FrozenSet[Tuple[object, ...]]]:
    """The interpretation of the name variables induced by a concrete naming."""
    interpretation: Dict[RelationVariable, FrozenSet[Tuple[object, ...]]] = {}
    for index in range(count):
        members = frozenset((element,) for element, name in names.items() if name == index)
        interpretation[name_variable(index)] = members
    return interpretation


def unique_name_formula(variable: str, count: int, radius: int) -> Formula:
    """``UniqueName(x)``: ``x`` carries exactly one name, unique within distance ``2*radius``."""
    some_name = disjunction(
        RelationAtom(name_variable(index), (variable,)) for index in range(count)
    )
    at_most_one = conjunction(
        Not(
            And(
                RelationAtom(name_variable(first), (variable,)),
                RelationAtom(name_variable(second), (variable,)),
            )
        )
        for first in range(count)
        for second in range(first + 1, count)
    )
    other = f"_un_{variable}"
    no_clash = LocalForall(
        other,
        variable,
        2 * radius,
        Or(
            Equal(other, variable),
            conjunction(
                Not(
                    And(
                        RelationAtom(name_variable(index), (variable,)),
                        RelationAtom(name_variable(index), (other,)),
                    )
                )
                for index in range(count)
            ),
        ),
    )
    return And(And(some_name, at_most_one), no_clash)


# ----------------------------------------------------------------------
# The translation tau_r
# ----------------------------------------------------------------------
def monadic_matrix(formula: Formula, count: int) -> Formula:
    """The translation ``τ_r`` of the proof of Proposition 31.

    Atomic formulas over relation variables of arity at least two are replaced
    by disjunctions over name tuples; everything else is preserved.  Relation
    variables of arity at least two that are *quantified* inside the formula
    are replaced by blocks of quantifiers over the corresponding encoded unary
    variables.
    """
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal)):
        return formula
    if isinstance(formula, RelationAtom):
        if formula.relation.arity == 1:
            return formula
        first, *rest = formula.arguments
        alternatives: List[Formula] = []
        for combination in itertools.product(range(count), repeat=len(rest)):
            parts: List[Formula] = [
                RelationAtom(encoded_relation_variable(formula.relation, combination), (first,))
            ]
            for argument, name in zip(rest, combination):
                parts.append(RelationAtom(name_variable(name), (argument,)))
            alternatives.append(conjunction(parts))
        return disjunction(alternatives)
    if isinstance(formula, Not):
        return Not(monadic_matrix(formula.operand, count))
    if isinstance(formula, (And, Or, Implies, Iff)):
        cls = type(formula)
        return cls(monadic_matrix(formula.left, count), monadic_matrix(formula.right, count))
    if isinstance(formula, (Exists, Forall)):
        cls = type(formula)
        return cls(formula.variable, monadic_matrix(formula.body, count))
    if isinstance(formula, (BoundedExists, BoundedForall)):
        cls = type(formula)
        return cls(formula.variable, formula.anchor, monadic_matrix(formula.body, count))
    if isinstance(formula, (LocalExists, LocalForall)):
        cls = type(formula)
        return cls(formula.variable, formula.anchor, formula.radius, monadic_matrix(formula.body, count))
    if isinstance(formula, (SOExists, SOForall)):
        cls = type(formula)
        body = monadic_matrix(formula.body, count)
        if formula.relation.arity == 1:
            return cls(formula.relation, body)
        result = body
        for combination in reversed(
            list(itertools.product(range(count), repeat=formula.relation.arity - 1))
        ):
            result = cls(encoded_relation_variable(formula.relation, combination), result)
        return result
    raise TypeError(f"unknown formula node {formula!r}")


def encode_relation(
    structure: Structure,
    relation: RelationVariable,
    interpretation: FrozenSet[Tuple[object, ...]],
    names: Mapping[object, int],
    count: int,
    radius: int,
) -> Dict[RelationVariable, FrozenSet[Tuple[object, ...]]]:
    """The interpretations of the encoded unary variables corresponding to ``R``.

    Only tuples whose later elements lie within distance ``2*radius`` of the
    first element are encoded -- exactly the restriction of the paper's proof,
    which is harmless because bounded formulas cannot relate elements that are
    further apart.
    """
    if relation.arity < 2:
        raise ValueError("only relations of arity at least two need encoding")
    encoded: Dict[RelationVariable, set] = {
        encoded_relation_variable(relation, combination): set()
        for combination in itertools.product(range(count), repeat=relation.arity - 1)
    }
    for entry in interpretation:
        first, *rest = entry
        ball = structure.ball(first, 2 * radius)
        if any(element not in ball for element in rest):
            continue
        combination = tuple(names[element] for element in rest)
        encoded[encoded_relation_variable(relation, combination)].add((first,))
    return {variable: frozenset(members) for variable, members in encoded.items()}


# ----------------------------------------------------------------------
# Full sentences
# ----------------------------------------------------------------------
def to_monadic_sentence(sentence: Formula, radius: int, count: int) -> Formula:
    """The full Proposition 31 translation of a local second-order sentence.

    The second-order prefix is rewritten block by block (higher-arity
    variables become blocks of unary ones); the name variables are bound at
    the very front with the same quantifier as the first block, and the matrix
    is relativized to ``2*radius``-locally unique names: conjunctively for an
    existential first block, by implication for a universal one.
    """
    prefix, matrix = second_order_prefix(sentence)
    if not isinstance(matrix, Forall):
        raise ValueError("expected a local second-order sentence of the form prefix + ∀x BF")

    inner = monadic_matrix(matrix.body, count)
    x = matrix.variable
    # The guard only needs to mention x itself: a violation elsewhere is seen
    # by the violating element, which is itself universally quantified.
    guard = unique_name_formula(x, count, radius)

    first_kind = prefix[0][0] if prefix else "E"
    if first_kind == "E":
        new_matrix = Forall(x, And(guard, inner))
    else:
        new_matrix = Forall(x, Implies(guard, inner))

    # Rebuild the prefix with higher-arity variables expanded into unary blocks.
    result: Formula = new_matrix
    expanded: List[Tuple[str, RelationVariable]] = []
    for kind, relation in prefix:
        if relation.arity == 1:
            expanded.append((kind, relation))
        else:
            for combination in itertools.product(range(count), repeat=relation.arity - 1):
                expanded.append((kind, encoded_relation_variable(relation, combination)))
    for kind, relation in reversed(expanded):
        result = SOExists(relation, result) if kind == "E" else SOForall(relation, result)

    # Finally bind the name variables with the same quantifier as the first block.
    binder = SOExists if first_kind == "E" else SOForall
    for variable in reversed(name_variables(count)):
        result = binder(variable, result)
    return result
