"""Negation, duality and the complement hierarchy (Sections 2.1, 5.1 and 9.3).

Classes on the same level of the locally polynomial hierarchy are *not*
complement classes of each other, which is why the paper studies the
complement hierarchy ``{coΣ^lp_ℓ, coΠ^lp_ℓ}`` separately (Figure 2).  On the
logic side the same asymmetry appears: negating a ``Σ^lfo_ℓ`` sentence yields
a ``Π^fo_ℓ`` sentence of the *non-local* hierarchy, because pushing the
negation through the single unbounded universal first-order quantifier of LFO
produces an unbounded existential quantifier, and LFO is not closed under
negation (Section 5.1).

This module implements the syntactic side of these observations:

* :func:`negate_sentence` pushes a negation through the second-order prefix
  and the leading first-order quantifier, producing the dual prefix;
* :func:`negation_normal_form` pushes negations down to the atoms of a
  bounded or first-order formula;
* :func:`dual_class` and :func:`complement_class_name` compute where the
  negated formula lands, mirroring the class arithmetic of Figure 2.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.fragments import LogicClass, classify_second_order
from repro.logic.syntax import (
    And,
    BinaryAtom,
    BoundedExists,
    BoundedForall,
    Equal,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    LocalExists,
    LocalForall,
    Not,
    Or,
    RelationAtom,
    SOExists,
    SOForall,
    TruthConstant,
    UnaryAtom,
)

__all__ = [
    "negate_sentence",
    "negation_normal_form",
    "dual_class",
    "complement_class_name",
    "is_in_negation_normal_form",
]


def negate_sentence(sentence: Formula) -> Formula:
    """The negation of a prenex second-order sentence, with the prefix dualized.

    ``∃R̄ ∀S̄ ... ∀x φ`` becomes ``∀R̄ ∃S̄ ... ∃x ¬φ`` (and symmetrically), so a
    ``Σ^(l)fo_ℓ`` sentence turns into a ``Π^fo_ℓ`` sentence.  Note the result
    generally leaves the *local* hierarchy: the innermost quantifier becomes
    an unbounded existential one, which LFO does not allow -- this is exactly
    why the paper's complement constructions (Examples 6 and 7) have to work
    much harder than a simple negation.
    """
    if isinstance(sentence, SOExists):
        return SOForall(sentence.relation, negate_sentence(sentence.body))
    if isinstance(sentence, SOForall):
        return SOExists(sentence.relation, negate_sentence(sentence.body))
    if isinstance(sentence, Forall):
        return Exists(sentence.variable, negate_sentence(sentence.body))
    if isinstance(sentence, Exists):
        return Forall(sentence.variable, negate_sentence(sentence.body))
    return negation_normal_form(Not(sentence))


def negation_normal_form(formula: Formula) -> Formula:
    """Push negations down to the atoms (literals), eliminating ``→`` and ``↔``.

    Works on arbitrary formulas of the paper's logics; bounded and local
    quantifiers dualize into their universal/existential counterparts.
    """
    if isinstance(formula, Not):
        return _negate_nnf(formula.operand)
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return formula
    if isinstance(formula, And):
        return And(negation_normal_form(formula.left), negation_normal_form(formula.right))
    if isinstance(formula, Or):
        return Or(negation_normal_form(formula.left), negation_normal_form(formula.right))
    if isinstance(formula, Implies):
        return Or(_negate_nnf(formula.left), negation_normal_form(formula.right))
    if isinstance(formula, Iff):
        left, right = formula.left, formula.right
        return Or(
            And(negation_normal_form(left), negation_normal_form(right)),
            And(_negate_nnf(left), _negate_nnf(right)),
        )
    if isinstance(formula, Exists):
        return Exists(formula.variable, negation_normal_form(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.variable, negation_normal_form(formula.body))
    if isinstance(formula, BoundedExists):
        return BoundedExists(formula.variable, formula.anchor, negation_normal_form(formula.body))
    if isinstance(formula, BoundedForall):
        return BoundedForall(formula.variable, formula.anchor, negation_normal_form(formula.body))
    if isinstance(formula, LocalExists):
        return LocalExists(
            formula.variable, formula.anchor, formula.radius, negation_normal_form(formula.body)
        )
    if isinstance(formula, LocalForall):
        return LocalForall(
            formula.variable, formula.anchor, formula.radius, negation_normal_form(formula.body)
        )
    if isinstance(formula, SOExists):
        return SOExists(formula.relation, negation_normal_form(formula.body))
    if isinstance(formula, SOForall):
        return SOForall(formula.relation, negation_normal_form(formula.body))
    raise TypeError(f"unknown formula node {formula!r}")


def _negate_nnf(formula: Formula) -> Formula:
    """The negation normal form of ``¬formula``."""
    if isinstance(formula, TruthConstant):
        return TruthConstant(not formula.value)
    if isinstance(formula, (UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return Not(formula)
    if isinstance(formula, Not):
        return negation_normal_form(formula.operand)
    if isinstance(formula, And):
        return Or(_negate_nnf(formula.left), _negate_nnf(formula.right))
    if isinstance(formula, Or):
        return And(_negate_nnf(formula.left), _negate_nnf(formula.right))
    if isinstance(formula, Implies):
        return And(negation_normal_form(formula.left), _negate_nnf(formula.right))
    if isinstance(formula, Iff):
        left, right = formula.left, formula.right
        return Or(
            And(negation_normal_form(left), _negate_nnf(right)),
            And(_negate_nnf(left), negation_normal_form(right)),
        )
    if isinstance(formula, Exists):
        return Forall(formula.variable, _negate_nnf(formula.body))
    if isinstance(formula, Forall):
        return Exists(formula.variable, _negate_nnf(formula.body))
    if isinstance(formula, BoundedExists):
        return BoundedForall(formula.variable, formula.anchor, _negate_nnf(formula.body))
    if isinstance(formula, BoundedForall):
        return BoundedExists(formula.variable, formula.anchor, _negate_nnf(formula.body))
    if isinstance(formula, LocalExists):
        return LocalForall(formula.variable, formula.anchor, formula.radius, _negate_nnf(formula.body))
    if isinstance(formula, LocalForall):
        return LocalExists(formula.variable, formula.anchor, formula.radius, _negate_nnf(formula.body))
    if isinstance(formula, SOExists):
        return SOForall(formula.relation, _negate_nnf(formula.body))
    if isinstance(formula, SOForall):
        return SOExists(formula.relation, _negate_nnf(formula.body))
    raise TypeError(f"unknown formula node {formula!r}")


def is_in_negation_normal_form(formula: Formula) -> bool:
    """Whether negations occur only directly in front of atoms (and ``→``/``↔`` are absent)."""
    if isinstance(formula, (TruthConstant, UnaryAtom, BinaryAtom, Equal, RelationAtom)):
        return True
    if isinstance(formula, Not):
        return isinstance(formula.operand, (UnaryAtom, BinaryAtom, Equal, RelationAtom))
    if isinstance(formula, (And, Or)):
        return is_in_negation_normal_form(formula.left) and is_in_negation_normal_form(formula.right)
    if isinstance(formula, (Implies, Iff)):
        return False
    if isinstance(formula, (Exists, Forall)):
        return is_in_negation_normal_form(formula.body)
    if isinstance(formula, (BoundedExists, BoundedForall, LocalExists, LocalForall)):
        return is_in_negation_normal_form(formula.body)
    if isinstance(formula, (SOExists, SOForall)):
        return is_in_negation_normal_form(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")


def dual_class(logic_class: LogicClass) -> LogicClass:
    """The class of the negated sentences: ``Σ`` and ``Π`` swap, the level stays.

    The result always lives in the *non-local* hierarchy (``local=False``),
    reflecting that LFO is not closed under negation.
    """
    kind = "Pi" if logic_class.kind == "Sigma" else "Sigma"
    return LogicClass(kind, logic_class.level, local=False, monadic=logic_class.monadic)


def complement_class_name(class_name: str) -> str:
    """The paper's name for the complement of a hierarchy class (Figure 2).

    ``LP -> coLP``, ``NLP -> coNLP``, ``Sigma^lp_l -> coSigma^lp_l`` and so on;
    applying the function twice returns the original name.
    """
    if class_name.startswith("co"):
        return class_name[2:]
    return f"co{class_name}"


def negated_classification(sentence: Formula) -> Optional[LogicClass]:
    """Classify the negation of *sentence* in the (non-local) second-order hierarchy."""
    return classify_second_order(negate_sentence(sentence))
