"""repro -- an executable reproduction of Reiter's locally polynomial hierarchy.

This library reproduces the systems described in *"A LOCAL View of the
Polynomial Hierarchy"* (Fabian Reiter, PODC 2024): the LOCAL model with
distributed Turing machines, the locally polynomial hierarchy
{Sigma^lp_l, Pi^lp_l}, logic with bounded quantifiers, locally polynomial
reductions, the generalized Fagin and Cook-Levin constructions, pictures and
tiling systems, and the separation witnesses behind the hierarchy's
infiniteness.

Subpackages
-----------
``repro.graphs``       labeled graphs, identifiers, certificates, structures
``repro.logic``        bounded-quantifier logic and the local second-order hierarchy
``repro.machines``     distributed Turing machines and the LOCAL simulator
``repro.hierarchy``    the Eve/Adam certificate game and the classes LP, NLP, ...
``repro.properties``   ground-truth graph property checkers
``repro.boolsat``      Boolean formulas, SAT solving, Boolean graphs
``repro.reductions``   locally polynomial reductions (Section 8)
``repro.fagin``        formula-to-arbiter compilation and Cook-Levin (Sections 7-8)
``repro.pictures``     pictures and tiling systems (Section 9.2)
``repro.separations``  executable separation witnesses (Section 9)
``repro.locality``     alternation and certificate-size locality measures (Fig. 7)
"""

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "logic",
    "machines",
    "hierarchy",
    "properties",
    "boolsat",
    "reductions",
    "fagin",
    "pictures",
    "separations",
    "locality",
]
