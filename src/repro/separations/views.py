"""View indistinguishability: the engine behind the ground-level separations.

A constant-round distributed algorithm's verdict at a node is a function of
the node's certified view: the labels, identifiers and certificates in its
radius-``r`` neighborhood together with the local topology.  Two nodes with
identical certified views therefore receive identical verdicts under *every*
``r``-round machine -- which is exactly what the fooling-pair and pumping
arguments exploit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.graphs.labeled_graph import LabeledGraph, Node
from repro.machines.local_algorithm import gather_view


def certified_view_signature(
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    node: Node,
    radius: int,
    certificates: Optional[Sequence[Mapping[Node, str]]] = None,
) -> Tuple:
    """A canonical, comparable description of a node's certified radius-``r`` view.

    Two nodes with equal signatures are indistinguishable to any ``r``-round
    algorithm: the signature contains the full induced ball (re-labeled by
    identifiers), all labels, identifiers and certificates, and the distances
    from the center.
    """
    cert_dicts = [dict(c) for c in (certificates or [])]
    view = gather_view(graph, ids, node, radius, certificates=cert_dicts)
    return (
        view.center,
        tuple(sorted(view.nodes)),
        tuple(sorted(tuple(sorted(edge)) for edge in view.edges)),
        view.labels,
        view.certificates,
        view.distances,
    )


def nodes_with_equal_views(
    graph: LabeledGraph,
    ids: Mapping[Node, str],
    radius: int,
    certificates: Optional[Sequence[Mapping[Node, str]]] = None,
) -> List[Tuple[Node, Node]]:
    """All pairs of distinct nodes whose certified views coincide *up to recentering*.

    Since identifiers are only locally unique, two distant nodes can have
    literally identical views (same identifiers, labels, certificates and
    local topology); such pairs drive the pigeonhole argument of
    Proposition 26.
    """
    signatures: Dict[Tuple, List[Node]] = {}
    for u in graph.nodes:
        signature = certified_view_signature(graph, ids, u, radius, certificates)
        # Keep everything except the raw center node object; the center's
        # identifier is retained so recentered views only compare equal when
        # the centers themselves are indistinguishable.
        anonymous = signature[1:] + (ids[u],)
        signatures.setdefault(anonymous, []).append(u)
    pairs: List[Tuple[Node, Node]] = []
    for group in signatures.values():
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                pairs.append((group[i], group[j]))
    return pairs


def corresponding_verdicts_equal(
    machine,
    graph_a: LabeledGraph,
    ids_a: Mapping[Node, str],
    graph_b: LabeledGraph,
    ids_b: Mapping[Node, str],
    correspondence: Mapping[Node, Node],
    certificates_a: Optional[Sequence[Mapping[Node, str]]] = None,
    certificates_b: Optional[Sequence[Mapping[Node, str]]] = None,
) -> bool:
    """Whether a machine gives equal verdicts to corresponding nodes of two graphs.

    Used to demonstrate fooling: if the correspondence maps each node of
    ``graph_a`` to a node of ``graph_b`` with an identical certified view,
    then this function returns ``True`` for every constant-round machine.
    """
    from repro.machines.simulator import execute

    result_a = execute(machine, graph_a, ids_a, certificates_a)
    result_b = execute(machine, graph_b, ids_b, certificates_b)
    verdicts_a = result_a.verdicts()
    verdicts_b = result_b.verdicts()
    return all(verdicts_a[u] == verdicts_b[v] for u, v in correspondence.items())
